"""Bench: ablations of the design decisions DESIGN.md §6 calls out."""

from conftest import attach_comparison  # type: ignore[import-not-found]

from repro.sim import experiments


def test_ablation_epsilon(benchmark, bench_topologies):
    """Spec's rounding parameter: quality monotone in ε, runtime falls."""
    result = benchmark.pedantic(
        experiments.ablation_epsilon,
        kwargs=dict(num_topologies=max(2, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    exact = result.mean_hit("Spec (exact)")
    for algo in result.hit_ratios:
        assert result.mean_hit(algo) <= exact + 1e-9
        assert result.mean_hit(algo) >= 0.5 * exact  # (1-ε)/2 with slack


def test_ablation_lazy_greedy(benchmark, bench_topologies):
    """Lazy greedy: identical output to the literal Algorithm 3."""
    result = benchmark.pedantic(
        experiments.ablation_lazy_greedy,
        kwargs=dict(num_topologies=max(2, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    assert abs(
        result.mean_hit("Gen (lazy)") - result.mean_hit("Gen (naive)")
    ) < 1e-9


def test_ablation_server_order(benchmark, bench_topologies):
    """Successive-greedy server order is a second-order effect."""
    result = benchmark.pedantic(
        experiments.ablation_server_order,
        kwargs=dict(num_topologies=max(2, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    hits = [result.mean_hit(algo) for algo in result.hit_ratios]
    assert max(hits) - min(hits) < 0.15


def test_ablation_replacement(benchmark, bench_topologies):
    """§IV-A re-placement loop: backbone traffic grows with the trigger
    threshold while the hit-ratio benefit stays marginal (Fig. 7's point)."""
    result = benchmark.pedantic(
        experiments.ablation_replacement,
        kwargs=dict(
            thresholds=(0.0, 0.9, 1.0),
            num_runs=max(2, bench_topologies),
            horizon_s=3600.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    assert result.bytes_shipped[0.0].mean == 0
    assert result.bytes_shipped[1.0].mean > result.bytes_shipped[0.9].mean - 1e-9
    # Replacement never buys a large improvement — the paper's robustness
    # argument for rare re-placement.
    assert (
        result.mean_hit[1.0].mean - result.mean_hit[0.0].mean
    ) < 0.15


def test_ablation_dp_backend(benchmark, bench_topologies):
    """Knapsack backend choice barely moves quality."""
    result = benchmark.pedantic(
        experiments.ablation_dp_backend,
        kwargs=dict(num_topologies=max(2, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    exact = result.mean_hit("Spec (exact)")
    assert result.mean_hit("Spec (value_dp)") >= 0.85 * exact
    assert result.mean_hit("Spec (weight_dp)") >= 0.85 * exact
