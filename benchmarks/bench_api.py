"""Benchmark the declarative experiment API against the raw runner.

The plan layer (`repro.api`) must be free abstraction: `run_plan()` on a
sweep plan drives the exact same `SweepRunner` loop as hand-wired code,
so its overhead should be microseconds against sweeps that take seconds.
This script measures that overhead, checks the series are bit-identical,
and times the plan/result JSON round-trips that the CLI and CI rely on.

Usage::

    PYTHONPATH=src python benchmarks/bench_api.py [--quick] [--output out.json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.api import ExperimentPlan, SolverSpec, SweepSpec, run_plan
from repro.api.plan import plan_from_json, plan_to_json
from repro.core.gen import GenConfig, TrimCachingGen
from repro.core.independent import IndependentCaching, IndependentConfig
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepRunner
from repro.sim.serialization import result_set_from_json, result_set_to_json
from repro.utils.units import GB


def bench(quick: bool) -> dict:
    params = dict(
        library_case="special",
        num_servers=6 if quick else 10,
        num_users=30 if quick else 120,
        num_models=20 if quick else 60,
        requests_per_user=10 if quick else 30,
    )
    points = (0.15, 0.3) if quick else (0.15, 0.3, 0.6)
    num_topologies = 2 if quick else 6

    plan = ExperimentPlan(
        name="bench api sweep",
        sweep=SweepSpec("capacity", points),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base=params,
        num_topologies=num_topologies,
        seed=7,
        scale=1.0,
    )

    start = time.perf_counter()
    plan_result = run_plan(plan)
    plan_s = time.perf_counter() - start

    runner = SweepRunner(
        ScenarioConfig(**params),
        {
            "TrimCaching Gen": TrimCachingGen(engine="sparse"),
            "Independent Caching": IndependentCaching(engine="sparse"),
        },
        num_topologies=num_topologies,
        seed=7,
    )
    start = time.perf_counter()
    raw_result = runner.run(
        "bench api sweep",
        "Q (GB, paper scale)",
        list(points),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )
    raw_s = time.perf_counter() - start

    identical = all(
        (plan_result.series[a].means == raw_result.series[a].means).all()
        and (plan_result.series[a].stds == raw_result.series[a].stds).all()
        for a in raw_result.series
    )
    assert identical, "plan path diverges from the raw SweepRunner"

    start = time.perf_counter()
    for _ in range(100):
        restored = plan_from_json(plan_to_json(plan))
    plan_json_us = (time.perf_counter() - start) / 100 * 1e6
    assert restored == plan

    start = time.perf_counter()
    for _ in range(100):
        result_set_from_json(result_set_to_json(plan_result))
    result_json_us = (time.perf_counter() - start) / 100 * 1e6

    overhead_s = plan_s - raw_s
    print(
        f"api sweep (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {num_topologies} topologies x "
        f"{len(points)} points): run_plan {plan_s:.3f} s vs raw runner "
        f"{raw_s:.3f} s (overhead {overhead_s * 1e3:+.1f} ms, identical "
        f"series); plan JSON round-trip {plan_json_us:.0f} us, result-set "
        f"JSON round-trip {result_json_us:.0f} us"
    )
    return {
        "api_overhead": {
            "instance": {**params, "seed": 7},
            "num_topologies": num_topologies,
            "sweep_points_gb": list(points),
            "run_plan_s": plan_s,
            "raw_runner_s": raw_s,
            "overhead_s": overhead_s,
            "series_identical": identical,
            "plan_json_round_trip_us": plan_json_us,
            "result_set_json_round_trip_us": result_json_us,
        }
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", help="write results to this JSON file")
    args = parser.parse_args(argv)
    results = bench(args.quick)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=1, sort_keys=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
