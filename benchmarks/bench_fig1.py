"""Bench: regenerate Fig. 1 (accuracy vs. frozen bottom layers)."""

from conftest import attach_series  # type: ignore[import-not-found]

from repro.sim import experiments


def test_fig1_accuracy_vs_frozen(benchmark):
    """Paper Fig. 1: near-flat accuracy up to ~90% frozen layers."""
    result = benchmark(experiments.fig1_accuracy_vs_frozen, step=10)
    benchmark.extra_info["avg_drop_at_90pct"] = round(
        result.average_drop_at_90pct, 4
    )
    # Paper: ~4.7% average degradation at layer 97.
    assert abs(result.average_drop_at_90pct - 0.047) < 0.006
    print()
    print(result.to_table())
