"""Bench: regenerate Fig. 4 (special case, Spec vs Gen vs Independent).

Each panel asserts the paper's shape: hit ratio grows with capacity and
server count, shrinks with user count, and the parameter-sharing
algorithms clearly beat Independent Caching with Spec on top.
"""

from conftest import attach_series  # type: ignore[import-not-found]

from repro.sim import experiments
from repro.utils.stats import average_relative_gain


def _ordering_holds(result, slack: float = 0.02) -> None:
    spec = result.mean_of("TrimCaching Spec")
    gen = result.mean_of("TrimCaching Gen")
    independent = result.mean_of("Independent Caching")
    assert spec.mean() >= gen.mean() - slack
    assert gen.mean() > independent.mean()


def test_fig4a_hit_vs_capacity(benchmark, bench_topologies, bench_scale):
    """Fig. 4(a): rising in Q; Spec >= Gen > Independent."""
    result = benchmark.pedantic(
        experiments.fig4a_hit_vs_capacity,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _ordering_holds(result)
    for algo in result.series:
        means = result.mean_of(algo)
        assert means[-1] >= means[0] - 1e-9, algo
    gain = average_relative_gain(
        result.mean_of("TrimCaching Spec"),
        result.mean_of("Independent Caching"),
    )
    benchmark.extra_info["spec_vs_independent_gain"] = round(gain, 4)
    assert gain > 0.05  # paper: ~34%


def test_fig4b_hit_vs_servers(benchmark, bench_topologies, bench_scale):
    """Fig. 4(b): rising in M; same ordering."""
    result = benchmark.pedantic(
        experiments.fig4b_hit_vs_servers,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _ordering_holds(result)
    for algo in ("TrimCaching Spec", "TrimCaching Gen"):
        means = result.mean_of(algo)
        assert means[-1] >= means[0] - 0.03, algo


def test_fig4c_hit_vs_users(benchmark, bench_topologies, bench_scale):
    """Fig. 4(c): falling in K; same ordering."""
    result = benchmark.pedantic(
        experiments.fig4c_hit_vs_users,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _ordering_holds(result)
    for algo in result.series:
        means = result.mean_of(algo)
        assert means[-1] <= means[0] + 0.03, algo
