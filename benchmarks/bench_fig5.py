"""Bench: regenerate Fig. 5 (general case, Gen vs Independent)."""

from conftest import attach_series  # type: ignore[import-not-found]

from repro.sim import experiments


def _gen_beats_independent(result) -> None:
    gen = result.mean_of("TrimCaching Gen")
    independent = result.mean_of("Independent Caching")
    assert gen.mean() > independent.mean()
    assert (gen >= independent - 0.02).all()


def test_fig5a_hit_vs_capacity(benchmark, bench_topologies, bench_scale):
    """Fig. 5(a): rising in Q; Gen > Independent."""
    result = benchmark.pedantic(
        experiments.fig5a_hit_vs_capacity,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _gen_beats_independent(result)
    for algo in result.series:
        means = result.mean_of(algo)
        assert means[-1] >= means[0] - 1e-9, algo


def test_fig5b_hit_vs_servers(benchmark, bench_topologies, bench_scale):
    """Fig. 5(b): rising in M; Gen > Independent."""
    result = benchmark.pedantic(
        experiments.fig5b_hit_vs_servers,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _gen_beats_independent(result)


def test_fig5c_hit_vs_users(benchmark, bench_topologies, bench_scale):
    """Fig. 5(c): falling in K; Gen > Independent."""
    result = benchmark.pedantic(
        experiments.fig5c_hit_vs_users,
        kwargs=dict(num_topologies=bench_topologies, seed=0, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    _gen_beats_independent(result)
    for algo in result.series:
        means = result.mean_of(algo)
        assert means[-1] <= means[0] + 0.03, algo
