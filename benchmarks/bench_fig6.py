"""Bench: regenerate Fig. 6 (optimality gap + runtime comparison)."""

from conftest import attach_comparison  # type: ignore[import-not-found]

from repro.sim import experiments


def test_fig6a_optimality_gap(benchmark, bench_topologies):
    """Fig. 6(a): Spec(ε=0) matches the optimum; Gen within a few %;
    both far faster than exhaustive search."""
    result = benchmark.pedantic(
        experiments.fig6a_optimality_gap,
        kwargs=dict(num_topologies=max(5, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    optimal = result.mean_hit("Optimal (exhaustive)")
    assert result.mean_hit("TrimCaching Spec") >= 0.98 * optimal
    assert result.mean_hit("TrimCaching Gen") >= 0.85 * optimal
    assert result.speedup("TrimCaching Spec", "Optimal (exhaustive)") > 1
    benchmark.extra_info["spec_speedup_vs_optimal"] = round(
        result.speedup("TrimCaching Spec", "Optimal (exhaustive)"), 1
    )


def test_fig6b_runtime_general(benchmark, bench_topologies):
    """Fig. 6(b): Gen is orders of magnitude faster than Spec when the
    sharing structure is general (paper: ~3,900x)."""
    result = benchmark.pedantic(
        experiments.fig6b_runtime_general,
        kwargs=dict(num_topologies=max(2, bench_topologies), seed=0),
        rounds=1,
        iterations=1,
    )
    attach_comparison(benchmark, result)
    speedup = result.speedup("TrimCaching Gen", "TrimCaching Spec")
    benchmark.extra_info["gen_speedup_vs_spec"] = round(speedup, 1)
    assert speedup > 100
