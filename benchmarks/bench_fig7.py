"""Bench: regenerate Fig. 7 (robustness to user mobility)."""

from repro.sim import experiments
from repro.utils.tables import format_table


def test_fig7_mobility_robustness(benchmark, bench_topologies):
    """Fig. 7: a fixed placement loses only a few percent over 2 h of
    pedestrian/bike/vehicle mobility (paper: 5.4-6.4%)."""
    result = benchmark.pedantic(
        experiments.fig7_mobility_robustness,
        kwargs=dict(
            num_runs=max(2, bench_topologies),
            horizon_s=7200.0,
            sample_every=120,  # evaluate every 10 simulated minutes
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    for algo in result.series:
        degradation = result.degradation(algo)
        benchmark.extra_info[f"{algo} degradation"] = round(degradation, 4)
        # Allow generous slack over the paper's ~6%: we average far fewer
        # runs, but the qualitative claim is "no collapse over 2 h".
        assert degradation < 0.4, algo
        assert result.series[algo].means[0] > 0.3, algo
