"""Tracked perf bench: seed vs vectorised solver engine.

Times the retained seed implementations (:mod:`repro.core.reference`)
against the vectorised engine on paper-scale instances and writes the
results to ``BENCH_solvers.json`` so the perf trajectory is tracked in
the repository from PR 1 onward.

Covered:

* TrimCaching Gen — seed lazy + seed naive vs vectorised + new naive,
  on an ``M=30, K=200, I=120`` instance (byte-identical placements are
  asserted, not just timed);
* TrimCaching Spec — seed vs vectorised candidate construction, plus the
  ``workers=N`` knapsack-batch fan-out (byte-identical placements);
* both DP backends — the rounded value DP (seed Python loop vs numpy
  slice-shift) and the weight DP (unchanged; timed for the trajectory);
* the sparse feasibility artifact — CSR vs dense construction at paper
  scale (identical indicator asserted);
* the end-to-end sweep pipeline at paper scale (``M=30, K=500``, ≥8
  topologies): seed engines on the dense serial path vs the PR-1 dense
  engines vs the sparse CSR path, serial and ``workers=N`` — all four
  asserted bit-identical series, wall-clock recorded;
* the artifact store — cold vs warm execution of the same plan through
  ``repro.exec`` (the warm run is a pure content-addressed cache hit;
  byte-identical result JSON asserted, wall-clock ratio tracked);
* the remote socket backend — failure-free overhead of the
  fault-tolerant substrate vs the plain process pool on the same plan
  (identical result content asserted; target < 1.3x at paper scale);
* the kernel-level Spec path — LP prefix prune + memoised value-DP
  tables vs the prior traversal at paper density (byte-identical
  placements asserted; target >= 1.5x), plus the compiled coverage
  engine vs dense (jitted when numba is present, numpy fallbacks
  otherwise);
* the batched scenario build — ``rng_scheme="v2"`` vs the seed's
  per-user loops on the RNG-governed stage at ``K=500, I=300``
  (target >= 3x);
* the serving layer — a resident ``repro.serve.PlacementService``
  patching a seeded 80-event trace vs the stateless
  rebuild-and-re-solve path on the same events (every post-event hit
  ratio asserted ``==`` and the final placement byte-identical; target
  >= 10x median per-event speedup at paper scale), plus sustained
  ``route`` query throughput;
* the observability layer — the sweep bench path with ``repro.obs``
  off vs fully on (metrics + tracing): identical series asserted,
  enabled slowdown measured (target <= 5%) and the disabled no-op cost
  bounded from the recorded span count (target <= 1%).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --strict   # fail <5x
    PYTHONPATH=src python benchmarks/bench_perf.py --workers 4
    PYTHONPATH=src python benchmarks/bench_perf.py --section kernels,scenario
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.dp import knapsack_value_dp, knapsack_weight_dp
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.reference import (
    ReferenceGen,
    ReferenceIndependent,
    ReferenceSpec,
    reference_knapsack_value_dp,
)
from repro.core.spec import TrimCachingSpec
from repro.serve.events import generate_event_trace
from repro.serve.resolver import resolve_from_scratch
from repro.serve.service import PlacementService
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepRunner
from repro.sim.scenario import build_scenario
from repro.utils.units import GB

#: The Gen acceptance target: vectorised vs seed lazy on the tight
#: paper-scale instance.
GEN_TARGET_SPEEDUP = 5.0

#: The sweep acceptance target: end-to-end, seed path -> sparse path.
SWEEP_TARGET_SPEEDUP = 2.0

#: The Spec kernel-level acceptance target: prefix-pruned + memoised DP
#: tables vs the prior traversal, paper density.
SPEC_KERNEL_TARGET_SPEEDUP = 1.5

#: The scenario acceptance target: batched ``rng_scheme="v2"`` vs the
#: seed's per-user loops on the RNG-governed build stage (K=500, I=300).
SCENARIO_TARGET_SPEEDUP = 3.0

#: The serving acceptance target: median per-event speedup of the
#: resident service's patch path over the stateless rebuild-and-re-solve
#: baseline, paper scale (M=30, K=200, I=120, 80-event trace).
SERVE_TARGET_SPEEDUP = 10.0

#: The quick-mode serving sanity bar: at CI-smoke scale the stateless
#: rebuild is cheap, so the resident service only has to clearly beat
#: it, not hit the paper-scale ratio.
SERVE_QUICK_TARGET_SPEEDUP = 2.0

#: Observability acceptance: the estimated cost of the disabled
#: instrumentation (no-op span calls) on the sweep bench path, as a
#: fraction of its wall clock.
OBS_DISABLED_OVERHEAD_TARGET = 0.01

#: Observability acceptance: measured slowdown of the same sweep with
#: metrics + tracing fully enabled.
OBS_ENABLED_OVERHEAD_TARGET = 0.05


def timeit(fn, min_time: float, min_reps: int = 3):
    """Best-of-mean timing: run ``fn`` for ``min_time`` seconds."""
    fn()  # warm-up (also builds instance-level caches for both sides)
    start = time.perf_counter()
    reps = 0
    while time.perf_counter() - start < min_time or reps < min_reps:
        result = fn()
        reps += 1
    return (time.perf_counter() - start) / reps, result


def gen_benchmarks(quick: bool):
    """Seed-vs-new Gen timings on paper-scale instances."""
    budget = 0.3 if quick else 2.0
    specs = [
        # The acceptance instance: tight capacity, the regime where the
        # seed's lazy greedy churns hardest on parked pairs.
        ("gen_paper_tight", dict(num_servers=30, num_users=200, num_models=120,
                                 requests_per_user=30,
                                 storage_bytes=int(0.06 * GB)), 1),
        ("gen_paper_mid", dict(num_servers=30, num_users=200, num_models=120,
                               requests_per_user=30,
                               storage_bytes=int(0.12 * GB)), 42),
    ]
    if quick:
        specs = [
            ("gen_quick", dict(num_servers=8, num_users=48, num_models=30,
                               requests_per_user=12,
                               storage_bytes=int(0.06 * GB)), 1),
        ]
    results = {}
    for name, params, seed in specs:
        instance = build_scenario(ScenarioConfig(**params), seed=seed).instance
        seed_lazy_s, seed_lazy = timeit(
            lambda: ReferenceGen(accelerated=True).solve(instance), budget
        )
        seed_naive_s, seed_naive = timeit(
            lambda: ReferenceGen(accelerated=False).solve(instance), budget
        )
        new_s, new = timeit(
            lambda: TrimCachingGen(accelerated=True).solve(instance), budget
        )
        new_naive_s, new_naive = timeit(
            lambda: TrimCachingGen(accelerated=False).solve(instance), budget
        )
        identical = (
            new.placement == seed_naive.placement
            and new.placement == seed_lazy.placement
            and new.placement == new_naive.placement
        )
        assert identical, f"{name}: placements diverge from the seed"
        results[name] = {
            "instance": {**params, "seed": seed},
            "greedy_steps": new.stats["greedy_steps"],
            "hit_ratio": round(new.hit_ratio, 6),
            "seed_lazy_s": seed_lazy_s,
            "seed_naive_s": seed_naive_s,
            "new_accelerated_s": new_s,
            "new_naive_s": new_naive_s,
            "speedup_vs_seed_lazy": seed_lazy_s / new_s,
            "speedup_vs_seed_naive": seed_naive_s / new_s,
            "placements_identical": identical,
        }
        print(
            f"{name}: seed lazy {seed_lazy_s * 1e3:.2f} ms, "
            f"seed naive {seed_naive_s * 1e3:.2f} ms, "
            f"new {new_s * 1e3:.2f} ms "
            f"({seed_lazy_s / new_s:.1f}x vs lazy, "
            f"{seed_naive_s / new_s:.1f}x vs naive), identical placements"
        )
    return results


def spec_benchmarks(quick: bool, workers: int):
    """Seed-vs-new Spec timings on a special-case instance."""
    budget = 0.3 if quick else 2.0
    params = dict(
        num_servers=8 if quick else 30,
        num_users=48 if quick else 200,
        num_models=30 if quick else 120,
        requests_per_user=12 if quick else 30,
        storage_bytes=int(0.12 * GB),
        library_case="special",
    )
    name = "spec_quick" if quick else "spec_paper"
    instance = build_scenario(ScenarioConfig(**params), seed=42).instance
    seed_s, seed_result = timeit(
        lambda: ReferenceSpec(epsilon=0.1).solve(instance), budget, min_reps=2
    )
    new_s, new_result = timeit(
        lambda: TrimCachingSpec(epsilon=0.1).solve(instance), budget, min_reps=2
    )
    parallel_s, parallel_result = timeit(
        lambda: TrimCachingSpec(epsilon=0.1, workers=workers).solve(instance),
        budget,
        min_reps=2,
    )
    identical = (
        new_result.placement == seed_result.placement
        and parallel_result.placement == seed_result.placement
    )
    assert identical, "Spec placements diverge from the seed"
    print(
        f"{name}: seed {seed_s * 1e3:.2f} ms, new {new_s * 1e3:.2f} ms "
        f"({seed_s / new_s:.1f}x), workers={workers} "
        f"{parallel_s * 1e3:.2f} ms, identical placements"
    )
    return {
        name: {
            "instance": {**params, "seed": 42},
            "hit_ratio": round(new_result.hit_ratio, 6),
            "seed_s": seed_s,
            "new_s": new_s,
            "new_parallel_s": parallel_s,
            "parallel_workers": workers,
            "speedup": seed_s / new_s,
            "placements_identical": identical,
        }
    }


def dp_benchmarks(quick: bool):
    """Seed-vs-new knapsack backend timings on one synthetic batch."""
    rng = np.random.default_rng(0)
    num_items = 12 if quick else 30
    batch = []
    for _ in range(10 if quick else 50):
        # Values in [1, 10]: bounds the rounded-value table so the DP
        # never trips its state guard at epsilon=0.1.
        values = (1.0 + rng.random(num_items) * 9.0).tolist()
        weights = rng.integers(1, 1000, size=num_items).tolist()
        batch.append((values, weights, int(num_items * 300)))

    def run(solver, **kwargs):
        def call():
            out = []
            for values, weights, capacity in batch:
                out.append(solver(values, weights, capacity, **kwargs))
            return out

        return call

    budget = 0.3 if quick else 1.5
    seed_value_s, seed_sel = timeit(
        run(reference_knapsack_value_dp, epsilon=0.1), budget
    )
    new_value_s, new_sel = timeit(run(knapsack_value_dp, epsilon=0.1), budget)
    assert new_sel == seed_sel, "value DP selections diverge from the seed"
    # weight DP was vectorised in the seed already — unchanged code, one
    # timing recorded under both labels to keep the trajectory uniform.
    weight_s, _ = timeit(run(knapsack_weight_dp, quantum=100), budget)
    print(
        f"value_dp: seed {seed_value_s * 1e3:.2f} ms, "
        f"new {new_value_s * 1e3:.2f} ms "
        f"({seed_value_s / new_value_s:.1f}x), identical selections; "
        f"weight_dp {weight_s * 1e3:.2f} ms (unchanged)"
    )
    return {
        "knapsack_value_dp": {
            "batch": {"instances": len(batch), "items": num_items},
            "seed_s": seed_value_s,
            "new_s": new_value_s,
            "speedup": seed_value_s / new_value_s,
            "selections_identical": True,
        },
        "knapsack_weight_dp": {
            "batch": {"instances": len(batch), "items": num_items},
            "seed_s": weight_s,
            "new_s": weight_s,
            "speedup": 1.0,
            "note": "unchanged since seed (already vectorised)",
        },
    }


def sparse_benchmarks(quick: bool):
    """CSR vs dense feasibility construction (identical indicator)."""
    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    budget = 0.3 if quick else 1.5
    scenario = build_scenario(
        ScenarioConfig(**params), seed=7, feasibility="dense"
    )
    dense_s, dense = timeit(lambda: scenario.latency_model.feasibility(), budget)
    sparse_s, sparse = timeit(
        lambda: scenario.latency_model.feasibility_sparse(), budget
    )
    identical = bool((sparse.to_dense() == dense).all())
    assert identical, "sparse feasibility diverges from dense"
    print(
        f"feasibility (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}): dense {dense_s * 1e3:.2f} ms, "
        f"CSR {sparse_s * 1e3:.2f} ms ({dense_s / sparse_s:.1f}x), "
        f"density {sparse.density:.2%}, identical indicator"
    )
    return {
        "feasibility_build": {
            "instance": {**params, "seed": 7},
            "nnz": sparse.nnz,
            "density": sparse.density,
            "dense_s": dense_s,
            "sparse_s": sparse_s,
            "speedup": dense_s / sparse_s,
            "indicator_identical": identical,
        }
    }


def sweep_benchmarks(quick: bool, workers: int):
    """End-to-end paper-scale sweep: seed path vs dense vs sparse vs parallel.

    One wall-clock measurement per pipeline configuration (a sweep is a
    long-running batch; repetition noise is small against its length).
    All four configurations must produce bit-identical hit-ratio series.
    """
    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    num_topologies = 2 if quick else 8
    points = [0.15, 0.3] if quick else [0.15, 0.3, 0.6]
    base = ScenarioConfig(**params)

    def run(algorithms, feasibility, sweep_workers):
        runner = SweepRunner(
            base,
            algorithms,
            num_topologies=num_topologies,
            seed=7,
            feasibility=feasibility,
            workers=sweep_workers,
        )
        start = time.perf_counter()
        result = runner.run(
            "bench sweep",
            "Q (GB)",
            points,
            lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
        )
        return time.perf_counter() - start, result

    seed_algos = {
        "Gen": ReferenceGen(accelerated=True),
        "Independent": ReferenceIndependent(),
    }
    dense_algos = {"Gen": TrimCachingGen(), "Independent": IndependentCaching()}
    sparse_algos = {
        "Gen": TrimCachingGen(engine="sparse"),
        "Independent": IndependentCaching(engine="sparse"),
    }
    seed_s, seed_result = run(seed_algos, "dense", 1)
    dense_s, dense_result = run(dense_algos, "dense", 1)
    sparse_s, sparse_result = run(sparse_algos, "sparse", 1)
    parallel_s, parallel_result = run(sparse_algos, "sparse", workers)
    identical = all(
        (seed_result.series[a].means == other.series[a].means).all()
        and (seed_result.series[a].stds == other.series[a].stds).all()
        for a in seed_result.series
        for other in (dense_result, sparse_result, parallel_result)
    )
    assert identical, "sweep series diverge across pipeline configurations"
    best_new_s = min(sparse_s, parallel_s)
    print(
        f"sweep (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {num_topologies} topologies x "
        f"{len(points)} points): seed-dense-serial {seed_s:.2f} s, "
        f"dense-serial {dense_s:.2f} s, sparse-serial {sparse_s:.2f} s, "
        f"sparse-parallel(w={workers}) {parallel_s:.2f} s — "
        f"sparse vs dense {dense_s / sparse_s:.2f}x, "
        f"end-to-end {seed_s / best_new_s:.2f}x, identical series"
    )
    return {
        "paper_sweep": {
            "instance": {**params, "seed": 7},
            "num_topologies": num_topologies,
            "sweep_points_gb": points,
            "cpu_count": os.cpu_count(),
            "parallel_workers": workers,
            "seed_dense_serial_s": seed_s,
            "dense_serial_s": dense_s,
            "sparse_serial_s": sparse_s,
            "sparse_parallel_s": parallel_s,
            "speedup_sparse_vs_dense": dense_s / sparse_s,
            "speedup_parallel_vs_serial": sparse_s / parallel_s,
            "speedup_end_to_end": seed_s / best_new_s,
            "series_identical": identical,
        }
    }


def cache_benchmarks(quick: bool, workers: int):
    """Cold vs warm execution of one plan through the artifact store.

    The warm run must be a pure cache hit (no tasks executed) returning
    a byte-identical result set; the tracked number is how much faster
    "don't recompute" is than the cold sparse pipeline.
    """
    import tempfile

    from repro.api import ExperimentPlan, SolverSpec, SweepSpec
    from repro.core import GenConfig, IndependentConfig
    from repro.exec import ArtifactStore, ProcessBackend, SerialBackend, execute_plan

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    plan = ExperimentPlan(
        name="bench cache sweep",
        sweep=SweepSpec(
            "capacity", (0.15, 0.3) if quick else (0.15, 0.3, 0.6)
        ),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base=params,
        num_topologies=2 if quick else 8,
        seed=7,
        scale=1.0,
    )
    backend = SerialBackend() if workers <= 1 else ProcessBackend(workers)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        start = time.perf_counter()
        cold, cold_report = execute_plan(plan, backend=backend, store=store)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm, warm_report = execute_plan(plan, backend=backend, store=store)
        warm_s = time.perf_counter() - start
    assert warm_report.cache == "hit", "warm run was not a pure cache hit"
    assert warm_report.tasks_run == 0
    identical = warm.to_json() == cold.to_json()
    assert identical, "warm result set diverges from the cold run"
    print(
        f"cache (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {plan.num_topologies} topologies x "
        f"{len(plan.sweep.points)} points): cold {cold_s:.2f} s "
        f"({cold_report.tasks_run} tasks), warm {warm_s * 1e3:.1f} ms "
        f"(hit) — {cold_s / warm_s:.0f}x, byte-identical result"
    )
    return {
        "plan_sweep": {
            "instance": {**params, "seed": 7},
            "num_topologies": plan.num_topologies,
            "sweep_points_gb": list(plan.sweep.points),
            "backend": backend.name,
            "tasks": cold_report.tasks_total,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup_warm_vs_cold": cold_s / warm_s,
            "warm_is_pure_hit": warm_report.cache == "hit",
            "result_bytes_identical": identical,
        }
    }


def remote_benchmarks(quick: bool, workers: int):
    """Failure-free overhead of the remote socket backend vs process.

    The remote backend pays for its fault tolerance in plumbing — a TCP
    round-trip per task, heartbeat threads, a liveness monitor. This
    entry runs the same plan on both substrates (no chaos, no faults),
    asserts the deterministic result content is identical, and tracks
    the wall-clock ratio. Target: < 1.3x at paper scale, where task
    compute dwarfs the plumbing.
    """
    from repro.api import ExperimentPlan, SolverSpec, SweepSpec
    from repro.core import GenConfig, IndependentConfig
    from repro.exec import ProcessBackend, RemoteClusterBackend, execute_plan
    from repro.sim.serialization import result_set_content_json

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    plan = ExperimentPlan(
        name="bench remote sweep",
        sweep=SweepSpec(
            "capacity", (0.15, 0.3) if quick else (0.15, 0.3, 0.6)
        ),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base=params,
        num_topologies=2 if quick else 8,
        seed=7,
        scale=1.0,
    )
    width = max(2, workers)
    start = time.perf_counter()
    process_result, _ = execute_plan(plan, backend=ProcessBackend(width))
    process_s = time.perf_counter() - start
    start = time.perf_counter()
    remote_result, remote_report = execute_plan(
        plan, backend=RemoteClusterBackend(workers=width)
    )
    remote_s = time.perf_counter() - start
    identical = result_set_content_json(
        remote_result
    ) == result_set_content_json(process_result)
    assert identical, "remote result content diverges from process"
    assert remote_report.workers_lost == 0, "failure-free run lost workers"
    overhead = remote_s / process_s
    print(
        f"remote (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {plan.num_topologies} topologies x "
        f"{len(plan.sweep.points)} points, w={width}): process "
        f"{process_s:.2f} s, remote {remote_s:.2f} s — overhead "
        f"{overhead:.2f}x, identical content"
    )
    return {
        "failure_free_overhead": {
            "instance": {**params, "seed": 7},
            "num_topologies": plan.num_topologies,
            "sweep_points_gb": list(plan.sweep.points),
            "workers": width,
            "process_s": process_s,
            "remote_s": remote_s,
            "overhead_vs_process": overhead,
            "overhead_target": 1.3,
            "content_identical": identical,
        }
    }


def kernels_benchmarks(quick: bool, workers: int):
    """The kernel-level Spec path and the compiled coverage engine.

    Two entries:

    * ``spec_kernel`` — Spec with the LP prefix prune + memoised value-DP
      tables (the defaults) vs the prior traversal (both knobs off) on
      the paper-density instance; byte-identical placements asserted,
      target ``SPEC_KERNEL_TARGET_SPEEDUP``.
    * ``compiled_engine`` — Gen/Independent under ``engine="compiled"``
      vs their default engines. Without numba the compiled engine runs
      its numpy fallbacks (recorded, not a speedup claim); placements
      are asserted identical either way.
    """
    from repro.core import kernels

    budget = 0.3 if quick else 2.0
    params = dict(
        num_servers=8 if quick else 30,
        num_users=48 if quick else 200,
        num_models=30 if quick else 120,
        requests_per_user=12 if quick else 30,
        storage_bytes=int(0.12 * GB),
        library_case="special",
    )
    name = "spec_kernel_quick" if quick else "spec_kernel"
    instance = build_scenario(ScenarioConfig(**params), seed=42).instance
    legacy_s, legacy_result = timeit(
        lambda: TrimCachingSpec(
            epsilon=0.1, knapsack_cache=False, prefix_prune=False
        ).solve(instance),
        budget,
        min_reps=2,
    )
    new_s, new_result = timeit(
        lambda: TrimCachingSpec(epsilon=0.1).solve(instance),
        budget,
        min_reps=2,
    )
    identical = new_result.placement == legacy_result.placement
    assert identical, "kernel-level Spec placements diverge"
    speedup = legacy_s / new_s
    print(
        f"{name}: prior traversal {legacy_s * 1e3:.2f} ms, "
        f"pruned+cached {new_s * 1e3:.2f} ms ({speedup:.2f}x, "
        f"target {SPEC_KERNEL_TARGET_SPEEDUP}x), "
        f"{new_result.stats['knapsack_cache_hits']} table hits / "
        f"{new_result.stats['knapsack_cache_misses']} misses, "
        f"identical placements"
    )

    gen_instance = instance
    dense_s, dense_result = timeit(
        lambda: TrimCachingGen().solve(gen_instance), budget
    )
    compiled_s, compiled_result = timeit(
        lambda: TrimCachingGen(engine="compiled").solve(gen_instance), budget
    )
    ind_dense_s, ind_dense = timeit(
        lambda: IndependentCaching().solve(gen_instance), budget
    )
    ind_compiled_s, ind_compiled = timeit(
        lambda: IndependentCaching(engine="compiled").solve(gen_instance),
        budget,
    )
    engines_identical = (
        compiled_result.placement == dense_result.placement
        and ind_compiled.placement == ind_dense.placement
    )
    assert engines_identical, "compiled-engine placements diverge from dense"
    numba_note = "yes" if kernels.HAVE_NUMBA else "no, numpy fallbacks"
    print(
        f"compiled engine (numba={numba_note}): gen dense "
        f"{dense_s * 1e3:.2f} ms vs compiled {compiled_s * 1e3:.2f} ms; "
        f"independent dense {ind_dense_s * 1e3:.2f} ms vs compiled "
        f"{ind_compiled_s * 1e3:.2f} ms; identical placements"
    )
    return {
        name: {
            "instance": {**params, "seed": 42},
            "hit_ratio": round(new_result.hit_ratio, 6),
            "legacy_traversal_s": legacy_s,
            "pruned_cached_s": new_s,
            "speedup": speedup,
            "knapsack_cache_hits": new_result.stats["knapsack_cache_hits"],
            "knapsack_cache_misses": new_result.stats["knapsack_cache_misses"],
            "placements_identical": identical,
        },
        "compiled_engine": {
            "instance": {**params, "seed": 42},
            "have_numba": kernels.HAVE_NUMBA,
            "gen_dense_s": dense_s,
            "gen_compiled_s": compiled_s,
            "independent_dense_s": ind_dense_s,
            "independent_compiled_s": ind_compiled_s,
            "placements_identical": engines_identical,
            "note": (
                "jitted kernels"
                if kernels.HAVE_NUMBA
                else "numba absent: numpy fallbacks (no speedup claimed)"
            ),
        },
    }


def scenario_benchmarks(quick: bool):
    """Batched scenario build (``rng_scheme="v2"``) vs the seed loops.

    Times the RNG-governed stage of :func:`build_scenario` — popularity/
    demand draws plus per-user QoS construction, the code the scheme
    versioning covers — under both schemes, and the end-to-end build for
    honesty (feasibility construction is scheme-independent and
    dominates the remainder).
    """
    from repro.network.geometry import uniform_points
    from repro.network.users import User, users_from_batch
    from repro.sim.scenario import _build_demand
    from repro.utils.rng import RngFactory

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    budget = 0.3 if quick else 1.5

    def rng_stage(config):
        """The draws `rng_scheme` governs, exactly as build_scenario
        sequences them: per-user QoS vectors, then the demand matrix."""
        factory = RngFactory(7)
        positions = uniform_points(
            config.num_users, config.area_side_m, factory.child("user-positions")
        )
        qos_rng = factory.child("qos")
        if config.rng_scheme == "v2":
            deadlines = qos_rng.uniform(
                config.deadline_range_s[0],
                config.deadline_range_s[1],
                size=(config.num_users, config.num_models),
            )
            inference = qos_rng.uniform(
                config.inference_latency_range_s[0],
                config.inference_latency_range_s[1],
                size=(config.num_users, config.num_models),
            )
            users = users_from_batch(
                positions, deadlines, inference, config.active_probability
            )
        else:
            users = [
                User(
                    user_id=index,
                    position=position,
                    deadlines_s=qos_rng.uniform(
                        config.deadline_range_s[0],
                        config.deadline_range_s[1],
                        size=config.num_models,
                    ),
                    inference_latency_s=qos_rng.uniform(
                        config.inference_latency_range_s[0],
                        config.inference_latency_range_s[1],
                        size=config.num_models,
                    ),
                    active_probability=config.active_probability,
                )
                for index, position in enumerate(positions)
            ]
        demand = _build_demand(config, factory.child("demand"))
        return users, demand

    v1_config = ScenarioConfig(**params)
    v2_config = ScenarioConfig(**params, rng_scheme="v2")
    v1_stage_s, (_, v1_demand) = timeit(lambda: rng_stage(v1_config), budget)
    v2_stage_s, (_, v2_demand) = timeit(lambda: rng_stage(v2_config), budget)
    # Same library, same per-row Zipf weights: the schemes agree on the
    # demand support statistics even though the streams differ.
    assert v1_demand.shape == v2_demand.shape
    assert np.allclose(v1_demand.sum(axis=1), 1.0)
    assert np.allclose(v2_demand.sum(axis=1), 1.0)
    library = build_scenario(v1_config, seed=7).library
    v1_build_s, _ = timeit(
        lambda: build_scenario(v1_config, seed=7, library=library),
        budget,
        min_reps=2,
    )
    v2_build_s, _ = timeit(
        lambda: build_scenario(v2_config, seed=7, library=library),
        budget,
        min_reps=2,
    )
    speedup = v1_stage_s / v2_stage_s
    print(
        f"scenario (K={params['num_users']}, I={params['num_models']}): "
        f"RNG stage v1 {v1_stage_s * 1e3:.2f} ms, v2 "
        f"{v2_stage_s * 1e3:.2f} ms ({speedup:.2f}x, target "
        f"{SCENARIO_TARGET_SPEEDUP}x); full build v1 "
        f"{v1_build_s * 1e3:.2f} ms, v2 {v2_build_s * 1e3:.2f} ms "
        f"({v1_build_s / v2_build_s:.2f}x end-to-end)"
    )
    return {
        "scenario_build": {
            "instance": {**params, "seed": 7},
            "v1_rng_stage_s": v1_stage_s,
            "v2_rng_stage_s": v2_stage_s,
            "speedup_rng_stage": speedup,
            "v1_full_build_s": v1_build_s,
            "v2_full_build_s": v2_build_s,
            "speedup_full_build": v1_build_s / v2_build_s,
            "note": (
                "full build includes the scheme-independent feasibility "
                "construction; the target applies to the RNG stage"
            ),
        }
    }


def serve_benchmarks(quick: bool):
    """Resident service vs stateless re-solve on a seeded event stream.

    Both sides process the *same* mutated-scenario sequence: the
    resident :class:`PlacementService` patches its greedy trace per
    event, the baseline rebuilds latency/feasibility and solves from
    scratch per event. Every post-event hit ratio is asserted ``==``
    (and the final placements byte-identical) before anything is timed
    as a speedup — the serving layer's pinned exactness contract.

    Per-event latencies are the best over several full passes of the
    trace (fresh service each pass), matching the best-of timing the
    other sections use to shed single-core container noise; the scratch
    baseline gets the same treatment, so the ratio is noise-damped on
    both sides.
    """
    if quick:
        key = "serve_quick"
        params = dict(num_servers=6, num_users=40, num_models=24,
                      requests_per_user=8, storage_bytes=int(0.12 * GB))
        seed, num_events, trace_seed = 7, 40, 2
        scratch_passes, serve_passes, route_budget = 2, 2, 0.1
        target = SERVE_QUICK_TARGET_SPEEDUP
    else:
        key = "serve_paper"
        params = dict(num_servers=30, num_users=200, num_models=120,
                      requests_per_user=30,
                      storage_bytes=int(0.06 * GB))
        seed, num_events, trace_seed = 1, 80, 2
        scratch_passes, serve_passes, route_budget = 2, 3, 0.3
        target = SERVE_TARGET_SPEEDUP

    scenario = build_scenario(ScenarioConfig(**params), seed=seed)
    events = list(generate_event_trace(scenario, num_events, seed=trace_seed))

    # Stateless baseline: per-event rebuild + solve, best over passes.
    scratch = resolve_from_scratch(
        scenario, events, solver="gen", engine="sparse"
    )
    scratch_s = np.array([record.seconds for record in scratch])
    for _ in range(scratch_passes - 1):
        again = resolve_from_scratch(
            scenario, events, solver="gen", engine="sparse"
        )
        scratch_s = np.minimum(
            scratch_s, [record.seconds for record in again]
        )

    patch_s = None
    modes: list = []
    counters: dict = {}
    service = None
    initial_solve_s = float("inf")
    for pass_index in range(serve_passes):
        service = PlacementService(scenario, solver="gen", engine="sparse")
        initial_solve_s = min(initial_solve_s, service.initial_solve_s)
        pass_results = service.process_trace(events)
        latencies = np.array([result.latency_s for result in pass_results])
        patch_s = (
            latencies if patch_s is None else np.minimum(patch_s, latencies)
        )
        if pass_index == 0:
            modes = [result.mode for result in pass_results]
            counters = dict(service.counters)
            # The pinned equivalence contract, re-checked here so the
            # reported speedup can never come from a divergent answer.
            for record, result in zip(scratch, pass_results):
                assert record.hit_ratio == result.hit_ratio
            assert np.array_equal(
                service.state.placement.matrix, scratch[-1].placement.matrix
            )

    ratios = scratch_s / patch_s
    median_event_speedup = float(np.median(ratios))
    ratio_of_medians = float(np.median(scratch_s) / np.median(patch_s))
    mode_arr = np.array(modes)
    mode_median_latency_s = {
        mode: float(np.median(patch_s[mode_arr == mode]))
        for mode in ("replay", "fallback", "full", "noop")
        if (mode_arr == mode).any()
    }

    # Sustained read-side throughput: route() against the live placement.
    rng = np.random.default_rng(0)
    route_users = rng.integers(0, scenario.instance.num_users, size=512)
    route_models = rng.integers(0, scenario.instance.num_models, size=512)
    route_pairs = [
        (int(user), int(model))
        for user, model in zip(route_users, route_models)
    ]
    route_s, _ = timeit(
        lambda: [service.route(user, model) for user, model in route_pairs],
        route_budget,
    )
    route_queries_per_s = len(route_pairs) / route_s

    print(
        f"serve ({key}: M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {num_events} events): patch median "
        f"{np.median(patch_s) * 1e3:.2f} ms, scratch median "
        f"{np.median(scratch_s) * 1e3:.2f} ms — {median_event_speedup:.2f}x "
        f"median per-event (target {target}x); "
        f"route {route_queries_per_s:,.0f} q/s"
    )
    return {
        key: {
            "instance": {**params, "seed": seed},
            "trace": {
                "num_events": num_events,
                "seed": trace_seed,
                "serve_passes": serve_passes,
                "scratch_passes": scratch_passes,
            },
            "solver": "gen",
            "engine": "sparse",
            "counters": counters,
            "initial_solve_s": initial_solve_s,
            "patch_median_s": float(np.median(patch_s)),
            "patch_p90_s": float(np.percentile(patch_s, 90)),
            "scratch_median_s": float(np.median(scratch_s)),
            "mode_median_latency_s": mode_median_latency_s,
            "speedup_median_event": median_event_speedup,
            "speedup_ratio_of_medians": ratio_of_medians,
            "route_queries_per_s": route_queries_per_s,
        }
    }


def obs_benchmarks(quick: bool):
    """Observability overhead on the sweep bench path.

    Three numbers, all against the same serial sparse sweep:

    * ``disabled_overhead_est`` — instrumentation cost when obs is off.
      The disabled path cannot be timed differentially (the no-op calls
      are ~ns against a multi-second sweep, far below run-to-run noise),
      so it is *bounded* instead: the span count an enabled run records
      (== the number of ``obs.span`` calls the disabled run makes)
      times the measured cost of one disabled span call.
    * ``enabled_overhead`` — measured: best-of-N enabled wall clock over
      best-of-N disabled, minus one (clamped at 0; at quick scale the
      difference sits inside scheduler noise).
    * series identity: the enabled and disabled sweeps must produce
      ``==``-identical hit-ratio series — telemetry never touches a
      result byte.
    """
    from repro import obs

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 200,
        num_models=30 if quick else 120,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    num_topologies = 2 if quick else 4
    points = [0.15, 0.3]
    passes = 2 if quick else 3
    base = ScenarioConfig(**params)
    algos = {
        "Gen": TrimCachingGen(engine="sparse"),
        "Independent": IndependentCaching(engine="sparse"),
    }

    def run_sweep():
        runner = SweepRunner(
            base,
            algos,
            num_topologies=num_topologies,
            seed=7,
            feasibility="sparse",
            workers=1,
        )
        start = time.perf_counter()
        result = runner.run(
            "obs bench sweep",
            "Q (GB)",
            points,
            lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
        )
        return time.perf_counter() - start, result

    obs.disable()
    disabled_s, disabled_result = float("inf"), None
    for _ in range(passes):
        elapsed, disabled_result = run_sweep()
        disabled_s = min(disabled_s, elapsed)
    enabled_s, enabled_result, span_count, metric_count = (
        float("inf"),
        None,
        0,
        0,
    )
    for _ in range(passes):
        obs.enable(metrics=True, tracing=True)
        elapsed, enabled_result = run_sweep()
        enabled_s = min(enabled_s, elapsed)
        span_count = len(obs.tracer().spans)
        metric_count = len(obs.registry())
        obs.disable()
    identical = all(
        (disabled_result.series[a].means == enabled_result.series[a].means).all()
        and (disabled_result.series[a].stds == enabled_result.series[a].stds).all()
        for a in disabled_result.series
    )
    assert identical, "obs on/off sweeps diverge — telemetry leaked into results"

    # Cost of one disabled obs.span call (attribute check + shared noop).
    reps = 200_000
    probe = obs.span  # obs is disabled here
    start = time.perf_counter()
    for _ in range(reps):
        with probe("obs.bench.noop"):
            pass
    noop_span_s = (time.perf_counter() - start) / reps
    disabled_overhead = span_count * noop_span_s / disabled_s
    enabled_overhead = max(0.0, enabled_s / disabled_s - 1.0)
    print(
        f"obs (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {num_topologies} topologies x "
        f"{len(points)} points): disabled {disabled_s:.2f} s, enabled "
        f"{enabled_s:.2f} s ({enabled_overhead:.2%} overhead, target "
        f"{OBS_ENABLED_OVERHEAD_TARGET:.0%}); {span_count} spans, noop "
        f"span {noop_span_s * 1e9:.0f} ns -> disabled est "
        f"{disabled_overhead:.4%} (target {OBS_DISABLED_OVERHEAD_TARGET:.0%}); "
        f"identical series"
    )
    return {
        "sweep_overhead": {
            "instance": {**params, "seed": 7},
            "num_topologies": num_topologies,
            "sweep_points_gb": points,
            "passes": passes,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "enabled_overhead": enabled_overhead,
            "enabled_overhead_target": OBS_ENABLED_OVERHEAD_TARGET,
            "spans_recorded": span_count,
            "metric_series": metric_count,
            "noop_span_ns": noop_span_s * 1e9,
            "disabled_overhead_est": disabled_overhead,
            "disabled_overhead_target": OBS_DISABLED_OVERHEAD_TARGET,
            "series_identical": identical,
        }
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=f"exit non-zero if Gen speedup < {GEN_TARGET_SPEEDUP}x",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the parallel sweep / Spec entries",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_solvers.json",
        help="where to write the JSON results",
    )
    section_names = (
        "gen",
        "spec",
        "dp",
        "sparse",
        "sweep",
        "cache",
        "remote",
        "kernels",
        "scenario",
        "serve",
        "obs",
    )
    parser.add_argument(
        "--section",
        action="append",
        default=None,
        metavar="NAME[,NAME...]",
        help="run only these sections (repeatable / comma-separated; "
        f"choices: {', '.join(section_names)}; default: all). A partial "
        "run merges into an existing output file, keeping the other "
        "sections' previous numbers",
    )
    args = parser.parse_args(argv)

    if args.section is None:
        selected = list(section_names)
    else:
        selected = [
            token.strip()
            for entry in args.section
            for token in entry.split(",")
            if token.strip()
        ]
        unknown = sorted(set(selected) - set(section_names))
        if unknown:
            parser.error(
                f"unknown --section {', '.join(unknown)} "
                f"(choices: {', '.join(section_names)})"
            )

    runners = {
        "gen": lambda: gen_benchmarks(args.quick),
        "spec": lambda: spec_benchmarks(args.quick, args.workers),
        "dp": lambda: dp_benchmarks(args.quick),
        "sparse": lambda: sparse_benchmarks(args.quick),
        "sweep": lambda: sweep_benchmarks(args.quick, args.workers),
        "cache": lambda: cache_benchmarks(args.quick, args.workers),
        "remote": lambda: remote_benchmarks(args.quick, args.workers),
        "kernels": lambda: kernels_benchmarks(args.quick, args.workers),
        "scenario": lambda: scenario_benchmarks(args.quick),
        "serve": lambda: serve_benchmarks(args.quick),
        "obs": lambda: obs_benchmarks(args.quick),
    }

    # A partial --section run merges into the existing file so the
    # untouched sections keep their previous numbers (and target flags).
    results = {}
    if args.section is not None and args.output.exists():
        try:
            results = json.loads(args.output.read_text())
        except (OSError, ValueError):
            results = {}
    results.setdefault("meta", {})
    results["meta"].update(
        {
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "gen_target_speedup": GEN_TARGET_SPEEDUP,
            "sweep_target_speedup": SWEEP_TARGET_SPEEDUP,
            "spec_kernel_target_speedup": SPEC_KERNEL_TARGET_SPEEDUP,
            "scenario_target_speedup": SCENARIO_TARGET_SPEEDUP,
            "serve_target_speedup": SERVE_TARGET_SPEEDUP,
            "obs_disabled_overhead_target": OBS_DISABLED_OVERHEAD_TARGET,
            "obs_enabled_overhead_target": OBS_ENABLED_OVERHEAD_TARGET,
        }
    )
    for name in section_names:
        if name in selected:
            results[name] = runners[name]()

    checks = []
    if "gen" in selected:
        gen_key = "gen_quick" if args.quick else "gen_paper_tight"
        speedup = results["gen"][gen_key]["speedup_vs_seed_lazy"]
        met = speedup >= GEN_TARGET_SPEEDUP
        results["meta"]["gen_target_met"] = bool(met)
        checks.append(
            (f"Gen acceptance ({gen_key}): {speedup:.1f}x vs seed lazy",
             GEN_TARGET_SPEEDUP, met)
        )
    if "sweep" in selected:
        sweep_speedup = results["sweep"]["paper_sweep"]["speedup_end_to_end"]
        met = sweep_speedup >= SWEEP_TARGET_SPEEDUP
        results["meta"]["sweep_target_met"] = bool(met)
        checks.append(
            (f"Sweep acceptance: {sweep_speedup:.1f}x end-to-end "
             "(seed path -> sparse path)", SWEEP_TARGET_SPEEDUP, met)
        )
    if "kernels" in selected:
        kernel_key = "spec_kernel_quick" if args.quick else "spec_kernel"
        kernel_speedup = results["kernels"][kernel_key]["speedup"]
        met = kernel_speedup >= SPEC_KERNEL_TARGET_SPEEDUP
        results["meta"]["spec_kernel_target_met"] = bool(met)
        checks.append(
            (f"Spec kernel acceptance ({kernel_key}): {kernel_speedup:.2f}x "
             "vs prior traversal", SPEC_KERNEL_TARGET_SPEEDUP, met)
        )
    if "scenario" in selected:
        scenario_speedup = results["scenario"]["scenario_build"][
            "speedup_rng_stage"
        ]
        met = scenario_speedup >= SCENARIO_TARGET_SPEEDUP
        results["meta"]["scenario_target_met"] = bool(met)
        checks.append(
            (f"Scenario acceptance: {scenario_speedup:.2f}x RNG stage "
             "(v1 -> v2)", SCENARIO_TARGET_SPEEDUP, met)
        )

    if "serve" in selected:
        serve_key = "serve_quick" if args.quick else "serve_paper"
        serve_speedup = results["serve"][serve_key]["speedup_median_event"]
        serve_target = (
            SERVE_QUICK_TARGET_SPEEDUP if args.quick else SERVE_TARGET_SPEEDUP
        )
        met = serve_speedup >= serve_target
        if not args.quick:
            # The quick run's small instances cannot hit the paper-scale
            # ratio; the pinned flag is full-scale only.
            results["meta"]["serve_target_met"] = bool(met)
        checks.append(
            (f"Serve acceptance ({serve_key}): {serve_speedup:.1f}x median "
             "per-event patch vs stateless re-solve", serve_target, met)
        )

    if "obs" in selected:
        entry = results["obs"]["sweep_overhead"]
        met = (
            entry["disabled_overhead_est"] <= OBS_DISABLED_OVERHEAD_TARGET
            and entry["enabled_overhead"] <= OBS_ENABLED_OVERHEAD_TARGET
        )
        if not args.quick:
            # Quick instances are too small to damp scheduler noise in
            # the enabled/disabled ratio; the pinned flag is full-scale.
            results["meta"]["obs_target_met"] = bool(met)
        print(
            f"Obs acceptance: disabled est "
            f"{entry['disabled_overhead_est']:.4%} "
            f"(target <= {OBS_DISABLED_OVERHEAD_TARGET:.0%}), enabled "
            f"{entry['enabled_overhead']:.2%} "
            f"(target <= {OBS_ENABLED_OVERHEAD_TARGET:.0%}) — "
            f"{'MET' if met else 'NOT MET'}"
        )

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    for label, target, met in checks:
        print(f"{label} — target {target}x {'MET' if met else 'NOT MET'}")
    if (
        args.strict
        and not args.quick
        and not all(met for _, _, met in checks)
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
