"""Tracked perf bench: seed vs vectorised solver engine.

Times the retained seed implementations (:mod:`repro.core.reference`)
against the vectorised engine on paper-scale instances and writes the
results to ``BENCH_solvers.json`` so the perf trajectory is tracked in
the repository from PR 1 onward.

Covered:

* TrimCaching Gen — seed lazy + seed naive vs vectorised + new naive,
  on an ``M=30, K=200, I=120`` instance (byte-identical placements are
  asserted, not just timed);
* TrimCaching Spec — seed vs vectorised candidate construction, plus the
  ``workers=N`` knapsack-batch fan-out (byte-identical placements);
* both DP backends — the rounded value DP (seed Python loop vs numpy
  slice-shift) and the weight DP (unchanged; timed for the trajectory);
* the sparse feasibility artifact — CSR vs dense construction at paper
  scale (identical indicator asserted);
* the end-to-end sweep pipeline at paper scale (``M=30, K=500``, ≥8
  topologies): seed engines on the dense serial path vs the PR-1 dense
  engines vs the sparse CSR path, serial and ``workers=N`` — all four
  asserted bit-identical series, wall-clock recorded;
* the artifact store — cold vs warm execution of the same plan through
  ``repro.exec`` (the warm run is a pure content-addressed cache hit;
  byte-identical result JSON asserted, wall-clock ratio tracked);
* the remote socket backend — failure-free overhead of the
  fault-tolerant substrate vs the plain process pool on the same plan
  (identical result content asserted; target < 1.3x at paper scale).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --strict   # fail <5x
    PYTHONPATH=src python benchmarks/bench_perf.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.dp import knapsack_value_dp, knapsack_weight_dp
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.reference import (
    ReferenceGen,
    ReferenceIndependent,
    ReferenceSpec,
    reference_knapsack_value_dp,
)
from repro.core.spec import TrimCachingSpec
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepRunner
from repro.sim.scenario import build_scenario
from repro.utils.units import GB

#: The Gen acceptance target: vectorised vs seed lazy on the tight
#: paper-scale instance.
GEN_TARGET_SPEEDUP = 5.0

#: The sweep acceptance target: end-to-end, seed path -> sparse path.
SWEEP_TARGET_SPEEDUP = 2.0


def timeit(fn, min_time: float, min_reps: int = 3):
    """Best-of-mean timing: run ``fn`` for ``min_time`` seconds."""
    fn()  # warm-up (also builds instance-level caches for both sides)
    start = time.perf_counter()
    reps = 0
    while time.perf_counter() - start < min_time or reps < min_reps:
        result = fn()
        reps += 1
    return (time.perf_counter() - start) / reps, result


def gen_benchmarks(quick: bool):
    """Seed-vs-new Gen timings on paper-scale instances."""
    budget = 0.3 if quick else 2.0
    specs = [
        # The acceptance instance: tight capacity, the regime where the
        # seed's lazy greedy churns hardest on parked pairs.
        ("gen_paper_tight", dict(num_servers=30, num_users=200, num_models=120,
                                 requests_per_user=30,
                                 storage_bytes=int(0.06 * GB)), 1),
        ("gen_paper_mid", dict(num_servers=30, num_users=200, num_models=120,
                               requests_per_user=30,
                               storage_bytes=int(0.12 * GB)), 42),
    ]
    if quick:
        specs = [
            ("gen_quick", dict(num_servers=8, num_users=48, num_models=30,
                               requests_per_user=12,
                               storage_bytes=int(0.06 * GB)), 1),
        ]
    results = {}
    for name, params, seed in specs:
        instance = build_scenario(ScenarioConfig(**params), seed=seed).instance
        seed_lazy_s, seed_lazy = timeit(
            lambda: ReferenceGen(accelerated=True).solve(instance), budget
        )
        seed_naive_s, seed_naive = timeit(
            lambda: ReferenceGen(accelerated=False).solve(instance), budget
        )
        new_s, new = timeit(
            lambda: TrimCachingGen(accelerated=True).solve(instance), budget
        )
        new_naive_s, new_naive = timeit(
            lambda: TrimCachingGen(accelerated=False).solve(instance), budget
        )
        identical = (
            new.placement == seed_naive.placement
            and new.placement == seed_lazy.placement
            and new.placement == new_naive.placement
        )
        assert identical, f"{name}: placements diverge from the seed"
        results[name] = {
            "instance": {**params, "seed": seed},
            "greedy_steps": new.stats["greedy_steps"],
            "hit_ratio": round(new.hit_ratio, 6),
            "seed_lazy_s": seed_lazy_s,
            "seed_naive_s": seed_naive_s,
            "new_accelerated_s": new_s,
            "new_naive_s": new_naive_s,
            "speedup_vs_seed_lazy": seed_lazy_s / new_s,
            "speedup_vs_seed_naive": seed_naive_s / new_s,
            "placements_identical": identical,
        }
        print(
            f"{name}: seed lazy {seed_lazy_s * 1e3:.2f} ms, "
            f"seed naive {seed_naive_s * 1e3:.2f} ms, "
            f"new {new_s * 1e3:.2f} ms "
            f"({seed_lazy_s / new_s:.1f}x vs lazy, "
            f"{seed_naive_s / new_s:.1f}x vs naive), identical placements"
        )
    return results


def spec_benchmarks(quick: bool, workers: int):
    """Seed-vs-new Spec timings on a special-case instance."""
    budget = 0.3 if quick else 2.0
    params = dict(
        num_servers=8 if quick else 30,
        num_users=48 if quick else 200,
        num_models=30 if quick else 120,
        requests_per_user=12 if quick else 30,
        storage_bytes=int(0.12 * GB),
        library_case="special",
    )
    name = "spec_quick" if quick else "spec_paper"
    instance = build_scenario(ScenarioConfig(**params), seed=42).instance
    seed_s, seed_result = timeit(
        lambda: ReferenceSpec(epsilon=0.1).solve(instance), budget, min_reps=2
    )
    new_s, new_result = timeit(
        lambda: TrimCachingSpec(epsilon=0.1).solve(instance), budget, min_reps=2
    )
    parallel_s, parallel_result = timeit(
        lambda: TrimCachingSpec(epsilon=0.1, workers=workers).solve(instance),
        budget,
        min_reps=2,
    )
    identical = (
        new_result.placement == seed_result.placement
        and parallel_result.placement == seed_result.placement
    )
    assert identical, "Spec placements diverge from the seed"
    print(
        f"{name}: seed {seed_s * 1e3:.2f} ms, new {new_s * 1e3:.2f} ms "
        f"({seed_s / new_s:.1f}x), workers={workers} "
        f"{parallel_s * 1e3:.2f} ms, identical placements"
    )
    return {
        name: {
            "instance": {**params, "seed": 42},
            "hit_ratio": round(new_result.hit_ratio, 6),
            "seed_s": seed_s,
            "new_s": new_s,
            "new_parallel_s": parallel_s,
            "parallel_workers": workers,
            "speedup": seed_s / new_s,
            "placements_identical": identical,
        }
    }


def dp_benchmarks(quick: bool):
    """Seed-vs-new knapsack backend timings on one synthetic batch."""
    rng = np.random.default_rng(0)
    num_items = 12 if quick else 30
    batch = []
    for _ in range(10 if quick else 50):
        # Values in [1, 10]: bounds the rounded-value table so the DP
        # never trips its state guard at epsilon=0.1.
        values = (1.0 + rng.random(num_items) * 9.0).tolist()
        weights = rng.integers(1, 1000, size=num_items).tolist()
        batch.append((values, weights, int(num_items * 300)))

    def run(solver, **kwargs):
        def call():
            out = []
            for values, weights, capacity in batch:
                out.append(solver(values, weights, capacity, **kwargs))
            return out

        return call

    budget = 0.3 if quick else 1.5
    seed_value_s, seed_sel = timeit(
        run(reference_knapsack_value_dp, epsilon=0.1), budget
    )
    new_value_s, new_sel = timeit(run(knapsack_value_dp, epsilon=0.1), budget)
    assert new_sel == seed_sel, "value DP selections diverge from the seed"
    # weight DP was vectorised in the seed already — unchanged code, one
    # timing recorded under both labels to keep the trajectory uniform.
    weight_s, _ = timeit(run(knapsack_weight_dp, quantum=100), budget)
    print(
        f"value_dp: seed {seed_value_s * 1e3:.2f} ms, "
        f"new {new_value_s * 1e3:.2f} ms "
        f"({seed_value_s / new_value_s:.1f}x), identical selections; "
        f"weight_dp {weight_s * 1e3:.2f} ms (unchanged)"
    )
    return {
        "knapsack_value_dp": {
            "batch": {"instances": len(batch), "items": num_items},
            "seed_s": seed_value_s,
            "new_s": new_value_s,
            "speedup": seed_value_s / new_value_s,
            "selections_identical": True,
        },
        "knapsack_weight_dp": {
            "batch": {"instances": len(batch), "items": num_items},
            "seed_s": weight_s,
            "new_s": weight_s,
            "speedup": 1.0,
            "note": "unchanged since seed (already vectorised)",
        },
    }


def sparse_benchmarks(quick: bool):
    """CSR vs dense feasibility construction (identical indicator)."""
    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    budget = 0.3 if quick else 1.5
    scenario = build_scenario(
        ScenarioConfig(**params), seed=7, feasibility="dense"
    )
    dense_s, dense = timeit(lambda: scenario.latency_model.feasibility(), budget)
    sparse_s, sparse = timeit(
        lambda: scenario.latency_model.feasibility_sparse(), budget
    )
    identical = bool((sparse.to_dense() == dense).all())
    assert identical, "sparse feasibility diverges from dense"
    print(
        f"feasibility (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}): dense {dense_s * 1e3:.2f} ms, "
        f"CSR {sparse_s * 1e3:.2f} ms ({dense_s / sparse_s:.1f}x), "
        f"density {sparse.density:.2%}, identical indicator"
    )
    return {
        "feasibility_build": {
            "instance": {**params, "seed": 7},
            "nnz": sparse.nnz,
            "density": sparse.density,
            "dense_s": dense_s,
            "sparse_s": sparse_s,
            "speedup": dense_s / sparse_s,
            "indicator_identical": identical,
        }
    }


def sweep_benchmarks(quick: bool, workers: int):
    """End-to-end paper-scale sweep: seed path vs dense vs sparse vs parallel.

    One wall-clock measurement per pipeline configuration (a sweep is a
    long-running batch; repetition noise is small against its length).
    All four configurations must produce bit-identical hit-ratio series.
    """
    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    num_topologies = 2 if quick else 8
    points = [0.15, 0.3] if quick else [0.15, 0.3, 0.6]
    base = ScenarioConfig(**params)

    def run(algorithms, feasibility, sweep_workers):
        runner = SweepRunner(
            base,
            algorithms,
            num_topologies=num_topologies,
            seed=7,
            feasibility=feasibility,
            workers=sweep_workers,
        )
        start = time.perf_counter()
        result = runner.run(
            "bench sweep",
            "Q (GB)",
            points,
            lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
        )
        return time.perf_counter() - start, result

    seed_algos = {
        "Gen": ReferenceGen(accelerated=True),
        "Independent": ReferenceIndependent(),
    }
    dense_algos = {"Gen": TrimCachingGen(), "Independent": IndependentCaching()}
    sparse_algos = {
        "Gen": TrimCachingGen(engine="sparse"),
        "Independent": IndependentCaching(engine="sparse"),
    }
    seed_s, seed_result = run(seed_algos, "dense", 1)
    dense_s, dense_result = run(dense_algos, "dense", 1)
    sparse_s, sparse_result = run(sparse_algos, "sparse", 1)
    parallel_s, parallel_result = run(sparse_algos, "sparse", workers)
    identical = all(
        (seed_result.series[a].means == other.series[a].means).all()
        and (seed_result.series[a].stds == other.series[a].stds).all()
        for a in seed_result.series
        for other in (dense_result, sparse_result, parallel_result)
    )
    assert identical, "sweep series diverge across pipeline configurations"
    best_new_s = min(sparse_s, parallel_s)
    print(
        f"sweep (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {num_topologies} topologies x "
        f"{len(points)} points): seed-dense-serial {seed_s:.2f} s, "
        f"dense-serial {dense_s:.2f} s, sparse-serial {sparse_s:.2f} s, "
        f"sparse-parallel(w={workers}) {parallel_s:.2f} s — "
        f"sparse vs dense {dense_s / sparse_s:.2f}x, "
        f"end-to-end {seed_s / best_new_s:.2f}x, identical series"
    )
    return {
        "paper_sweep": {
            "instance": {**params, "seed": 7},
            "num_topologies": num_topologies,
            "sweep_points_gb": points,
            "cpu_count": os.cpu_count(),
            "parallel_workers": workers,
            "seed_dense_serial_s": seed_s,
            "dense_serial_s": dense_s,
            "sparse_serial_s": sparse_s,
            "sparse_parallel_s": parallel_s,
            "speedup_sparse_vs_dense": dense_s / sparse_s,
            "speedup_parallel_vs_serial": sparse_s / parallel_s,
            "speedup_end_to_end": seed_s / best_new_s,
            "series_identical": identical,
        }
    }


def cache_benchmarks(quick: bool, workers: int):
    """Cold vs warm execution of one plan through the artifact store.

    The warm run must be a pure cache hit (no tasks executed) returning
    a byte-identical result set; the tracked number is how much faster
    "don't recompute" is than the cold sparse pipeline.
    """
    import tempfile

    from repro.api import ExperimentPlan, SolverSpec, SweepSpec
    from repro.core import GenConfig, IndependentConfig
    from repro.exec import ArtifactStore, ProcessBackend, SerialBackend, execute_plan

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    plan = ExperimentPlan(
        name="bench cache sweep",
        sweep=SweepSpec(
            "capacity", (0.15, 0.3) if quick else (0.15, 0.3, 0.6)
        ),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base=params,
        num_topologies=2 if quick else 8,
        seed=7,
        scale=1.0,
    )
    backend = SerialBackend() if workers <= 1 else ProcessBackend(workers)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        start = time.perf_counter()
        cold, cold_report = execute_plan(plan, backend=backend, store=store)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm, warm_report = execute_plan(plan, backend=backend, store=store)
        warm_s = time.perf_counter() - start
    assert warm_report.cache == "hit", "warm run was not a pure cache hit"
    assert warm_report.tasks_run == 0
    identical = warm.to_json() == cold.to_json()
    assert identical, "warm result set diverges from the cold run"
    print(
        f"cache (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {plan.num_topologies} topologies x "
        f"{len(plan.sweep.points)} points): cold {cold_s:.2f} s "
        f"({cold_report.tasks_run} tasks), warm {warm_s * 1e3:.1f} ms "
        f"(hit) — {cold_s / warm_s:.0f}x, byte-identical result"
    )
    return {
        "plan_sweep": {
            "instance": {**params, "seed": 7},
            "num_topologies": plan.num_topologies,
            "sweep_points_gb": list(plan.sweep.points),
            "backend": backend.name,
            "tasks": cold_report.tasks_total,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup_warm_vs_cold": cold_s / warm_s,
            "warm_is_pure_hit": warm_report.cache == "hit",
            "result_bytes_identical": identical,
        }
    }


def remote_benchmarks(quick: bool, workers: int):
    """Failure-free overhead of the remote socket backend vs process.

    The remote backend pays for its fault tolerance in plumbing — a TCP
    round-trip per task, heartbeat threads, a liveness monitor. This
    entry runs the same plan on both substrates (no chaos, no faults),
    asserts the deterministic result content is identical, and tracks
    the wall-clock ratio. Target: < 1.3x at paper scale, where task
    compute dwarfs the plumbing.
    """
    from repro.api import ExperimentPlan, SolverSpec, SweepSpec
    from repro.core import GenConfig, IndependentConfig
    from repro.exec import ProcessBackend, RemoteClusterBackend, execute_plan
    from repro.sim.serialization import result_set_content_json

    params = dict(
        num_servers=8 if quick else 30,
        num_users=60 if quick else 500,
        num_models=30 if quick else 300,
        requests_per_user=12 if quick else 30,
        deadline_range_s=(1.0, 2.0),
        library_case="special",
    )
    plan = ExperimentPlan(
        name="bench remote sweep",
        sweep=SweepSpec(
            "capacity", (0.15, 0.3) if quick else (0.15, 0.3, 0.6)
        ),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base=params,
        num_topologies=2 if quick else 8,
        seed=7,
        scale=1.0,
    )
    width = max(2, workers)
    start = time.perf_counter()
    process_result, _ = execute_plan(plan, backend=ProcessBackend(width))
    process_s = time.perf_counter() - start
    start = time.perf_counter()
    remote_result, remote_report = execute_plan(
        plan, backend=RemoteClusterBackend(workers=width)
    )
    remote_s = time.perf_counter() - start
    identical = result_set_content_json(
        remote_result
    ) == result_set_content_json(process_result)
    assert identical, "remote result content diverges from process"
    assert remote_report.workers_lost == 0, "failure-free run lost workers"
    overhead = remote_s / process_s
    print(
        f"remote (M={params['num_servers']}, K={params['num_users']}, "
        f"I={params['num_models']}, {plan.num_topologies} topologies x "
        f"{len(plan.sweep.points)} points, w={width}): process "
        f"{process_s:.2f} s, remote {remote_s:.2f} s — overhead "
        f"{overhead:.2f}x, identical content"
    )
    return {
        "failure_free_overhead": {
            "instance": {**params, "seed": 7},
            "num_topologies": plan.num_topologies,
            "sweep_points_gb": list(plan.sweep.points),
            "workers": width,
            "process_s": process_s,
            "remote_s": remote_s,
            "overhead_vs_process": overhead,
            "overhead_target": 1.3,
            "content_identical": identical,
        }
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=f"exit non-zero if Gen speedup < {GEN_TARGET_SPEEDUP}x",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the parallel sweep / Spec entries",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_solvers.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    results = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "gen_target_speedup": GEN_TARGET_SPEEDUP,
            "sweep_target_speedup": SWEEP_TARGET_SPEEDUP,
        },
        "gen": gen_benchmarks(args.quick),
        "spec": spec_benchmarks(args.quick, args.workers),
        "dp": dp_benchmarks(args.quick),
        "sparse": sparse_benchmarks(args.quick),
        "sweep": sweep_benchmarks(args.quick, args.workers),
        "cache": cache_benchmarks(args.quick, args.workers),
        "remote": remote_benchmarks(args.quick, args.workers),
    }

    gen_key = "gen_quick" if args.quick else "gen_paper_tight"
    speedup = results["gen"][gen_key]["speedup_vs_seed_lazy"]
    target_met = speedup >= GEN_TARGET_SPEEDUP
    results["meta"]["gen_target_met"] = bool(target_met)
    sweep_speedup = results["sweep"]["paper_sweep"]["speedup_end_to_end"]
    sweep_met = sweep_speedup >= SWEEP_TARGET_SPEEDUP
    results["meta"]["sweep_target_met"] = bool(sweep_met)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"Gen acceptance ({gen_key}): {speedup:.1f}x vs seed lazy — "
        f"target {GEN_TARGET_SPEEDUP}x {'MET' if target_met else 'NOT MET'}"
    )
    print(
        f"Sweep acceptance: {sweep_speedup:.1f}x end-to-end (seed path -> "
        f"sparse path) — target {SWEEP_TARGET_SPEEDUP}x "
        f"{'MET' if sweep_met else 'NOT MET'}"
    )
    if args.strict and not args.quick and not (target_met and sweep_met):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
