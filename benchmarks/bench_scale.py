"""Scale benchmark: chunked scenario build + streaming eval vs K.

Measures the million-user pipeline end to end — chunked ``rng_scheme="v2"``
scenario build, streaming expected-hit-ratio evaluation, and the
stratified sampling evaluator — at K = 1e4 / 1e5 / 1e6 users, recording
wall-clock and peak RSS per tier. Results merge into the ``scale``
section of ``BENCH_solvers.json``.

Each tier runs in its own subprocess: ``resource.getrusage`` reports the
*process* high-water mark, so tiers sharing a process would inherit the
largest tier's RSS. The quick tier (``--quick``, K = 2e4) additionally
asserts the chunked build compares ``==`` to the unchunked v2 build and
that peak RSS stays under a fixed cap — the CI scale-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full tiers
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

FULL_TIERS = (10_000, 100_000, 1_000_000)
QUICK_TIERS = (20_000,)
DEFAULT_CHUNK = 65_536
#: Peak-RSS ceiling asserted by the quick tier (MB). The K=2e4 worker
#: peaks well under half of this; the headroom absorbs interpreter and
#: numpy baseline variance across CI runners, not workload growth.
QUICK_RSS_CAP_MB = 1024.0


def peak_rss_mb() -> float:
    """Process high-water resident set size in MB.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, where this
    benchmark does not assert caps — the CI job pins ubuntu).
    """
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss_kb /= 1024.0
    return rss_kb / 1024.0


def _bench_config(num_users: int, chunk_size):
    from repro.sim.config import ScenarioConfig

    base = ScenarioConfig()
    # Radio resources scale with the population so per-user shares stay
    # at paper levels — otherwise a million users starve every link and
    # the feasibility set degenerates to empty (nothing to walk).
    density_factor = max(1.0, num_users / 100.0)
    return ScenarioConfig(
        num_users=num_users,
        num_servers=10,
        num_models=20,
        requests_per_user=8,
        total_bandwidth_hz=base.total_bandwidth_hz * density_factor,
        total_power_watts=base.total_power_watts * density_factor,
        rng_scheme="v2",
        chunk_size=chunk_size,
    )


def _bench_placement(num_servers: int, num_models: int):
    """A deterministic placement: model i cached on server i mod M."""
    import numpy as np

    from repro.core.placement import Placement

    matrix = np.zeros((num_servers, num_models), dtype=bool)
    matrix[np.arange(num_models) % num_servers, np.arange(num_models)] = True
    return Placement(matrix)


def run_tier(
    num_users: int, chunk_size: int, assert_identity: bool
) -> dict:
    """Build + evaluate one tier in this process; return the result row."""
    import numpy as np

    from repro.sim.evaluator import EvalSpec, PlacementEvaluator
    from repro.sim.scenario import build_scenario

    config = _bench_config(num_users, chunk_size)
    start = time.perf_counter()
    scenario = build_scenario(config, seed=0)
    build_s = time.perf_counter() - start

    placement = _bench_placement(config.num_servers, config.num_models)
    evaluator = PlacementEvaluator(scenario)

    start = time.perf_counter()
    stream = evaluator.streaming_expected_hit_ratio(placement)
    stream_s = time.perf_counter() - start

    sample_users = min(num_users, 10_000)
    spec = EvalSpec(sample_users=sample_users, strata=8, seed=0)
    start = time.perf_counter()
    sampled = evaluator.sampled_hit_ratio(placement, spec)
    sampled_s = time.perf_counter() - start

    row = {
        "users": num_users,
        "chunk_size": chunk_size,
        "nnz": int(scenario.instance.sparse_feasible.nnz),
        "build_s": build_s,
        "stream_eval_s": stream_s,
        "sampled_eval_s": sampled_s,
        "hit_ratio_exact": stream.hit_ratio,
        "hit_ratio_sampled": sampled.estimate,
        "sampled_ci_half_width": sampled.ci_half_width,
        "sample_size": sampled.sample_size,
    }

    if assert_identity:
        reference = build_scenario(
            config.with_overrides(chunk_size=None), seed=0
        )
        assert (
            scenario.instance.sparse_feasible
            == reference.instance.sparse_feasible
        ), "chunked CSR != unchunked CSR"
        assert np.array_equal(scenario.demand, reference.demand), (
            "chunked demand != unchunked demand"
        )
        exact = evaluator.expected_hit_ratio(placement)
        assert np.isclose(stream.hit_ratio, exact, rtol=1e-9), (
            stream.hit_ratio,
            exact,
        )
        row["identity_checked"] = True

    row["peak_rss_mb"] = peak_rss_mb()
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single K=2e4 tier with chunked==unchunked and peak-RSS "
        "assertions; does not write the results file",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_solvers.json",
        help="results file the 'scale' section merges into",
    )
    parser.add_argument(
        "--worker",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # internal: run one tier, print JSON
    )
    parser.add_argument(
        "--assert-identity",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    if args.worker is not None:
        row = run_tier(args.worker, args.chunk_size, args.assert_identity)
        print(json.dumps(row))
        return 0

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    rows = []
    for num_users in tiers:
        command = [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            str(num_users),
            "--chunk-size",
            str(args.chunk_size),
        ]
        if args.quick:
            command.append("--assert-identity")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        print(f"K={num_users:>9,} ...", flush=True)
        proc = subprocess.run(
            command, env=env, capture_output=True, text=True
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            return 1
        row = json.loads(proc.stdout.strip().splitlines()[-1])
        rows.append(row)
        print(
            f"  build {row['build_s']:.2f}s  stream-eval "
            f"{row['stream_eval_s']:.2f}s  sampled-eval "
            f"{row['sampled_eval_s']:.3f}s  peak RSS "
            f"{row['peak_rss_mb']:.0f} MB  nnz {row['nnz']:,}"
        )

    if args.quick:
        row = rows[0]
        assert row.get("identity_checked"), "worker skipped identity check"
        assert row["peak_rss_mb"] <= QUICK_RSS_CAP_MB, (
            f"peak RSS {row['peak_rss_mb']:.0f} MB exceeds the "
            f"{QUICK_RSS_CAP_MB:.0f} MB smoke cap"
        )
        print(
            f"scale smoke OK: chunked==unchunked, peak RSS "
            f"{row['peak_rss_mb']:.0f} MB <= {QUICK_RSS_CAP_MB:.0f} MB"
        )
        return 0

    results = {}
    if args.output.exists():
        try:
            results = json.loads(args.output.read_text())
        except (OSError, ValueError):
            results = {}
    results["scale"] = {
        "chunk_size": args.chunk_size,
        "tiers": rows,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote scale section to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
