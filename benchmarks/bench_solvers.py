"""Bench: raw solver micro-benchmarks on a fixed snapshot.

Not a paper figure — these time the three algorithms on an identical
instance so regressions in the hot greedy/DP paths show up directly, and
they record how the lazy greedy scales against the naive one.
"""

import pytest

from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.spec import TrimCachingSpec
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


@pytest.fixture(scope="module")
def snapshot():
    config = ScenarioConfig(
        num_servers=8,
        num_users=24,
        num_models=30,
        requests_per_user=15,
        storage_bytes=int(0.12 * GB),
    )
    return build_scenario(config, seed=100)


def test_solver_gen_lazy(benchmark, snapshot):
    result = benchmark(lambda: TrimCachingGen().solve(snapshot.instance))
    benchmark.extra_info["hit_ratio"] = round(result.hit_ratio, 4)
    assert result.hit_ratio > 0


def test_solver_gen_naive(benchmark, snapshot):
    result = benchmark(
        lambda: TrimCachingGen(accelerated=False).solve(snapshot.instance)
    )
    benchmark.extra_info["hit_ratio"] = round(result.hit_ratio, 4)
    lazy = TrimCachingGen().solve(snapshot.instance)
    assert result.hit_ratio == pytest.approx(lazy.hit_ratio, abs=1e-12)


def test_solver_independent(benchmark, snapshot):
    result = benchmark(lambda: IndependentCaching().solve(snapshot.instance))
    benchmark.extra_info["hit_ratio"] = round(result.hit_ratio, 4)
    assert result.hit_ratio > 0


def test_solver_spec(benchmark, snapshot):
    result = benchmark.pedantic(
        lambda: TrimCachingSpec(epsilon=0.1).solve(snapshot.instance),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["hit_ratio"] = round(result.hit_ratio, 4)
    gen = TrimCachingGen().solve(snapshot.instance)
    assert result.hit_ratio >= gen.hit_ratio - 0.02
