"""Bench: regenerate Table I (general-case library construction)."""

from repro.sim import experiments


def test_table1_library_construction(benchmark):
    """Paper Table I: two-round fine-tuning at the full 300-model scale."""
    result = benchmark(
        experiments.table1_library_construction, num_models=189, seed=0
    )
    assert result.num_models == 189
    assert result.num_shared_blocks > 100
    assert result.savings_ratio > 0.3
    benchmark.extra_info["num_shared_blocks"] = result.num_shared_blocks
    benchmark.extra_info["savings_ratio"] = round(result.savings_ratio, 4)
    print()
    print(result.to_table())
