"""Benchmark-harness configuration.

Every benchmark regenerates one paper table/figure via the entry points in
:mod:`repro.sim.experiments` and attaches the reproduced series to
``benchmark.extra_info`` so the numbers land in the saved benchmark JSON.

Scale knobs: the environment variable ``REPRO_BENCH_TOPOLOGIES`` overrides
how many random topologies each figure averages over (paper: 100; default
here: small, for wall-clock sanity), and ``REPRO_BENCH_SCALE`` overrides
the library/storage scale of the Fig. 4/5 sweeps (1.0 = the paper's full
300-model setting; see ``repro.sim.experiments.DEFAULT_SCALE``).
"""

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_topologies() -> int:
    """Topologies per figure point (paper: 100)."""
    return _env_int("REPRO_BENCH_TOPOLOGIES", 2)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Library/storage scale of the sweep figures (paper: 1.0)."""
    return _env_float("REPRO_BENCH_SCALE", 0.1)


def attach_series(benchmark, result) -> None:
    """Record an ExperimentResult's series in the benchmark JSON."""
    benchmark.extra_info["x_values"] = list(result.x_values)
    for algo, series in result.series.items():
        benchmark.extra_info[f"{algo} (mean)"] = [
            round(float(v), 4) for v in series.means
        ]
    print()
    print(result.to_table())


def attach_comparison(benchmark, result) -> None:
    """Record an AlgorithmComparison in the benchmark JSON."""
    for algo in result.hit_ratios:
        benchmark.extra_info[f"{algo} hit"] = round(result.mean_hit(algo), 4)
        benchmark.extra_info[f"{algo} runtime_s"] = float(
            f"{result.mean_runtime(algo):.3e}"
        )
    print()
    print(result.to_table())
