"""Autonomous-driving zone: perception models for moving vehicles.

The paper's opening use case: vehicles must download perception models
within ~1 s (3GPP TS 22.874). This example builds a roadside deployment —
dense small cells along a corridor, vehicle-class users with tight
deadlines — places CNN perception models with TrimCaching Gen, then
replays two hours of vehicle mobility against the fixed placement (the
paper's Fig. 7 methodology) to show how robust the decision stays.

Run with::

    python examples/autonomous_driving.py
"""

from repro import (
    MobilityStudy,
    ScenarioConfig,
    TrimCachingGen,
    TrimCachingSpec,
    build_scenario,
)
from repro.network.mobility import VEHICLE
from repro.utils.tables import format_table
from repro.utils.units import GB


def main() -> None:
    config = ScenarioConfig(
        num_servers=8,
        num_users=12,
        num_models=24,
        requests_per_user=12,
        storage_bytes=int(0.2 * GB),
        # Tight vehicular QoS: the whole download + on-device inference
        # must fit in well under a second.
        deadline_range_s=(0.5, 0.8),
        inference_latency_range_s=(0.05, 0.1),
    )
    scenario = build_scenario(config, seed=7)
    print(
        f"Corridor deployment: {scenario.num_servers} roadside units, "
        f"{scenario.num_users} vehicles, {scenario.num_models} perception models"
    )

    placements = {
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.1).solve(scenario.instance),
        "TrimCaching Gen": TrimCachingGen().solve(scenario.instance),
    }
    for name, result in placements.items():
        print(f"  {name}: initial hit ratio {result.hit_ratio:.3f}")
    print()

    # Replay 2 h of vehicle movement against the frozen placements,
    # re-evaluating every 5 minutes.
    study = MobilityStudy(
        scenario, slot_duration_s=5.0, sample_every=60, classes=(VEHICLE,)
    )
    rows = []
    traces = {}
    for name, result in placements.items():
        traces[name] = study.run(result.placement, horizon_s=7200.0, seed=3)

    names = list(traces)
    sample_indices = range(0, len(traces[names[0]].times_s), 4)
    for index in sample_indices:
        row = [float(traces[names[0]].times_s[index] / 60.0)]
        row.extend(float(traces[name].hit_ratios[index]) for name in names)
        rows.append(row)
    print(
        format_table(
            ["time (min)"] + names,
            rows,
            title="Hit ratio while vehicles move (placement fixed at t=0)",
        )
    )
    print()
    for name in names:
        print(
            f"  {name}: degradation over 2 h = {traces[name].degradation:.1%}"
        )
    print(
        "\nThe placement survives long mobility horizons, so model\n"
        "replacement (which consumes backhaul bandwidth) can stay rare —\n"
        "the paper's §VII-E conclusion."
    )


if __name__ == "__main__":
    main()
