"""Cache, resume and re-serve a sweep with the `repro.exec` subsystem.

A plan is plain data, so its serialised form is a *content address*: the
:class:`~repro.exec.ArtifactStore` keys every executed result (and every
per-task partial) on a hash of the canonical plan JSON plus a
code-version salt. This example runs one sweep three ways:

1. cold, on the sharded :class:`~repro.exec.LocalClusterBackend`,
   populating the store;
2. warm, on a *different* backend — a pure cache hit (zero tasks run,
   byte-identical result set), because the cache key excludes how the
   work is executed;
3. killed mid-sweep and resumed — the completed tasks are restored from
   the store and only the remainder executes, to the exact numbers of
   an uninterrupted run.

Run with::

    PYTHONPATH=src python examples/cached_sweep.py
"""

import tempfile

from repro.api import ExperimentPlan, SolverSpec, SweepSpec
from repro.core.gen import GenConfig
from repro.core.independent import IndependentConfig
from repro.exec import (
    ArtifactStore,
    LocalClusterBackend,
    SerialBackend,
    execute_plan,
    plan_cache_key,
)


class DieAfter:
    """A backend that crashes after ``after`` tasks (simulated kill)."""

    name = "die-after"

    def __init__(self, after: int) -> None:
        self.after = after

    def map(self, fn, payloads):
        def _iterate():
            for index, payload in enumerate(payloads):
                if index >= self.after:
                    raise RuntimeError("simulated mid-sweep crash")
                yield fn(payload)

        return _iterate()


def main() -> None:
    plan = ExperimentPlan(
        name="Cached sweep — hit ratio vs. capacity",
        sweep=SweepSpec(axis="capacity", points=(0.3, 0.6)),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec("independent", config=IndependentConfig(engine="sparse")),
        ),
        base={
            "library_case": "special",
            "num_servers": 6,
            "num_users": 24,
            "num_models": 30,
            "requests_per_user": 10,
        },
        num_topologies=4,
        seed=0,
        scale=0.2,
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ArtifactStore(cache_dir)
        print(f"plan content address: {plan_cache_key(plan)[:16]}…\n")

        # 1. Cold: the cluster backend shards the 2x4 task grid.
        cold, report = execute_plan(
            plan, backend=LocalClusterBackend(shards=2), store=store
        )
        print(cold.to_table())
        print(f"cold:  {report.summary()}")

        # 2. Warm, different backend: a pure content-addressed hit.
        warm, report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        print(f"warm:  {report.summary()}")
        assert warm.to_json() == cold.to_json(), "hit must be byte-identical"

        # 3. Kill a fresh sweep mid-flight, then resume it.
        resume_store = ArtifactStore(tempfile.mkdtemp(dir=cache_dir))
        try:
            execute_plan(plan, backend=DieAfter(3), store=resume_store)
        except RuntimeError:
            done = len(resume_store.completed_tasks(plan_cache_key(plan)))
            print(f"crash: {done}/8 tasks survived the kill")
        resumed, report = execute_plan(plan, store=resume_store)
        print(f"resume: {report.summary()}")
        assert all(
            (resumed.series[algo].means == cold.series[algo].means).all()
            for algo in cold.series
        ), "resumed series must match the uninterrupted run"
        print("\nresumed sweep matches the uninterrupted run exactly.")


if __name__ == "__main__":
    main()
