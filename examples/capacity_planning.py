"""Capacity planning: how much edge storage does a target hit ratio need?

An operator-facing workflow built on the library: sweep per-server cache
capacity, measure the achieved hit ratio per algorithm, and report the
smallest capacity meeting a service-level objective. Parameter sharing
shifts the whole curve left — the same SLO needs markedly less storage.

Run with::

    python examples/capacity_planning.py
"""

from typing import Dict, Optional

import numpy as np

from repro import IndependentCaching, ScenarioConfig, TrimCachingGen
from repro.sim.runner import SweepRunner
from repro.utils.tables import format_table
from repro.utils.units import GB, format_size

#: Service-level objective on the expected cache hit ratio.
TARGET_HIT_RATIO = 0.6

CAPACITIES_GB = (0.05, 0.1, 0.15, 0.2, 0.3, 0.4)


def smallest_capacity_meeting(
    means: np.ndarray, capacities_gb, target: float
) -> Optional[float]:
    """First sweep point whose mean hit ratio reaches ``target``."""
    for capacity, mean in zip(capacities_gb, means):
        if mean >= target:
            return capacity
    return None


def main() -> None:
    base = ScenarioConfig(
        num_servers=6,
        num_users=18,
        num_models=45,
        requests_per_user=20,
    )
    runner = SweepRunner(
        base_config=base,
        algorithms={
            "TrimCaching Gen": TrimCachingGen(),
            "Independent Caching": IndependentCaching(),
        },
        num_topologies=4,
        seed=0,
    )
    result = runner.run(
        "Capacity planning sweep",
        "Q (GB)",
        list(CAPACITIES_GB),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )
    print(result.to_table())
    print()

    verdicts: Dict[str, Optional[float]] = {}
    for algo in result.series:
        verdicts[algo] = smallest_capacity_meeting(
            result.mean_of(algo), CAPACITIES_GB, TARGET_HIT_RATIO
        )
    rows = []
    for algo, capacity in verdicts.items():
        rows.append(
            [
                algo,
                "not reachable in sweep"
                if capacity is None
                else format_size(int(capacity * GB)),
            ]
        )
    print(
        format_table(
            ["algorithm", f"capacity for >= {TARGET_HIT_RATIO:.0%} hit ratio"],
            rows,
            title="Storage needed to meet the SLO",
        )
    )

    trim = verdicts.get("TrimCaching Gen")
    independent = verdicts.get("Independent Caching")
    if trim is not None and independent is not None and independent > trim:
        saving = 1 - trim / independent
        print(
            f"\nParameter sharing reaches the SLO with {saving:.0%} less "
            "storage per server."
        )


if __name__ == "__main__":
    main()
