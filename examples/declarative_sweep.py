"""Declare and run a custom experiment with the `repro.api` plan layer.

The paper's figures sweep capacity, server count and user count — but a
plan can sweep any numeric scenario knob over any registered solver set.
This example asks a question the paper doesn't: how sensitive is the
parameter-sharing advantage to demand skew? It sweeps the Zipf exponent
(uniform-ish 0.2 up to heavily skewed 1.4) for Gen, Independent and the
popularity-only baseline, prints the table and chart, and round-trips
the full result set (series + plan provenance) through JSON.

Run with::

    PYTHONPATH=src python examples/declarative_sweep.py
"""

from repro.api import (
    ExperimentPlan,
    ResultSet,
    SolverSpec,
    SweepSpec,
    run_plan,
)
from repro.core.gen import GenConfig
from repro.core.independent import IndependentConfig


def main() -> None:
    plan = ExperimentPlan(
        name="Demand-skew sensitivity — hit ratio vs. Zipf exponent",
        sweep=SweepSpec(axis="zipf_exponent", points=(0.2, 0.6, 1.0, 1.4)),
        solvers=(
            SolverSpec("gen", config=GenConfig(engine="sparse")),
            SolverSpec(
                "independent", config=IndependentConfig(engine="sparse")
            ),
            SolverSpec("top-popularity"),
        ),
        base={
            "library_case": "special",
            "num_servers": 6,
            "num_users": 24,
            "num_models": 30,
            "requests_per_user": 10,
            "storage_bytes": 300_000_000,
        },
        num_topologies=3,
        seed=0,
    )

    result = run_plan(plan)
    print(result.to_table())
    print()
    print(result.to_chart(height=10))

    # The JSON form carries the plan, so a result file is re-runnable.
    restored = ResultSet.from_json(result.to_json())
    rerun = run_plan(restored.plan)
    assert all(
        (rerun.series[algo].means == result.series[algo].means).all()
        for algo in result.series
    )
    print("\nJSON round-trip re-run reproduced the series exactly.")


if __name__ == "__main__":
    main()
