"""LLM delivery at the edge: LoRA adapters over a shared backbone.

The paper motivates TrimCaching with PEFT: downstream LLMs share >99% of
their parameters with the foundation model, so a server that caches the
backbone once can serve *every* adapter almost for free. This example
builds such a library from the synthetic ~1.2B-parameter ``NANO_LLM``
spec, gives each edge server room for barely more than one full model,
and shows Independent Caching collapsing while TrimCaching serves nearly
all requests.

Run with::

    python examples/llm_lora_edge.py
"""

import numpy as np

from repro import (
    FineTuner,
    IndependentCaching,
    PlacementInstance,
    TrimCachingGen,
    make_transformer_root,
)
from repro.data.transformer import NANO_LLM
from repro.models.popularity import ZipfPopularity
from repro.utils.tables import format_table
from repro.utils.units import format_size

#: Downstream assistants fine-tuned from the same foundation model.
ASSISTANTS = (
    "code-completion",
    "customer-support",
    "legal-drafting",
    "medical-triage",
    "translation",
    "summarisation",
    "in-car-copilot",
    "home-automation",
)


def main() -> None:
    root = make_transformer_root(NANO_LLM)
    tuner = FineTuner()
    for name in ASSISTANTS:
        tuner.lora_for_transformer(root, NANO_LLM, name=name, rank=16)
    library = tuner.build()

    stats = library.sharing_stats()
    backbone = format_size(root.total_size_bytes)
    print(f"Foundation model:  {NANO_LLM.name} ({backbone})")
    print(f"Downstream models: {stats.num_models} LoRA assistants")
    print(f"  stored independently: {format_size(stats.total_size_independent)}")
    print(f"  stored with sharing:  {format_size(stats.total_size_deduplicated)}")
    print(f"  savings:              {stats.savings_ratio:.1%}")
    print()

    # Two edge servers, each with capacity for ~1.1 full models. Twelve
    # users, every assistant reachable within deadline from either server.
    num_users, num_models = 12, library.num_models
    demand = ZipfPopularity(exponent=0.9).probabilities(num_users, num_models, seed=1)
    feasible = np.ones((2, num_users, num_models), dtype=bool)
    capacity = int(library.model_size(library.model_ids[0]) * 1.1)
    instance = PlacementInstance(
        library, demand, feasible, [capacity, capacity]
    )

    rows = []
    for name, solver in (
        ("TrimCaching Gen", TrimCachingGen()),
        ("Independent Caching", IndependentCaching()),
    ):
        result = solver.solve(instance)
        per_server = [
            len(result.placement.models_on(server)) for server in range(2)
        ]
        rows.append([name, result.hit_ratio, per_server[0], per_server[1]])
    print(
        format_table(
            ["algorithm", "hit ratio", "models on server 0", "models on server 1"],
            rows,
            title=f"Each server's cache: {format_size(capacity)}",
        )
    )
    print()
    print(
        "TrimCaching stores the backbone once per server and all adapters\n"
        "beside it; Independent Caching pays the full model size per\n"
        "assistant and fits a single one."
    )


if __name__ == "__main__":
    main()
