"""Quickstart: place AI models on edge servers and compare algorithms.

Builds one snapshot of the paper's §VII-A setup (a scaled-down special-case
library), runs TrimCaching Spec / TrimCaching Gen / Independent Caching,
and prints what each one achieves and why parameter sharing helps.

Run with::

    python examples/quickstart.py
"""

from repro import (
    IndependentCaching,
    PlacementEvaluator,
    ScenarioConfig,
    TrimCachingGen,
    TrimCachingSpec,
    build_scenario,
    storage_used,
)
from repro.utils.tables import format_table
from repro.utils.units import GB, format_size


def main() -> None:
    config = ScenarioConfig(
        num_servers=5,
        num_users=15,
        num_models=30,
        requests_per_user=15,
        storage_bytes=int(0.15 * GB),
    )
    scenario = build_scenario(config, seed=42)

    stats = scenario.library.sharing_stats()
    print("Model library")
    print(f"  models:            {stats.num_models}")
    print(f"  parameter blocks:  {stats.num_blocks} ({stats.num_shared_blocks} shared)")
    print(f"  independent size:  {format_size(stats.total_size_independent)}")
    print(f"  deduplicated size: {format_size(stats.total_size_deduplicated)}")
    print(f"  sharing saves:     {stats.savings_ratio:.1%}")
    print()

    algorithms = {
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.1),
        "TrimCaching Gen": TrimCachingGen(),
        "Independent Caching": IndependentCaching(),
    }
    evaluator = PlacementEvaluator(scenario)
    rows = []
    for name, solver in algorithms.items():
        result = solver.solve(scenario.instance)
        fading = evaluator.monte_carlo_hit_ratio(
            result.placement, num_realizations=300, seed=0
        )
        rows.append(
            [
                name,
                result.hit_ratio,
                fading.mean,
                result.placement.total_placements(),
                f"{result.runtime_s * 1e3:.1f} ms",
            ]
        )
    print(
        format_table(
            [
                "algorithm",
                "hit ratio (expected)",
                "hit ratio (Rayleigh MC)",
                "models placed",
                "solve time",
            ],
            rows,
            title="Placement comparison",
        )
    )
    print()

    best = TrimCachingGen().solve(scenario.instance)
    print("Per-server view of the TrimCaching Gen placement:")
    for server in range(scenario.num_servers):
        cached = best.placement.models_on(server)
        used = storage_used(scenario.instance, best.placement, server)
        capacity = int(scenario.instance.capacities[server])
        print(
            f"  server {server}: {len(cached):2d} models, "
            f"{format_size(used)} / {format_size(capacity)} used "
            f"({used / capacity:.0%})"
        )


if __name__ == "__main__":
    main()
