"""When should the operator re-place models? (§IV-A trade-off.)

The paper argues placement can be re-initiated "when the performance
degrades to a certain threshold" and that Fig. 7's slow degradation means
this is rare, saving backbone bandwidth. This example quantifies the
trade-off: it sweeps the degradation threshold and reports, per setting,
the time-averaged hit ratio, how many re-placements fired over two hours,
and how many bytes the backbone had to ship.

Run with::

    python examples/replacement_study.py
"""

from repro import ScenarioConfig, TrimCachingGen, build_scenario
from repro.sim.replacement import ReplacementPolicy
from repro.utils.tables import format_table
from repro.utils.units import GB, format_size

THRESHOLDS = (0.0, 0.7, 0.85, 0.95, 1.0)


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(
            num_servers=4,
            num_users=10,
            num_models=15,
            storage_bytes=int(0.15 * GB),
        ),
        seed=11,
    )
    print(
        f"{scenario.num_servers} servers, {scenario.num_users} mobile users, "
        f"{scenario.num_models} models; 2 h horizon, checks every minute\n"
    )

    rows = []
    for threshold in THRESHOLDS:
        policy = ReplacementPolicy(
            scenario,
            TrimCachingGen(),
            threshold=threshold,
            check_every=12,  # every 60 s of 5 s slots
        )
        trace = policy.run(horizon_s=7200.0, seed=0)
        label = "never" if threshold == 0.0 else f"{threshold:.2f}"
        rows.append(
            [
                label,
                trace.mean_hit_ratio,
                trace.num_replacements,
                format_size(trace.total_bytes_shipped),
            ]
        )
    print(
        format_table(
            [
                "replace when below",
                "time-avg hit ratio",
                "replacements in 2 h",
                "backbone traffic",
            ],
            rows,
            title="Threshold-triggered re-placement trade-off",
        )
    )
    never_avg = rows[0][1]
    aggressive_avg = rows[-1][1]
    if aggressive_avg > never_avg + 0.01:
        conclusion = (
            "Aggressive re-placement buys a few points of hit ratio at the\n"
            "price of repeated model shipping."
        )
    else:
        conclusion = (
            "Even aggressive re-placement does not beat the standing\n"
            "placement here: a fresh decision is optimal for the instant it\n"
            "was computed but ages just as fast, while every trigger ships\n"
            "hundreds of megabytes over the backbone."
        )
    print(
        f"\n{conclusion}\n"
        "Either way the backbone cost grows steeply with the threshold —\n"
        "the paper's rationale (§IV-A, Fig. 7) for solving a snapshot\n"
        "problem and re-placing only on clear degradation."
    )


if __name__ == "__main__":
    main()
