"""Serve a placement as a long-lived service with incremental re-solve.

The batch pipeline answers "what is the best placement for this
scenario?" once. :mod:`repro.serve` keeps that answer *warm*: a
:class:`~repro.serve.PlacementService` holds the solved greedy trace and
the coverage state resident, and patches them as users arrive and
depart, capacities step, and popularity drifts — every post-event answer
``==``-identical to re-solving the mutated scenario from scratch, at a
fraction of the cost.

This demo drives the same seeded event trace through both transports:

1. the in-process :class:`~repro.serve.ServiceSession` Python API,
   cross-checked event by event against the stateless
   ``resolve_from_scratch`` reference (exact hit-ratio equality and a
   byte-identical final placement are *asserted*, not eyeballed);
2. the stdlib HTTP/JSON endpoint (``repro.serve.http``), run on a
   background thread and exercised with nothing but :mod:`urllib` —
   the same events POSTed to ``/events`` must report the same final
   hit ratio, and ``/route`` answers match the session's.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

import json
import threading
import urllib.request

import numpy as np

from repro.serve import (
    PlacementService,
    ServiceSession,
    generate_event_trace,
    resolve_from_scratch,
)
from repro.serve.http import serve_http
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


def main() -> None:
    config = ScenarioConfig(
        num_servers=8,
        num_users=60,
        num_models=40,
        requests_per_user=10,
        storage_bytes=int(0.1 * GB),
    )
    scenario = build_scenario(config, seed=11)
    trace = generate_event_trace(scenario, num_events=30, seed=4)

    # ------------------------------------------------------------------
    # 1. The Python session API, checked against the stateless reference.
    # ------------------------------------------------------------------
    session = ServiceSession(scenario, solver="gen", engine="sparse")
    print(f"initial hit ratio: {session.hit_ratio:.4f}")

    results = session.apply(trace)
    reference = resolve_from_scratch(
        scenario, trace, solver="gen", engine="sparse"
    )
    for result, record in zip(results, reference):
        assert result.hit_ratio == record.hit_ratio  # the pinned contract
    assert np.array_equal(
        session.service.state.placement.matrix,
        reference[-1].placement.matrix,
    )

    patch_ms = [r.latency_s * 1e3 for r in results]
    scratch_ms = [r.seconds * 1e3 for r in reference]
    counters = session.status()["counters"]
    print(
        f"processed {len(results)} events: {counters['replay']} replayed, "
        f"{counters['fallback']} fallbacks, {counters['full']} full solves"
    )
    print(
        f"median latency: patched {np.median(patch_ms):.2f} ms vs "
        f"from-scratch {np.median(scratch_ms):.2f} ms "
        f"({np.median(scratch_ms) / np.median(patch_ms):.1f}x) — "
        "every answer exactly equal"
    )
    print(f"final hit ratio: {session.hit_ratio:.4f}")

    route = session.route(user=0, model=int(np.argmax(scenario.demand[0])))
    print(
        f"route(user=0, favourite model {route.model}): "
        f"{'server %d' % route.server if route.hit else 'MISS (cloud)'}"
    )

    # ------------------------------------------------------------------
    # 2. The HTTP transport: same events over the wire, same answers.
    # ------------------------------------------------------------------
    server = serve_http(
        PlacementService(scenario, solver="gen", engine="sparse")
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    try:
        body = trace.to_json().encode("utf-8")
        request = urllib.request.Request(
            f"{base}/events",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            reply = json.load(response)
        assert reply["hit_ratio"] == session.hit_ratio
        with urllib.request.urlopen(
            f"{base}/route?user={route.user}&model={route.model}"
        ) as response:
            routed = json.load(response)
        assert routed["server"] == route.server
        print(
            f"HTTP transport on port {server.port}: POST /events reported "
            f"hit ratio {reply['hit_ratio']:.4f} — identical to the session"
        )
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
