"""TrimCaching: parameter-sharing AI model caching in wireless edge networks.

A full reproduction of Qu et al., *TrimCaching: Parameter-sharing AI Model
Caching in Wireless Edge Networks* (ICDCS 2024): the placement problem
P1.1, the TrimCaching Spec and Gen algorithms with their baselines, the
wireless-edge simulation substrate, and one entry point per paper figure.

Quickstart
----------
>>> from repro import ScenarioConfig, TrimCachingGen, build_scenario
>>> scenario = build_scenario(ScenarioConfig(num_models=12, num_users=8))
>>> result = TrimCachingGen().solve(scenario.instance)
>>> 0.0 <= result.hit_ratio <= 1.0
True
"""

from repro.core import (
    ExhaustiveSearch,
    IndependentCaching,
    Placement,
    PlacementInstance,
    RandomPlacement,
    TopPopularityPlacement,
    TrimCachingGen,
    TrimCachingSpec,
    hit_ratio,
    placement_is_feasible,
    storage_used,
)
from repro.core.result import SolverResult
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    LibraryError,
    PlacementError,
    ReproError,
    SolverError,
    TopologyError,
)
from repro.models import (
    FineTuner,
    GeneralCaseConfig,
    Model,
    ModelLibrary,
    ParameterBlock,
    PretrainedRoot,
    SpecialCaseConfig,
    ZipfPopularity,
    build_general_case_library,
    build_special_case_library,
    make_resnet_root,
    make_transformer_root,
)
from repro.network import (
    Backhaul,
    ChannelModel,
    EdgeServer,
    LatencyModel,
    MobilityModel,
    NetworkTopology,
    User,
)
from repro.sim import (
    MobilityStudy,
    PlacementEvaluator,
    Scenario,
    ScenarioConfig,
    SweepRunner,
    build_scenario,
)
from repro.api import (
    SOLVERS,
    ExperimentPlan,
    MobilitySpec,
    ReplacementSpec,
    ResultSet,
    SolverRegistry,
    SolverSpec,
    SweepSpec,
    run_plan,
)
from repro.core import (
    ExhaustiveConfig,
    GenConfig,
    IndependentConfig,
    SpecConfig,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "LibraryError",
    "TopologyError",
    "PlacementError",
    "InfeasibleError",
    "SolverError",
    # library substrate
    "ParameterBlock",
    "Model",
    "ModelLibrary",
    "FineTuner",
    "PretrainedRoot",
    "make_resnet_root",
    "make_transformer_root",
    "SpecialCaseConfig",
    "GeneralCaseConfig",
    "build_special_case_library",
    "build_general_case_library",
    "ZipfPopularity",
    # network substrate
    "ChannelModel",
    "EdgeServer",
    "User",
    "Backhaul",
    "NetworkTopology",
    "LatencyModel",
    "MobilityModel",
    # core problem + solvers
    "PlacementInstance",
    "Placement",
    "SolverResult",
    "hit_ratio",
    "storage_used",
    "placement_is_feasible",
    "TrimCachingSpec",
    "TrimCachingGen",
    "IndependentCaching",
    "ExhaustiveSearch",
    "RandomPlacement",
    "TopPopularityPlacement",
    # simulation harness
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "PlacementEvaluator",
    "MobilityStudy",
    "SweepRunner",
    # declarative experiment API
    "SOLVERS",
    "SolverRegistry",
    "SolverSpec",
    "SweepSpec",
    "MobilitySpec",
    "ReplacementSpec",
    "ExperimentPlan",
    "ResultSet",
    "run_plan",
    "SpecConfig",
    "GenConfig",
    "IndependentConfig",
    "ExhaustiveConfig",
    "__version__",
]
