"""Public declarative experiment API.

Three pieces (see DESIGN notes in each module):

* :data:`SOLVERS` / :class:`SolverRegistry` — string-keyed,
  decorator-registered factories for every placement algorithm, each
  carrying a typed config dataclass (``SpecConfig``, ``GenConfig``, …).
* :class:`ExperimentPlan` + :class:`SweepSpec` (and the study specs) —
  declarative descriptions of sweeps, comparisons, mobility and
  re-placement studies, JSON round-trippable.
* :func:`run_plan` — the one generic executor, returning a uniform
  :class:`ResultSet` with table/chart/CSV/JSON output.

Quickstart::

    from repro.api import SOLVERS, ExperimentPlan, SolverSpec, SweepSpec, run_plan

    plan = ExperimentPlan(
        name="hit ratio vs capacity",
        sweep=SweepSpec(axis="capacity", points=(0.5, 1.0, 1.5)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"library_case": "special", "num_models": 60,
              "requests_per_user": 30},
        num_topologies=10,
        scale=0.2,
    )
    result = run_plan(plan)
    print(result.to_table())
"""

from repro.api.plan import (
    PLAN_FORMAT,
    AxisSpec,
    ExperimentPlan,
    MobilitySpec,
    NAMED_AXES,
    ReplacementSpec,
    SolverSpec,
    SweepSpec,
    axis_names,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    resolve_axis,
)
from repro.api.registry import SOLVERS, SolverEntry, SolverRegistry
from repro.api.run import ResultSet, run_plan

__all__ = [
    "SOLVERS",
    "SolverRegistry",
    "SolverEntry",
    "AxisSpec",
    "NAMED_AXES",
    "axis_names",
    "resolve_axis",
    "SolverSpec",
    "SweepSpec",
    "MobilitySpec",
    "ReplacementSpec",
    "ExperimentPlan",
    "PLAN_FORMAT",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
    "ResultSet",
    "run_plan",
]
