"""Declarative experiment plans.

An :class:`ExperimentPlan` states *what* to evaluate — which solvers
(by registry name + typed config), over which scenario axis and points,
averaged over how many topologies, scored how, at which seed — and
:func:`repro.api.run.run_plan` is the single generic executor. Every
paper sweep figure, comparison panel and ablation in
:mod:`repro.sim.experiments` is a ~5-line plan declaration; new
scenarios are new declarations, not new functions.

Plan shapes (``plan.kind``):

* ``"sweep"`` — a :class:`SweepSpec` axis + point list, executed on
  :class:`~repro.sim.runner.SweepRunner` (Figs. 4/5 and any custom
  parameter sweep).
* ``"comparison"`` — no axis: all solvers on one fixed setting,
  replicating the Fig. 6 / ablation topology loop exactly.
* ``"mobility"`` — a :class:`MobilitySpec` study: solve once, then track
  the placement's hit ratio under user mobility (Fig. 7).
* ``"replacement"`` — a :class:`ReplacementSpec` study: the §IV-A
  threshold-triggered re-placement loop.

Plans are plain data: :func:`plan_to_dict`/:func:`plan_from_dict` (and
the JSON wrappers) round-trip them losslessly, so a plan can live in a
file, travel over the CLI, or be attached to a result for provenance.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.registry import SOLVERS, SolverRegistry
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.utils.units import GB

#: Format tag embedded in every serialised plan.
PLAN_FORMAT = "trimcaching-plan-v1"


# ----------------------------------------------------------------------
# Sweep axes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AxisSpec:
    """One sweepable scenario dimension.

    ``apply(config, value, scale)`` maps a sweep point onto a
    :class:`~repro.sim.config.ScenarioConfig`; ``scale`` is the plan's
    paper-scale shrink factor (only the ``capacity`` axis uses it, the
    same way the legacy figure functions did).
    """

    name: str
    x_label: str
    summary: str
    _apply: Callable[[ScenarioConfig, float, float], ScenarioConfig]

    def apply(
        self, config: ScenarioConfig, value: float, scale: float
    ) -> ScenarioConfig:
        """The sweep point's scenario config."""
        return self._apply(config, value, scale)


#: Named axes matching the paper's sweeps (labels identical to the
#: legacy per-figure functions, so migrated tables render identically).
NAMED_AXES: Dict[str, AxisSpec] = {
    "capacity": AxisSpec(
        "capacity",
        "Q (GB, paper scale)",
        "per-server storage Q; points in paper-scale GB, shrunk by scale",
        lambda cfg, value, scale: cfg.with_overrides(
            storage_bytes=int(value * scale * GB)
        ),
    ),
    "servers": AxisSpec(
        "servers",
        "M",
        "number of edge servers M",
        lambda cfg, value, scale: cfg.with_overrides(num_servers=int(value)),
    ),
    "users": AxisSpec(
        "users",
        "K",
        "number of users K",
        lambda cfg, value, scale: cfg.with_overrides(num_users=int(value)),
    ),
}

#: ScenarioConfig fields that must stay integers when swept directly.
_INT_FIELDS = frozenset(
    f.name
    for f in dataclasses.fields(ScenarioConfig)
    if "int" in str(f.type) and "Tuple" not in str(f.type)
)

#: ScenarioConfig fields holding tuples (restored from JSON lists).
_TUPLE_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ScenarioConfig) if "Tuple" in str(f.type)
)

#: ScenarioConfig fields that are not meaningfully numeric sweep axes
#: (strings, booleans, tuple-valued fields).
_UNSWEEPABLE_FIELDS = _TUPLE_FIELDS | frozenset(
    f.name
    for f in dataclasses.fields(ScenarioConfig)
    if "bool" in str(f.type) or str(f.type) == "str"
)


def axis_names() -> List[str]:
    """All named axes plus every directly sweepable config field."""
    return sorted(NAMED_AXES) + sorted(
        f.name
        for f in dataclasses.fields(ScenarioConfig)
        if f.name not in _UNSWEEPABLE_FIELDS
    )


def resolve_axis(name: str) -> AxisSpec:
    """Look up a named axis, or wrap a raw ``ScenarioConfig`` field."""
    if name in NAMED_AXES:
        return NAMED_AXES[name]
    field_names = {f.name for f in dataclasses.fields(ScenarioConfig)}
    if name not in field_names:
        raise ConfigurationError(
            f"unknown sweep axis {name!r}; named axes: "
            f"{sorted(NAMED_AXES)}, or any ScenarioConfig field"
        )
    if name in _UNSWEEPABLE_FIELDS:
        raise ConfigurationError(
            f"ScenarioConfig field {name!r} cannot be swept numerically"
        )
    cast = int if name in _INT_FIELDS else float

    def _apply(cfg: ScenarioConfig, value: float, scale: float) -> ScenarioConfig:
        return cfg.with_overrides(**{name: cast(value)})

    return AxisSpec(name, name, f"ScenarioConfig.{name}", _apply)


# ----------------------------------------------------------------------
# Plan components
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolverSpec:
    """One solver slot in a plan: registry name, display label, config."""

    solver: str
    label: Optional[str] = None
    config: Optional[Any] = None

    def resolved_label(self, registry: SolverRegistry = SOLVERS) -> str:
        """The series name this solver reports under."""
        return self.label if self.label is not None else registry.label(self.solver)

    def build(self, registry: SolverRegistry = SOLVERS):
        """Construct the solver instance."""
        return registry.create(self.solver, config=self.config)


@dataclass(frozen=True)
class SweepSpec:
    """The swept dimension of a plan: axis name + point list."""

    axis: str
    points: Tuple[float, ...]

    def __post_init__(self) -> None:
        resolve_axis(self.axis)  # validates
        if not self.points:
            raise ConfigurationError("a sweep needs at least one point")
        object.__setattr__(self, "points", tuple(self.points))


@dataclass(frozen=True)
class MobilitySpec:
    """Fig. 7-style study: fixed placements tracked under mobility."""

    horizon_s: float = 7200.0
    sample_every: int = 60
    num_runs: int = 5

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        if self.sample_every < 1:
            raise ConfigurationError("sample_every must be at least 1")
        if self.num_runs < 1:
            raise ConfigurationError("num_runs must be at least 1")


@dataclass(frozen=True)
class ReplacementSpec:
    """§IV-A study: threshold-triggered re-placement trade-off."""

    thresholds: Tuple[float, ...] = (0.0, 0.8, 0.9, 1.0)
    num_runs: int = 3
    horizon_s: float = 7200.0
    check_every: int = 12

    def __post_init__(self) -> None:
        if not self.thresholds:
            raise ConfigurationError("at least one threshold is required")
        object.__setattr__(self, "thresholds", tuple(self.thresholds))
        if self.num_runs < 1:
            raise ConfigurationError("num_runs must be at least 1")
        if self.horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        if self.check_every < 1:
            raise ConfigurationError("check_every must be at least 1")


StudySpec = Union[MobilitySpec, ReplacementSpec]


@dataclass(frozen=True)
class ExperimentPlan:
    """A complete, serialisable experiment declaration."""

    name: str
    solvers: Tuple[SolverSpec, ...]
    sweep: Optional[SweepSpec] = None
    study: Optional[StudySpec] = None
    base: Mapping[str, Any] = field(default_factory=dict)
    num_topologies: int = 20
    evaluation: str = "expected"
    num_realizations: int = 200
    seed: int = 0
    scale: float = 1.0
    workers: int = 1
    feasibility: str = "sparse"
    sample_users: Optional[int] = None
    sample_strata: int = 4

    def __post_init__(self) -> None:
        if not self.solvers:
            raise ConfigurationError("a plan needs at least one solver")
        object.__setattr__(self, "solvers", tuple(self.solvers))
        if self.sweep is not None and self.study is not None:
            raise ConfigurationError(
                "a plan is either a sweep or a study, not both"
            )
        base = dict(self.base)
        # Unknown keys and bad field values fail here, at declaration
        # time, not deep inside run_plan().
        ScenarioConfig.from_dict(base)
        for key, value in base.items():
            if key in _TUPLE_FIELDS and isinstance(value, list):
                base[key] = tuple(value)
        # Read-only view: mutating base after validation would bypass
        # the declaration-time checks above.
        object.__setattr__(self, "base", MappingProxyType(base))
        # Uniqueness is checked without a registry lookup so plans for a
        # custom registry can be declared before registration happens.
        labels = [spec.label or spec.solver for spec in self.solvers]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"solver labels must be unique, got {labels}"
            )
        # Delegates range checks to the executor's SweepRunner where
        # possible; the study kinds validate in their own dataclasses.
        if self.num_topologies < 1:
            raise ConfigurationError("num_topologies must be at least 1")
        if not 0 < self.scale <= 1:
            raise ConfigurationError(
                f"scale must be in (0, 1], got {self.scale}"
            )
        if self.evaluation == "sampled" and self.sample_users is None:
            raise ConfigurationError(
                "evaluation='sampled' requires sample_users"
            )
        if self.sample_users is not None:
            if self.evaluation != "sampled":
                raise ConfigurationError(
                    "sample_users only applies to evaluation='sampled'"
                )
            if self.sample_users < 2 * self.sample_strata:
                raise ConfigurationError(
                    f"sample_users must be at least 2 per stratum "
                    f"({2 * self.sample_strata}), got {self.sample_users}"
                )
        if self.sample_strata < 1:
            raise ConfigurationError("sample_strata must be at least 1")

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"sweep"``, ``"comparison"``, ``"mobility"`` or ``"replacement"``."""
        if self.sweep is not None:
            return "sweep"
        if isinstance(self.study, MobilitySpec):
            return "mobility"
        if isinstance(self.study, ReplacementSpec):
            return "replacement"
        return "comparison"

    def base_config(self) -> ScenarioConfig:
        """The plan's base :class:`ScenarioConfig` (overrides applied)."""
        return ScenarioConfig.from_dict(dict(self.base))

    def labels(self, registry: SolverRegistry = SOLVERS) -> List[str]:
        """Series labels in declaration order."""
        return [spec.resolved_label(registry) for spec in self.solvers]

    def algorithms(self, registry: SolverRegistry = SOLVERS) -> Dict[str, Any]:
        """Label -> constructed solver, in declaration order."""
        labels = self.labels(registry)
        if len(set(labels)) != len(labels):
            # __post_init__ can only check explicit labels; an explicit
            # label may still collide with another solver's registry
            # label once resolved — refuse rather than drop a series.
            raise ConfigurationError(
                f"resolved solver labels must be unique, got {labels}; "
                "give the colliding solvers explicit labels"
            )
        return {
            spec.resolved_label(registry): spec.build(registry)
            for spec in self.solvers
        }

    def with_overrides(self, **kwargs) -> "ExperimentPlan":
        """A copy with the given fields replaced (validated again)."""
        return dataclasses.replace(self, **kwargs)


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


def _solver_to_dict(spec: SolverSpec) -> Dict[str, Any]:
    return {
        "solver": spec.solver,
        "label": spec.label,
        "config": (
            None
            if spec.config is None
            else _jsonify(dataclasses.asdict(spec.config))
        ),
    }


def _solver_from_dict(
    payload: Mapping[str, Any], registry: SolverRegistry
) -> SolverSpec:
    name = payload["solver"]
    config_payload = payload.get("config")
    config = None
    if config_payload is not None:
        config = registry.config(name, **config_payload)
    return SolverSpec(solver=name, label=payload.get("label"), config=config)


def plan_to_dict(plan: ExperimentPlan) -> Dict[str, Any]:
    """A JSON-ready description of a plan."""
    payload: Dict[str, Any] = {
        "format": PLAN_FORMAT,
        "name": plan.name,
        "kind": plan.kind,
        "solvers": [_solver_to_dict(spec) for spec in plan.solvers],
        "sweep": None,
        "study": None,
        "base": _jsonify(dict(plan.base)),
        "num_topologies": plan.num_topologies,
        "evaluation": plan.evaluation,
        "num_realizations": plan.num_realizations,
        "seed": plan.seed,
        "scale": plan.scale,
        "workers": plan.workers,
        "feasibility": plan.feasibility,
    }
    # Conditional keys: plans without sampling serialise exactly as
    # before, so existing artifact-store content hashes stay valid.
    if plan.sample_users is not None:
        payload["sample_users"] = plan.sample_users
        payload["sample_strata"] = plan.sample_strata
    if plan.sweep is not None:
        payload["sweep"] = {
            "axis": plan.sweep.axis,
            "points": list(plan.sweep.points),
        }
    if plan.study is not None:
        study = _jsonify(dataclasses.asdict(plan.study))
        study["type"] = plan.kind
        payload["study"] = study
    return payload


def plan_from_dict(
    payload: Mapping[str, Any], registry: SolverRegistry = SOLVERS
) -> ExperimentPlan:
    """Rebuild a plan from :func:`plan_to_dict` output."""
    if payload.get("format") != PLAN_FORMAT:
        raise ConfigurationError(
            f"unrecognised plan payload format: {payload.get('format')!r}"
        )
    try:
        sweep = None
        if payload.get("sweep") is not None:
            sweep = SweepSpec(
                axis=payload["sweep"]["axis"],
                points=tuple(payload["sweep"]["points"]),
            )
        study: Optional[StudySpec] = None
        if payload.get("study") is not None:
            study_payload = dict(payload["study"])
            study_type = study_payload.pop("type", None)
            if study_type == "mobility":
                study = MobilitySpec(**study_payload)
            elif study_type == "replacement":
                study_payload["thresholds"] = tuple(
                    study_payload["thresholds"]
                )
                study = ReplacementSpec(**study_payload)
            else:
                raise ConfigurationError(
                    f"unknown study type {study_type!r}"
                )
        return ExperimentPlan(
            name=payload["name"],
            solvers=tuple(
                _solver_from_dict(spec, registry)
                for spec in payload["solvers"]
            ),
            sweep=sweep,
            study=study,
            base=dict(payload.get("base", {})),
            num_topologies=int(payload.get("num_topologies", 20)),
            evaluation=payload.get("evaluation", "expected"),
            num_realizations=int(payload.get("num_realizations", 200)),
            seed=int(payload.get("seed", 0)),
            scale=float(payload.get("scale", 1.0)),
            workers=int(payload.get("workers", 1)),
            feasibility=payload.get("feasibility", "sparse"),
            sample_users=(
                None
                if payload.get("sample_users") is None
                else int(payload["sample_users"])
            ),
            sample_strata=int(payload.get("sample_strata", 4)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed plan payload: {exc}") from exc


def plan_to_json(plan: ExperimentPlan) -> str:
    """Serialise a plan to JSON."""
    return json.dumps(plan_to_dict(plan), indent=1, sort_keys=True)


def plan_from_json(
    text: str, registry: SolverRegistry = SOLVERS
) -> ExperimentPlan:
    """Parse a plan from :func:`plan_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid plan JSON: {exc}") from exc
    return plan_from_dict(payload, registry)
