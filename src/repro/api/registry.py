"""String-keyed solver registry.

Every placement algorithm in the repo is reachable through one registry,
:data:`SOLVERS`, keyed by a short stable name (``"gen"``, ``"spec"``,
``"independent"``, …). An entry pairs the name with the solver's typed
config dataclass (defined next to the implementation in ``repro.core``)
and a display label — the series name the paper figures use. Declarative
:class:`~repro.api.plan.ExperimentPlan` objects reference solvers by
name + config, so experiments never hard-code solver constructors and
third-party solvers plug in without touching ``repro.sim.experiments``:

>>> from dataclasses import dataclass
>>> from repro.api import SOLVERS
>>> @SOLVERS.register("my-solver", label="My Solver")   # doctest: +SKIP
... @dataclass(frozen=True)
... class MySolverConfig:
...     knob: int = 3
...     def build(self):
...         return MySolver(knob=self.knob)

A config class only needs to be a dataclass with a no-argument
``build()`` returning an object with ``solve(instance) -> SolverResult``.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Type

from repro.core import (
    ExhaustiveConfig,
    GenConfig,
    IndependentConfig,
    RandomConfig,
    ReferenceGenConfig,
    ReferenceIndependentConfig,
    ReferenceSpecConfig,
    SpecConfig,
    TopPopularityConfig,
)
from repro.errors import ConfigurationError

#: Registry names are short kebab-case identifiers.
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


@dataclass(frozen=True)
class SolverEntry:
    """One registered solver: name, config class, display label.

    ``label`` is ``None`` when the registration did not name one; use
    :meth:`SolverRegistry.label` for the resolved display name.
    """

    name: str
    config_cls: Type[Any]
    label: Optional[str]
    summary: str = ""


class SolverRegistry:
    """Mutable mapping from solver names to config-class entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, SolverEntry] = {}
        self._label_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        config_cls: Optional[Type[Any]] = None,
        *,
        label: Optional[str] = None,
        summary: str = "",
    ):
        """Register ``config_cls`` under ``name``.

        Usable directly (``registry.register("gen", GenConfig)``) or as a
        class decorator (``@registry.register("gen")``). ``label`` is the
        default series/display name; when omitted it is resolved lazily
        (on first :meth:`label` lookup) from the built solver's ``name``
        attribute, falling back to the registry name — registration
        itself never constructs a solver.
        """
        if not _NAME_PATTERN.match(name):
            raise ConfigurationError(
                f"solver name must be kebab-case (got {name!r})"
            )
        if name in self._entries:
            raise ConfigurationError(f"solver {name!r} is already registered")

        def _register(cls: Type[Any]) -> Type[Any]:
            if not dataclasses.is_dataclass(cls):
                raise ConfigurationError(
                    f"solver config for {name!r} must be a dataclass, "
                    f"got {cls!r}"
                )
            if not callable(getattr(cls, "build", None)):
                raise ConfigurationError(
                    f"solver config for {name!r} must define build()"
                )
            doc = (cls.__doc__ or "").strip()
            self._entries[name] = SolverEntry(
                name=name,
                config_cls=cls,
                label=None if label is None else str(label),
                summary=summary or (doc.splitlines()[0] if doc else ""),
            )
            self._label_cache.pop(name, None)
            return cls

        if config_cls is not None:
            return _register(config_cls)
        return _register

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests of third-party plugins)."""
        self._entries.pop(name, None)
        self._label_cache.pop(name, None)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered solver names, sorted."""
        return sorted(self._entries)

    def entry(self, name: str) -> SolverEntry:
        """The entry for ``name``; raises with suggestions when unknown."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names())
            raise ConfigurationError(
                f"unknown solver {name!r}; registered solvers: {known}"
            ) from None

    def label(self, name: str) -> str:
        """Default display label of ``name`` (resolved lazily, cached)."""
        entry = self.entry(name)
        if entry.label is not None:
            return entry.label
        if name not in self._label_cache:
            try:
                resolved = getattr(entry.config_cls().build(), "name", name)
            except TypeError:
                # Config has required fields: no default solver to ask.
                resolved = name
            self._label_cache[name] = str(resolved)
        return self._label_cache[name]

    def config(self, name: str, **overrides) -> Any:
        """A config instance for ``name`` with ``overrides`` applied."""
        entry = self.entry(name)
        try:
            return entry.config_cls(**overrides)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid config for solver {name!r}: {exc}"
            ) from exc

    def create(self, name: str, config: Optional[Any] = None, **overrides):
        """Build a ready-to-run solver.

        ``config`` (a config-dataclass instance) and keyword ``overrides``
        compose: overrides are applied on top of ``config`` when both are
        given, and on top of the defaults otherwise.
        """
        entry = self.entry(name)
        if config is None:
            config = self.config(name, **overrides)
        else:
            if not isinstance(config, entry.config_cls):
                raise ConfigurationError(
                    f"solver {name!r} expects a {entry.config_cls.__name__}, "
                    f"got {type(config).__name__}"
                )
            if overrides:
                config = dataclasses.replace(config, **overrides)
        return config.build()

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[SolverEntry]:
        for name in self.names():
            yield self._entries[name]

    def __len__(self) -> int:
        return len(self._entries)

    def to_table(self) -> str:
        """Human-readable listing (used by ``python -m repro solvers``)."""
        from repro.utils.tables import format_table

        rows = [
            [
                entry.name,
                self.label(entry.name),
                entry.config_cls.__name__,
                entry.summary,
            ]
            for entry in self
        ]
        return format_table(
            ["name", "label", "config", "summary"],
            rows,
            title="Registered solvers",
        )


#: The process-wide default registry with every built-in algorithm.
SOLVERS = SolverRegistry()

SOLVERS.register(
    "spec",
    SpecConfig,
    summary="TrimCaching Spec (Algorithms 1+2, special case)",
)
SOLVERS.register(
    "gen",
    GenConfig,
    summary="TrimCaching Gen (Algorithm 3 greedy, general case)",
)
SOLVERS.register(
    "independent",
    IndependentConfig,
    summary="Independent Caching baseline (ignores parameter sharing)",
)
SOLVERS.register(
    "exhaustive",
    ExhaustiveConfig,
    summary="Exact optimum by pruned enumeration (small instances)",
)
SOLVERS.register(
    "random",
    RandomConfig,
    summary="Random feasible placement baseline",
)
SOLVERS.register(
    "top-popularity",
    TopPopularityConfig,
    summary="Popularity-only top-k placement baseline",
)
SOLVERS.register(
    "reference-gen",
    ReferenceGenConfig,
    summary="Seed TrimCaching Gen (bit-pinned reference loops)",
)
SOLVERS.register(
    "reference-independent",
    ReferenceIndependentConfig,
    summary="Seed Independent Caching (bit-pinned reference loops)",
)
SOLVERS.register(
    "reference-spec",
    ReferenceSpecConfig,
    summary="Seed TrimCaching Spec (bit-pinned reference loops)",
)
