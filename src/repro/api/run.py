"""The generic plan executor and its uniform result type.

:func:`run_plan` turns any :class:`~repro.api.plan.ExperimentPlan` into
a :class:`ResultSet`. Whatever the plan kind, the ResultSet is the same
shape — x values plus one named series per solver/metric — with table,
chart, CSV and JSON round-trip, and accessors that reconstruct the
legacy per-figure result types (:meth:`ResultSet.comparison`,
:meth:`ResultSet.mobility`, :meth:`ResultSet.replacement`).

Reproducibility contract: for every plan kind the executor replays the
exact seed derivation and loop order of the pre-plan per-figure
functions (retained in :mod:`repro.sim.legacy`), so migrated figures
produce **bit-identical** series — asserted by
``tests/api/test_plan_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api.plan import (
    ExperimentPlan,
    MobilitySpec,
    ReplacementSpec,
    plan_from_dict,
    plan_to_dict,
    resolve_axis,
)
from repro.api.registry import SOLVERS, SolverRegistry
from repro.sim.runner import (
    AlgorithmComparison,
    ExperimentResult,
    Fig7Result,
    ReplacementAblation,
    SweepRunner,
)
from repro.utils.stats import RunningStats, SeriesStats


@dataclass
class ResultSet(ExperimentResult):
    """A uniform executed-plan result (is-a ``ExperimentResult``).

    ``series`` maps label -> :class:`~repro.utils.stats.SeriesStats`
    over ``x_values``; what the axis means depends on ``plan.kind``
    (sweep points, a single comparison point, mobility sample times or
    replacement thresholds).
    """

    plan: Optional[ExperimentPlan] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_experiment(
        cls, result: ExperimentResult, plan: Optional[ExperimentPlan] = None
    ) -> "ResultSet":
        """Wrap a plain :class:`ExperimentResult` (shares its series)."""
        return cls(
            name=result.name,
            x_label=result.x_label,
            x_values=result.x_values,
            series=result.series,
            runtimes=result.runtimes,
            metadata=result.metadata,
            plan=plan,
        )

    @property
    def kind(self) -> str:
        """The executed plan's kind (``"sweep"`` when plan-less)."""
        return self.plan.kind if self.plan is not None else "sweep"

    # -- legacy result views -------------------------------------------
    def comparison(self) -> AlgorithmComparison:
        """View a single-point result as an :class:`AlgorithmComparison`."""
        if len(self.x_values) != 1:
            raise ValueError(
                "comparison() requires a single-point result, got "
                f"{len(self.x_values)} points"
            )
        return AlgorithmComparison(
            name=self.name,
            hit_ratios={
                label: stats.stat_at(0) for label, stats in self.series.items()
            },
            runtimes={
                label: stats.stat_at(0)
                for label, stats in self.runtimes.items()
            },
            metadata=self.metadata,
        )

    def mobility(self) -> Fig7Result:
        """View a mobility-study result as a :class:`Fig7Result`."""
        if self.kind != "mobility":
            raise ValueError(f"not a mobility result (kind={self.kind!r})")
        return Fig7Result(
            times_s=np.asarray(self.x_values, dtype=float), series=self.series
        )

    def replacement(self) -> ReplacementAblation:
        """View a replacement-study result as a :class:`ReplacementAblation`."""
        if self.kind != "replacement":
            raise ValueError(f"not a replacement result (kind={self.kind!r})")
        thresholds = list(self.x_values)
        per_metric = {
            label: {
                threshold: stats.stat_at(index)
                for index, threshold in enumerate(thresholds)
            }
            for label, stats in self.series.items()
        }
        return ReplacementAblation(
            thresholds=thresholds,
            mean_hit=per_metric["time-avg hit ratio"],
            replacements=per_metric["replacements"],
            bytes_shipped=per_metric["backbone traffic (bytes)"],
        )

    # -- rendering ------------------------------------------------------
    def to_table(self, float_format: str = ".4f") -> str:
        """Paper-style table; comparison/mobility kinds keep their legacy layout."""
        if self.kind == "comparison":
            return self.comparison().to_table()
        if self.kind == "mobility":
            return self.mobility().to_table()
        if self.kind == "replacement":
            return self.replacement().to_table()
        return super().to_table(float_format=float_format)

    def to_chart(self, width: int = 60, height: int = 15) -> str:
        """ASCII line chart of the mean series."""
        from repro.utils.charts import ascii_chart

        return ascii_chart(
            [float(x) for x in self.x_values],
            {
                label: self.series[label].means.tolist()
                for label in self.series
            },
            width=width,
            height=height,
            title=self.name,
        )

    def to_csv(self) -> str:
        """CSV export (one row per x value)."""
        from repro.sim.serialization import experiment_to_csv

        return experiment_to_csv(self)

    def to_json(self) -> str:
        """JSON export, including the plan for provenance."""
        from repro.sim.serialization import result_set_to_json

        return result_set_to_json(self)

    @classmethod
    def from_json(
        cls, text: str, registry: SolverRegistry = SOLVERS
    ) -> "ResultSet":
        """Rebuild a ResultSet from :meth:`to_json` output."""
        from repro.sim.serialization import result_set_from_json

        return result_set_from_json(text, registry)


# ----------------------------------------------------------------------
# Executors (one per plan kind)
# ----------------------------------------------------------------------
def _run_sweep(plan: ExperimentPlan, registry: SolverRegistry) -> ResultSet:
    axis = resolve_axis(plan.sweep.axis)
    runner = SweepRunner(
        base_config=plan.base_config(),
        algorithms=plan.algorithms(registry),
        num_topologies=plan.num_topologies,
        evaluation=plan.evaluation,
        num_realizations=plan.num_realizations,
        seed=plan.seed,
        workers=plan.workers,
        feasibility=plan.feasibility,
        sample_users=plan.sample_users,
        sample_strata=plan.sample_strata,
    )
    result = runner.run(
        plan.name,
        axis.x_label,
        list(plan.sweep.points),
        lambda cfg, value: axis.apply(cfg, value, plan.scale),
    )
    return ResultSet.from_experiment(result, plan)


def _run_comparison(
    plan: ExperimentPlan, registry: SolverRegistry
) -> ResultSet:
    # Replays repro.sim.legacy._compare_algorithms exactly: per-topology
    # seeds hash((seed, t)), library chained from the first scenario.
    from repro.sim.scenario import build_scenario

    config = plan.base_config()
    algorithms = plan.algorithms(registry)
    hit_ratios = {label: RunningStats() for label in algorithms}
    runtimes = {label: RunningStats() for label in algorithms}
    library = None
    for topology_index in range(plan.num_topologies):
        scenario = build_scenario(
            config,
            hash((plan.seed, topology_index)) % (2**31),
            library=library,
        )
        library = scenario.library  # fixed across topologies
        for label, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            hit_ratios[label].add(result.hit_ratio)
            runtimes[label].add(result.runtime_s)
    return ResultSet(
        name=plan.name,
        x_label="(fixed setting)",
        x_values=[0.0],
        series={
            label: SeriesStats([0.0], [stats])
            for label, stats in hit_ratios.items()
        },
        runtimes={
            label: SeriesStats([0.0], [stats])
            for label, stats in runtimes.items()
        },
        metadata={"config": config, "num_topologies": plan.num_topologies},
        plan=plan,
    )


def _run_mobility(plan: ExperimentPlan, registry: SolverRegistry) -> ResultSet:
    # Replays repro.sim.legacy.fig7_mobility_robustness exactly.
    from repro.sim.mobility_eval import MobilityStudy
    from repro.sim.scenario import build_scenario

    spec: MobilitySpec = plan.study
    config = plan.base_config()
    algorithms = plan.algorithms(registry)
    times: Optional[np.ndarray] = None
    series: Dict[str, SeriesStats] = {}
    for run_index in range(spec.num_runs):
        scenario = build_scenario(
            config, hash((plan.seed, run_index)) % (2**31)
        )
        study = MobilityStudy(scenario, sample_every=spec.sample_every)
        for label, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            trace = study.run(
                result.placement,
                horizon_s=spec.horizon_s,
                seed=(plan.seed, run_index),
            )
            if times is None:
                times = trace.times_s
            if label not in series:
                series[label] = SeriesStats(times.tolist())
            series[label].add_run(trace.hit_ratios.tolist())
    assert times is not None
    return ResultSet(
        name=plan.name,
        x_label="time (s)",
        x_values=times.tolist(),
        series=series,
        runtimes={},
        metadata={"config": config, "num_runs": spec.num_runs},
        plan=plan,
    )


def _run_replacement(
    plan: ExperimentPlan, registry: SolverRegistry
) -> ResultSet:
    # Replays repro.sim.legacy.ablation_replacement exactly; the plan's
    # first (only) solver is the re-placement solver.
    from repro.sim.replacement import ReplacementPolicy
    from repro.sim.scenario import build_scenario

    spec: ReplacementSpec = plan.study
    if len(plan.solvers) != 1:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "a replacement plan evaluates exactly one re-placement solver; "
            f"got {len(plan.solvers)} (sweep thresholds, not solvers)"
        )
    config = plan.base_config()
    solver_spec = plan.solvers[0]
    thresholds = list(spec.thresholds)
    mean_hit = {t: RunningStats() for t in thresholds}
    replacements = {t: RunningStats() for t in thresholds}
    bytes_shipped = {t: RunningStats() for t in thresholds}
    for run_index in range(spec.num_runs):
        scenario = build_scenario(
            config, hash((plan.seed, run_index)) % (2**31)
        )
        for threshold in thresholds:
            policy = ReplacementPolicy(
                scenario,
                solver_spec.build(registry),
                threshold=threshold,
                check_every=spec.check_every,
            )
            trace = policy.run(
                horizon_s=spec.horizon_s, seed=(plan.seed, run_index)
            )
            mean_hit[threshold].add(trace.mean_hit_ratio)
            replacements[threshold].add(trace.num_replacements)
            bytes_shipped[threshold].add(trace.total_bytes_shipped)
    return ResultSet(
        name=plan.name,
        x_label="replace when below",
        x_values=thresholds,
        series={
            "time-avg hit ratio": SeriesStats(
                thresholds, [mean_hit[t] for t in thresholds]
            ),
            "replacements": SeriesStats(
                thresholds, [replacements[t] for t in thresholds]
            ),
            "backbone traffic (bytes)": SeriesStats(
                thresholds, [bytes_shipped[t] for t in thresholds]
            ),
        },
        runtimes={},
        metadata={"config": config, "num_runs": spec.num_runs},
        plan=plan,
    )


def run_plan(
    plan: ExperimentPlan,
    registry: SolverRegistry = SOLVERS,
    backend: Optional[Any] = None,
    store: Optional[Any] = None,
) -> ResultSet:
    """Execute a plan and return its uniform :class:`ResultSet`.

    ``backend`` (an :class:`~repro.exec.backends.ExecutionBackend`)
    selects the execution substrate for sweep plans and ``store`` (an
    :class:`~repro.exec.store.ArtifactStore`) enables content-addressed
    result caching and mid-sweep resume; both default to off, which runs
    the plan exactly as before. Every backend/store combination yields
    hit-ratio series bit-identical to the plain path — use
    :func:`repro.exec.execute_plan` when you also want the execution
    report (cache hit/miss, task counts).
    """
    if backend is not None or store is not None:
        from repro.exec.executor import execute_plan

        result, _ = execute_plan(plan, registry, backend=backend, store=store)
        return result
    kind = plan.kind
    if kind == "sweep":
        return _run_sweep(plan, registry)
    if kind == "mobility":
        return _run_mobility(plan, registry)
    if kind == "replacement":
        return _run_replacement(plan, registry)
    return _run_comparison(plan, registry)
