"""Command-line entry point: regenerate any paper figure or table, or
run an arbitrary declarative sweep.

Usage::

    python -m repro fig4a --topologies 10
    python -m repro fig6a
    python -m repro table1
    python -m repro solvers
    python -m repro sweep --axis capacity --algos spec,gen,independent
    python -m repro sweep --axis users --points 10,30,50 --engine sparse
    python -m repro sweep --plan plan.json --backend process --cache-dir .cache
    python -m repro sweep --plan plan.json --backend remote --retries 3 \
        --chaos kill-worker:2
    trimcaching fig7 --runs 3

Every command prints the reproduced table to stdout. The ``sweep``
command is the generic front-end to the declarative experiment API
(:mod:`repro.api`): pick an axis, points, and any set of registered
solvers — the per-figure commands are just pre-baked plans. With
``--plan`` it executes a serialised plan file instead; ``--backend``
picks the execution substrate (bit-identical series on all of them) and
``--cache-dir`` enables content-addressed result caching with mid-sweep
resume (an unchanged re-run is a pure cache hit). ``--retries``,
``--task-timeout`` and ``--heartbeat`` configure the fault layer (the
``remote`` backend survives worker crashes with bit-identical results),
and ``--chaos`` injects a deterministic fault schedule for drills.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, List, Optional

from repro.sim import experiments

#: Engine choices plumbed into every solver that has an ``engine`` knob.
_ENGINES = ("dense", "sparse", "compiled", "auto")


def _render_result(result, args: argparse.Namespace) -> str:
    """Table plus the optional chart/CSV/JSON side outputs."""
    output = result.to_table()
    if getattr(args, "chart", False):
        from repro.utils.charts import ascii_chart

        output += "\n\n" + ascii_chart(
            [float(x) for x in result.x_values],
            {algo: result.series[algo].means.tolist() for algo in result.series},
            title=result.name,
        )
    if getattr(args, "csv", None):
        from repro.sim.serialization import experiment_to_csv

        with open(args.csv, "w") as handle:
            handle.write(experiment_to_csv(result))
        output += f"\n(series written to {args.csv})"
    if getattr(args, "json", None):
        from repro.sim.serialization import result_set_to_json

        with open(args.json, "w") as handle:
            handle.write(result_set_to_json(result))
        output += f"\n(result set written to {args.json})"
    return output


def _sweep_command(fn: Callable) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        kwargs = dict(
            num_topologies=args.topologies,
            evaluation=args.evaluation,
            seed=args.seed,
            workers=args.workers,
            engine=args.engine,
        )
        if args.scale is not None:
            kwargs["scale"] = args.scale
        return _render_result(fn(**kwargs), args)

    return run


def _comparison_command(fn: Callable) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        return fn(num_topologies=args.topologies, seed=args.seed).to_table()

    return run


def _fig1(args: argparse.Namespace) -> str:
    return experiments.fig1_accuracy_vs_frozen(step=args.step).to_table()


def _table1(args: argparse.Namespace) -> str:
    return experiments.table1_library_construction(
        num_models=args.models, seed=args.seed
    ).to_table()


def _fig7(args: argparse.Namespace) -> str:
    return experiments.fig7_mobility_robustness(
        num_runs=args.runs, seed=args.seed
    ).to_table()


def _ablation_replacement(args: argparse.Namespace) -> str:
    return experiments.ablation_replacement(
        num_runs=args.runs, seed=args.seed
    ).to_table()


def _solvers(args: argparse.Namespace) -> str:
    from repro.api import SOLVERS

    return SOLVERS.to_table()


def _serve_scenario(args: argparse.Namespace):
    """The scenario a ``serve`` invocation describes (plan file or flags)."""
    from repro.errors import ConfigurationError
    from repro.sim.config import ScenarioConfig
    from repro.sim.scenario import build_scenario
    from repro.utils.units import GB

    if args.plan is not None:
        from repro.api import plan_from_json

        try:
            with open(args.plan) as handle:
                plan = plan_from_json(handle.read())
        except OSError as exc:
            raise ConfigurationError(f"cannot read --plan file: {exc}") from exc
        config = ScenarioConfig.from_dict(dict(plan.base))
        seed = plan.seed if args.seed is None else args.seed
    else:
        fields = {}
        if args.servers is not None:
            fields["num_servers"] = args.servers
        if args.users is not None:
            fields["num_users"] = args.users
        if args.models is not None:
            fields["num_models"] = args.models
        if args.requests_per_user is not None:
            fields["requests_per_user"] = args.requests_per_user
        if args.storage_gb is not None:
            fields["storage_bytes"] = int(args.storage_gb * GB)
        if args.case is not None:
            fields["library_case"] = args.case
        config = ScenarioConfig(**fields)
        seed = args.seed if args.seed is not None else 0
    return build_scenario(config, seed=int(seed)), int(seed)


def _serve(args: argparse.Namespace) -> str:
    """Solve a scenario once and serve it over HTTP (blocks)."""
    from repro import obs
    from repro.errors import ConfigurationError
    from repro.serve import PlacementService, ResolvePolicy, serve_http

    if args.no_obs and args.trace is not None:
        raise ConfigurationError(
            "--trace requires observability; drop --no-obs"
        )
    # An operator-facing server defaults metrics ON (that is what the
    # /metrics endpoint is for); the library PlacementService enables
    # nothing on its own. --trace additionally collects spans.
    if not args.no_obs:
        obs.enable(metrics=True, tracing=args.trace is not None)
    scenario, seed = _serve_scenario(args)
    policy = ResolvePolicy(
        mode=args.policy,
        full_every=args.full_every,
        max_changed_fraction=args.max_changed_fraction,
    )
    service = PlacementService(
        scenario, solver=args.solver, engine=args.engine, policy=policy
    )
    server = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    instance = service.instance
    # Smoke tests and scripts parse these lines (hence port on its own
    # line, flushed before the blocking serve loop starts).
    print(
        f"serving {args.solver}/{args.engine} "
        f"M={instance.num_servers} K={instance.num_users} "
        f"I={instance.num_models} seed={seed} "
        f"hit_ratio={service.hit_ratio:.6f}",
        flush=True,
    )
    print(f"listening on http://{args.host}:{server.port}", flush=True)
    print(f"port={server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if args.trace is not None:
            obs.export.write_chrome_trace(obs.tracer(), args.trace)
            print(f"(chrome trace written to {args.trace})", flush=True)
    return "server stopped"


# ----------------------------------------------------------------------
# The generic declarative sweep
# ----------------------------------------------------------------------
#: Default point lists for the named axes (the paper's sweeps).
_DEFAULT_POINTS = {
    "capacity": experiments.CAPACITY_SWEEP_GB,
    "servers": experiments.SERVER_SWEEP,
    "users": experiments.USER_SWEEP,
}


def _parse_points(text: str) -> List[float]:
    from repro.errors import ConfigurationError

    try:
        return [float(token) for token in text.split(",") if token.strip()]
    except ValueError as exc:
        raise ConfigurationError(f"invalid --points value: {exc}") from exc


def _generic_solver_spec(name: str, engine: str, epsilon: float):
    """A SolverSpec for ``name`` with engine/epsilon applied when supported."""
    from repro.api import SOLVERS, SolverSpec

    config = SOLVERS.config(name)
    field_names = {f.name for f in dataclasses.fields(config)}
    updates = {}
    if "engine" in field_names:
        updates["engine"] = engine
    if "epsilon" in field_names:
        updates["epsilon"] = epsilon
    if updates:
        config = dataclasses.replace(config, **updates)
    return SolverSpec(name, config=config)


#: The ``sweep`` flags that define the experiment itself (as opposed to
#: how it executes). They default to ``None`` so an explicit use can be
#: detected — and rejected — when ``--plan`` already defines the grid.
_GRID_FLAGS = {
    "axis": None,
    "points": None,
    "algos": "gen,independent",
    "case": "special",
    "evaluation": "expected",
    "realizations": 200,
    "scale": None,
    "engine": "dense",
    "epsilon": 0.1,
    "servers": None,
    "users": None,
    "models": None,
    "requests_per_user": None,
    "storage_gb": None,
    "rng_scheme": None,
    "chunk_size": None,
    "sample_users": None,
    "name": None,
    "topologies": 10,
    "seed": 0,
}


def _build_cli_plan(args: argparse.Namespace):
    """The plan an ``--axis``-style invocation describes."""
    from repro.api import ExperimentPlan, SweepSpec
    from repro.utils.units import GB

    # Unset grid flags take their documented defaults here (they stay
    # None on the namespace so the --plan path can detect explicit use).
    for flag, default in _GRID_FLAGS.items():
        if getattr(args, flag) is None:
            setattr(args, flag, default)

    scale = args.scale if args.scale is not None else experiments.DEFAULT_SCALE
    points = (
        _parse_points(args.points)
        if args.points is not None
        else list(_DEFAULT_POINTS.get(args.axis, []))
    )
    if not points:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"--points is required for axis {args.axis!r} "
            f"(no paper default exists)"
        )
    base = {
        "library_case": args.case,
        "num_models": experiments._scaled_library(scale),
        "requests_per_user": experiments._scaled_requests(scale),
    }
    if args.servers is not None:
        base["num_servers"] = args.servers
    if args.users is not None:
        base["num_users"] = args.users
    if args.models is not None:
        base["num_models"] = args.models
    if args.requests_per_user is not None:
        base["requests_per_user"] = args.requests_per_user
    if args.storage_gb is not None:
        base["storage_bytes"] = int(args.storage_gb * scale * GB)
    if args.rng_scheme is not None:
        base["rng_scheme"] = args.rng_scheme
    if args.chunk_size is not None or args.sample_users is not None:
        if args.rng_scheme != "v2":
            from repro.errors import ConfigurationError

            flag = (
                "--chunk-size"
                if args.chunk_size is not None
                else "--sample-users"
            )
            raise ConfigurationError(
                f"{flag} requires --rng-scheme v2: the v1 per-user draw "
                "stream cannot be chunked or subsampled without changing "
                "default results"
            )
    if args.chunk_size is not None:
        base["chunk_size"] = args.chunk_size
    evaluation = args.evaluation
    if args.sample_users is not None:
        if evaluation == "monte_carlo":
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--sample-users conflicts with --evaluation monte_carlo; "
                "the sampling evaluator estimates the expected hit ratio"
            )
        evaluation = "sampled"
    elif evaluation == "sampled":
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "--evaluation sampled requires --sample-users"
        )
    algos = [token.strip() for token in args.algos.split(",") if token.strip()]
    if not algos:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "--algos must name at least one registered solver"
        )
    return ExperimentPlan(
        name=args.name
        or f"Sweep — {args.axis} ({args.case} case, scale={scale})",
        sweep=SweepSpec(args.axis, tuple(points)),
        solvers=tuple(
            _generic_solver_spec(name, args.engine, args.epsilon)
            for name in algos
        ),
        base=base,
        num_topologies=args.topologies,
        evaluation=evaluation,
        num_realizations=args.realizations,
        seed=args.seed,
        scale=scale,
        workers=args.workers if args.workers is not None else 1,
        sample_users=args.sample_users,
    )


def _phase_footer() -> str:
    """The per-phase wall-clock breakdown (empty unless tracing ran)."""
    from repro import obs

    if not obs.tracing_enabled():
        return ""
    from repro.exec.executor import ExecutionReport

    report = ExecutionReport(backend="serial", cache="off")
    report.record_phases()
    table = report.phase_breakdown()
    return "\n" + table if table else ""


def _generic_sweep(args: argparse.Namespace) -> str:
    from repro.api import plan_from_json, plan_to_json, run_plan
    from repro.errors import ConfigurationError

    if args.plan is not None:
        # The plan file is authoritative for *what* runs; the CLI flags
        # only choose how (backend/cache/workers/outputs). Rather than
        # silently ignoring an experiment-defining flag, refuse it —
        # edit the plan file (or regenerate it with --dry-run) instead.
        overridden = sorted(
            flag.replace("_", "-")
            for flag in _GRID_FLAGS
            if getattr(args, flag) is not None
        )
        if overridden:
            raise ConfigurationError(
                "--plan already defines the experiment; remove the "
                f"conflicting flag(s): --{', --'.join(overridden)}"
            )
        try:
            with open(args.plan) as handle:
                plan = plan_from_json(handle.read())
        except OSError as exc:
            raise ConfigurationError(f"cannot read --plan file: {exc}") from exc
        # An explicit --workers still applies: it is execution placement
        # (it can lower a shared plan file's parallelism), not content.
        if args.workers is not None:
            plan = plan.with_overrides(workers=args.workers)
    elif args.axis is not None:
        plan = _build_cli_plan(args)
    else:
        raise ConfigurationError("either --axis or --plan is required")
    if args.dry_run:
        return plan_to_json(plan)

    fault_flags = (args.retries, args.task_timeout, args.heartbeat, args.chaos)
    if args.backend is None and any(flag is not None for flag in fault_flags):
        raise ConfigurationError(
            "--retries/--task-timeout/--heartbeat/--chaos require an "
            "explicit --backend"
        )
    backend = None
    if args.backend is not None:
        from repro.exec import ChaosPolicy, default_retry_policy, make_backend

        backend = make_backend(
            args.backend,
            workers=plan.workers,
            retry=(
                default_retry_policy(args.retries)
                if args.retries is not None
                else None
            ),
            heartbeat_interval=args.heartbeat,
            task_timeout=args.task_timeout,
            chaos=(
                ChaosPolicy.parse(args.chaos)
                if args.chaos is not None
                else None
            ),
        )
    store = None
    if args.cache_dir is not None:
        from repro.exec import ArtifactStore

        store = ArtifactStore(args.cache_dir)

    # Observability is an execution concern, not a grid concern: --obs,
    # --trace and --profile compose with --plan. Results are identical
    # with or without (the pinned obs identity tests enforce it).
    want_tracing = args.obs or args.trace is not None or bool(args.profile)
    if want_tracing or args.obs:
        from repro import obs

        obs.enable(metrics=args.obs, tracing=want_tracing)

    def execute() -> str:
        if backend is None and store is None:
            output = _render_result(run_plan(plan), args)
            return output + _phase_footer()
        from repro.exec import execute_plan

        result, report = execute_plan(plan, backend=backend, store=store)
        output = _render_result(result, args) + f"\n({report.summary()})"
        breakdown = report.phase_breakdown()
        if breakdown:
            output += "\n" + breakdown
        return output

    def finish(output: str) -> str:
        if args.trace is not None:
            from repro import obs

            obs.export.write_chrome_trace(obs.tracer(), args.trace)
            output += f"\n(chrome trace written to {args.trace})"
        return output

    if not args.profile:
        return finish(execute())
    # --profile wraps the whole execution (plan run + rendering) in
    # cProfile and appends the hottest 25 cumulative entries; with a
    # path argument the raw profile is also dumped in pstats format.
    # Results are unaffected; only wall time pays the tracing overhead.
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        output = execute()
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(25)
    output += "\n" + stream.getvalue().rstrip()
    if isinstance(args.profile, str):
        profiler.dump_stats(args.profile)
        output += f"\n(pstats profile written to {args.profile})"
    return finish(output)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="trimcaching",
        description="Reproduce TrimCaching (ICDCS 2024) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, topologies: int = 10) -> None:
        p.add_argument("--topologies", type=int, default=topologies)
        p.add_argument("--seed", type=int, default=0)

    def add_sweep_outputs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chart", action="store_true", help="also render an ASCII chart"
        )
        p.add_argument("--csv", help="write the series to this CSV file")
        p.add_argument(
            "--json",
            help="write the full result set (series + plan) to this JSON file",
        )

    sweeps = {
        "fig4a": experiments.fig4a_hit_vs_capacity,
        "fig4b": experiments.fig4b_hit_vs_servers,
        "fig4c": experiments.fig4c_hit_vs_users,
        "fig5a": experiments.fig5a_hit_vs_capacity,
        "fig5b": experiments.fig5b_hit_vs_servers,
        "fig5c": experiments.fig5c_hit_vs_users,
    }
    for name, fn in sweeps.items():
        p = sub.add_parser(name, help=fn.__doc__.splitlines()[0])
        add_common(p)
        p.add_argument(
            "--evaluation", choices=("expected", "monte_carlo"), default="expected"
        )
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="library/storage scale (1.0 = the paper's full setting)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool width for the topology fan-out "
            "(bit-identical series for any value)",
        )
        p.add_argument(
            "--engine",
            choices=_ENGINES,
            default="dense",
            help="coverage engine: dense (bit-pinned to the seed), "
            "sparse (O(nnz) CSR walks), compiled (numba kernels when "
            "installed, numpy fallbacks otherwise) or auto",
        )
        add_sweep_outputs(p)
        p.set_defaults(handler=_sweep_command(fn))

    # The generic declarative sweep over any axis/solver set.
    p = sub.add_parser(
        "sweep",
        help="Run a declarative sweep: any axis, points and solver set, "
        "or a serialised --plan file.",
    )
    add_common(p)
    p.add_argument(
        "--axis",
        default=None,
        help="capacity | servers | users | any ScenarioConfig field "
        "(required unless --plan is given)",
    )
    p.add_argument(
        "--plan",
        default=None,
        help="execute this serialised plan JSON file instead of building "
        "a plan from --axis/--points/--algos",
    )
    p.add_argument(
        "--backend",
        choices=("serial", "process", "cluster", "remote"),
        default=None,
        help="execution backend for the task grid (bit-identical series "
        "on all; process/cluster/remote width follows --workers)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed artifact store: unchanged re-runs are "
        "pure cache hits and killed sweeps resume from completed tasks",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per task on transient failures (worker death, "
        "dropped connection, timeout), then in-process degradation; "
        "results stay bit-identical (default: fail fast, typed error)",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="straggler deadline in seconds (remote backend): past it a "
        "task is re-dispatched to an idle worker, past twice it the "
        "wedged worker is declared lost",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        help="remote-worker heartbeat interval in seconds (liveness "
        "timeout is five intervals; default 0.2)",
    )
    p.add_argument(
        "--chaos",
        default=None,
        help="deterministic fault injection on the remote backend, e.g. "
        "'kill-worker:2', 'drop-conn:1,straggle:3x0.5' (facets: "
        "kill-worker:N[xLIMIT], drop-conn:N[xLIMIT], "
        "heartbeat-delay:S, straggle:EVERYxSECONDS, seed:S)",
    )
    p.add_argument(
        "--points",
        help="comma-separated sweep points (defaults to the paper's "
        "values for the named axes)",
    )
    # Grid-defining flags default to None (documented fallbacks applied
    # in _build_cli_plan) so --plan can reject explicit use of any.
    p.add_argument(
        "--algos",
        default=None,
        help="comma-separated registered solver names "
        "(see `python -m repro solvers`; default gen,independent)",
    )
    p.add_argument("--case", choices=("special", "general"), default=None)
    p.add_argument(
        "--evaluation",
        choices=("expected", "monte_carlo", "sampled"),
        default=None,
    )
    p.add_argument("--realizations", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallelism (backend width / plan workers field); "
        "defaults to the plan's own setting",
    )
    p.add_argument("--engine", choices=_ENGINES, default=None)
    p.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="rounding parameter for solvers that take one (spec; "
        "default 0.1)",
    )
    p.add_argument("--servers", type=int, default=None)
    p.add_argument("--users", type=int, default=None)
    p.add_argument("--models", type=int, default=None)
    p.add_argument("--requests-per-user", type=int, default=None)
    p.add_argument(
        "--storage-gb",
        type=float,
        default=None,
        help="per-server storage in paper-scale GB (shrunk by --scale)",
    )
    p.add_argument(
        "--rng-scheme",
        choices=("v1", "v2"),
        default=None,
        help="scenario RNG scheme: v1 (seed-identical per-user draws, "
        "default) or v2 (batched numpy draws; statistically equivalent, "
        "different stream layout)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="build scenarios in user blocks of this size (requires "
        "--rng-scheme v2; bit-identical to the unchunked v2 build, "
        "temporaries bounded by the chunk)",
    )
    p.add_argument(
        "--sample-users",
        type=int,
        default=None,
        help="score placements from a stratified user sample of this "
        "size instead of the full population (requires --rng-scheme v2; "
        "implies --evaluation sampled)",
    )
    p.add_argument("--name", default=None, help="result/plan title")
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan JSON instead of running it",
    )
    p.add_argument(
        "--profile",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="run under cProfile and append the top-25 cumulative-time "
        "entries (plus the per-phase span breakdown) to the output; "
        "with PATH, also dump the raw profile in pstats format",
    )
    p.add_argument(
        "--obs",
        action="store_true",
        help="enable the repro.obs metrics registry and tracer for this "
        "run and append the per-phase wall-clock breakdown (results "
        "are bit-identical either way)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON of the run to PATH "
        "(load in Perfetto / chrome://tracing); implies tracing on",
    )
    add_sweep_outputs(p)
    # add_common gave --topologies/--seed concrete defaults; sweep needs
    # them None-able too, so --plan can detect explicit use.
    p.set_defaults(handler=_generic_sweep, topologies=None, seed=None)

    p = sub.add_parser("solvers", help="List the registered solvers.")
    p.set_defaults(handler=_solvers)

    comparisons = {
        "fig6a": experiments.fig6a_optimality_gap,
        "fig6b": experiments.fig6b_runtime_general,
        "ablation-epsilon": experiments.ablation_epsilon,
        "ablation-lazy": experiments.ablation_lazy_greedy,
        "ablation-order": experiments.ablation_server_order,
        "ablation-backend": experiments.ablation_dp_backend,
    }
    for name, fn in comparisons.items():
        p = sub.add_parser(name, help=fn.__doc__.splitlines()[0])
        add_common(p, topologies=5)
        p.set_defaults(handler=_comparison_command(fn))

    p = sub.add_parser("fig1", help="Accuracy vs. frozen layers (Fig. 1).")
    p.add_argument("--step", type=int, default=10)
    p.set_defaults(handler=_fig1)

    p = sub.add_parser("table1", help="Table I library construction.")
    p.add_argument("--models", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_table1)

    p = sub.add_parser("fig7", help="Mobility robustness (Fig. 7).")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_fig7)

    p = sub.add_parser(
        "ablation-replacement",
        help="Threshold-triggered re-placement trade-off (§IV-A).",
    )
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_ablation_replacement)

    p = sub.add_parser(
        "serve",
        help="Solve a scenario once and serve it over HTTP (blocks).",
        description=(
            "Placement-as-a-service: solve once, keep the tracker state "
            "resident, and answer /route queries and POST /events "
            "mutations over stdlib HTTP. The scenario comes from a plan "
            "file's base config (--plan) or from the direct shape flags."
        ),
    )
    p.add_argument("--plan", help="Experiment-plan JSON; its base config and seed define the scenario.")
    p.add_argument("--servers", type=int, help="Number of edge servers M.")
    p.add_argument("--users", type=int, help="Number of users K.")
    p.add_argument("--models", type=int, help="Number of models I.")
    p.add_argument("--requests-per-user", type=int, help="Requests per user.")
    p.add_argument("--storage-gb", type=float, help="Per-server storage in GB.")
    p.add_argument(
        "--case",
        choices=("special", "general"),
        help="Library case (default: config default).",
    )
    p.add_argument("--seed", type=int, help="Scenario seed (overrides the plan's).")
    p.add_argument("--solver", choices=("gen", "independent"), default="gen")
    p.add_argument("--engine", choices=("dense", "sparse"), default="sparse")
    p.add_argument(
        "--policy", choices=("auto", "patch", "full"), default="auto"
    )
    p.add_argument(
        "--full-every",
        type=int,
        default=0,
        help="Force a full re-solve every Nth event (0 disables).",
    )
    p.add_argument(
        "--max-changed-fraction",
        type=float,
        default=0.5,
        help="Auto mode: full re-solve when more columns change.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 binds an ephemeral port, printed on startup).",
    )
    p.add_argument(
        "--verbose", action="store_true", help="Log HTTP requests to stderr."
    )
    p.add_argument(
        "--no-obs",
        action="store_true",
        help="Do not enable repro.obs metrics (GET /metrics then serves "
        "only the service-derived counters).",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="Collect spans and write a Chrome trace-event JSON to PATH "
        "on shutdown (conflicts with --no-obs).",
    )
    p.set_defaults(handler=_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.handler(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
