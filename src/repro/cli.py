"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro fig4a --topologies 10
    python -m repro fig6a
    python -m repro table1
    trimcaching fig7 --runs 3

Every command prints the reproduced table to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.sim import experiments


def _sweep_command(fn: Callable) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        kwargs = dict(
            num_topologies=args.topologies,
            evaluation=args.evaluation,
            seed=args.seed,
            workers=args.workers,
        )
        if args.scale is not None:
            kwargs["scale"] = args.scale
        result = fn(**kwargs)
        output = result.to_table()
        if args.chart:
            from repro.utils.charts import ascii_chart

            output += "\n\n" + ascii_chart(
                list(result.x_values),
                {algo: result.mean_of(algo).tolist() for algo in result.series},
                title=result.name,
            )
        if args.csv:
            from repro.sim.serialization import experiment_to_csv

            with open(args.csv, "w") as handle:
                handle.write(experiment_to_csv(result))
            output += f"\n(series written to {args.csv})"
        return output

    return run


def _comparison_command(fn: Callable) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        return fn(num_topologies=args.topologies, seed=args.seed).to_table()

    return run


def _fig1(args: argparse.Namespace) -> str:
    return experiments.fig1_accuracy_vs_frozen(step=args.step).to_table()


def _table1(args: argparse.Namespace) -> str:
    return experiments.table1_library_construction(
        num_models=args.models, seed=args.seed
    ).to_table()


def _fig7(args: argparse.Namespace) -> str:
    return experiments.fig7_mobility_robustness(
        num_runs=args.runs, seed=args.seed
    ).to_table()


def _ablation_replacement(args: argparse.Namespace) -> str:
    return experiments.ablation_replacement(
        num_runs=args.runs, seed=args.seed
    ).to_table()


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="trimcaching",
        description="Reproduce TrimCaching (ICDCS 2024) figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, topologies: int = 10) -> None:
        p.add_argument("--topologies", type=int, default=topologies)
        p.add_argument("--seed", type=int, default=0)

    sweeps = {
        "fig4a": experiments.fig4a_hit_vs_capacity,
        "fig4b": experiments.fig4b_hit_vs_servers,
        "fig4c": experiments.fig4c_hit_vs_users,
        "fig5a": experiments.fig5a_hit_vs_capacity,
        "fig5b": experiments.fig5b_hit_vs_servers,
        "fig5c": experiments.fig5c_hit_vs_users,
    }
    for name, fn in sweeps.items():
        p = sub.add_parser(name, help=fn.__doc__.splitlines()[0])
        add_common(p)
        p.add_argument(
            "--evaluation", choices=("expected", "monte_carlo"), default="expected"
        )
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="library/storage scale (1.0 = the paper's full setting)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool width for the topology fan-out "
            "(bit-identical series for any value)",
        )
        p.add_argument(
            "--chart", action="store_true", help="also render an ASCII chart"
        )
        p.add_argument("--csv", help="write the series to this CSV file")
        p.set_defaults(handler=_sweep_command(fn))

    comparisons = {
        "fig6a": experiments.fig6a_optimality_gap,
        "fig6b": experiments.fig6b_runtime_general,
        "ablation-epsilon": experiments.ablation_epsilon,
        "ablation-lazy": experiments.ablation_lazy_greedy,
        "ablation-order": experiments.ablation_server_order,
        "ablation-backend": experiments.ablation_dp_backend,
    }
    for name, fn in comparisons.items():
        p = sub.add_parser(name, help=fn.__doc__.splitlines()[0])
        add_common(p, topologies=5)
        p.set_defaults(handler=_comparison_command(fn))

    p = sub.add_parser("fig1", help="Accuracy vs. frozen layers (Fig. 1).")
    p.add_argument("--step", type=int, default=10)
    p.set_defaults(handler=_fig1)

    p = sub.add_parser("table1", help="Table I library construction.")
    p.add_argument("--models", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_table1)

    p = sub.add_parser("fig7", help="Mobility robustness (Fig. 7).")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_fig7)

    p = sub.add_parser(
        "ablation-replacement",
        help="Threshold-triggered re-placement trade-off (§IV-A).",
    )
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_ablation_replacement)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
