"""The paper's contribution: the placement problem and its solvers.

* :class:`~repro.core.placement.PlacementInstance` — problem **P1.1**:
  demand ``p_{k,i}``, feasibility ``I1[m,k,i]``, capacities ``Q_m`` and the
  parameter-sharing library.
* :mod:`~repro.core.objective` — cache-hit objective ``U(X)`` (eq. 2) and
  the submodular storage cost ``g_m`` (eq. 7).
* :class:`~repro.core.spec.TrimCachingSpec` — Algorithms 1+2 for the
  special case, with the (1-ε)/2 guarantee.
* :class:`~repro.core.gen.TrimCachingGen` — Algorithm 3 greedy for the
  general case.
* :class:`~repro.core.independent.IndependentCaching` — the content-
  placement baseline that ignores parameter sharing.
* :class:`~repro.core.exhaustive.ExhaustiveSearch` — exact optimum for
  small instances (used by the Fig. 6 study and the test suite).
"""

from repro.core.analysis import PlacementReport, analyze_placement
from repro.core.blockmask import BlockMaskIndex, ServerBlockCache
from repro.core.bounds import gamma_bound, spec_guarantee
from repro.core.exhaustive import ExhaustiveConfig, ExhaustiveSearch
from repro.core.gen import GenConfig, TrimCachingGen
from repro.core.independent import IndependentCaching, IndependentConfig
from repro.core.extras import (
    RandomConfig,
    RandomPlacement,
    TopPopularityConfig,
    TopPopularityPlacement,
)
from repro.core.reference import (
    ReferenceGen,
    ReferenceGenConfig,
    ReferenceIndependent,
    ReferenceIndependentConfig,
    ReferenceSpec,
    ReferenceSpecConfig,
)
from repro.core.objective import (
    CoverageTracker,
    hit_ratio,
    placement_is_feasible,
    storage_used,
)
from repro.core.placement import Placement, PlacementInstance
from repro.core.sparse import SparseFeasibility
from repro.core.spec import SpecConfig, TrimCachingSpec

__all__ = [
    "PlacementInstance",
    "Placement",
    "SparseFeasibility",
    "hit_ratio",
    "storage_used",
    "placement_is_feasible",
    "CoverageTracker",
    "BlockMaskIndex",
    "ServerBlockCache",
    "TrimCachingSpec",
    "TrimCachingGen",
    "IndependentCaching",
    "ExhaustiveSearch",
    "RandomPlacement",
    "TopPopularityPlacement",
    "ReferenceGen",
    "ReferenceIndependent",
    "ReferenceSpec",
    "SpecConfig",
    "GenConfig",
    "IndependentConfig",
    "ExhaustiveConfig",
    "RandomConfig",
    "TopPopularityConfig",
    "ReferenceGenConfig",
    "ReferenceIndependentConfig",
    "ReferenceSpecConfig",
    "gamma_bound",
    "spec_guarantee",
    "analyze_placement",
    "PlacementReport",
]
