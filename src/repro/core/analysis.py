"""Placement diagnostics: what a decision looks like operationally.

The solvers optimise one number (the hit ratio); an operator adopting
them needs to see *how* that number is achieved. This module summarises a
placement: per-server storage utilisation and dedup savings, per-model
replication, per-user service quality and its fairness (Jain's index),
and which demand goes unserved and why (not cached vs. physically
unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.objective import served_matrix, storage_used
from repro.core.placement import Placement, PlacementInstance
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ServerSummary:
    """One server's cache, storage-wise."""

    server: int
    num_models: int
    used_bytes: int
    capacity_bytes: int
    dedup_saved_bytes: int

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use (0 for a zero-capacity server)."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


@dataclass(frozen=True)
class PlacementReport:
    """Full diagnostic summary of one placement."""

    hit_ratio: float
    servers: List[ServerSummary]
    replication: np.ndarray  # (I,) copies of each model across servers
    per_user_hit: np.ndarray  # (K,) per-user served demand fraction
    unserved_uncached: float  # demand missing because nothing cached it
    unserved_unreachable: float  # demand missing because no server CAN serve it

    @property
    def jain_fairness(self) -> float:
        """Jain's index of the per-user hit ratios (1 = perfectly fair)."""
        values = self.per_user_hit
        total = values.sum()
        if total == 0:
            return 1.0
        return float(total**2 / (len(values) * (values**2).sum()))

    @property
    def mean_replication(self) -> float:
        """Average number of cached copies per placed model."""
        placed = self.replication[self.replication > 0]
        if len(placed) == 0:
            return 0.0
        return float(placed.mean())

    def to_table(self) -> str:
        """Per-server rows plus a footer of global metrics."""
        rows = []
        for summary in self.servers:
            rows.append(
                [
                    summary.server,
                    summary.num_models,
                    f"{summary.used_bytes / 1e6:.1f} MB",
                    f"{summary.utilization:.0%}",
                    f"{summary.dedup_saved_bytes / 1e6:.1f} MB",
                ]
            )
        table = format_table(
            ["server", "models", "used", "utilisation", "dedup saved"],
            rows,
            title="Placement diagnostics",
        )
        footer = format_table(
            ["metric", "value"],
            [
                ["hit ratio", f"{self.hit_ratio:.4f}"],
                ["mean replication", f"{self.mean_replication:.2f}"],
                ["Jain fairness (users)", f"{self.jain_fairness:.3f}"],
                ["unserved (not cached)", f"{self.unserved_uncached:.4f}"],
                ["unserved (unreachable)", f"{self.unserved_unreachable:.4f}"],
            ],
        )
        return table + "\n" + footer


def analyze_placement(
    instance: PlacementInstance, placement: Placement
) -> PlacementReport:
    """Build a :class:`PlacementReport` for ``placement``."""
    servers: List[ServerSummary] = []
    for server in range(instance.num_servers):
        cached = placement.models_on(server)
        used = storage_used(instance, placement, server)
        independent = int(sum(instance.model_sizes[i] for i in cached))
        servers.append(
            ServerSummary(
                server=server,
                num_models=len(cached),
                used_bytes=used,
                capacity_bytes=int(instance.capacities[server]),
                dedup_saved_bytes=independent - used,
            )
        )

    served = served_matrix(instance, placement)  # (K, I)
    weights = instance.demand
    row_demand = weights.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        per_user = np.where(
            row_demand > 0, (weights * served).sum(axis=1) / row_demand, 0.0
        )

    # Decompose misses: a (k, i) pair is *reachable* if some server could
    # serve it within deadline (I1 true for some m); unreachable demand can
    # never be a hit no matter the placement.
    reachable = instance.feasible.any(axis=0)  # (K, I)
    missed = ~served
    unserved_uncached = float(
        (weights * (missed & reachable)).sum() / instance.total_demand
    )
    unserved_unreachable = float(
        (weights * (missed & ~reachable)).sum() / instance.total_demand
    )
    hit = float((weights * served).sum() / instance.total_demand)
    return PlacementReport(
        hit_ratio=hit,
        servers=servers,
        replication=placement.matrix.sum(axis=0),
        per_user_hit=per_user,
        unserved_uncached=unserved_uncached,
        unserved_unreachable=unserved_unreachable,
    )
