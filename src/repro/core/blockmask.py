"""Dense block-membership bitmasks for the vectorised solver engine.

The set-based storage accounting on :class:`~repro.core.placement.
PlacementInstance` (``marginal_storage``/``dedup_storage``) walks Python
frozensets per (server, model) probe — fine for reference code, but it is
the inner loop of every greedy solver. :class:`BlockMaskIndex` replaces
those walks with dense numpy arrays over *block positions* ``0..B-1``:

* ``member`` — ``(I, B)`` bool: does model ``i`` contain block ``b``?
* ``sizes`` — ``(B,)`` int64 block sizes.

With a per-server cached-block mask ``c`` (``(B,)`` bool) the marginal
storage of *every* model at once is the single integer matvec
``(member & ~c) @ sizes`` — exact (no float drift), so incremental
maintenance of marginal-size tables is bit-stable.

:class:`ServerBlockCache` maintains those per-server masks plus an
``(M, I)`` marginal-size table updated by exact integer deltas as models
are placed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence

import numpy as np


class BlockMaskIndex:
    """Immutable dense index of model -> block membership.

    Parameters
    ----------
    model_blocks:
        Per dense model index, the frozenset of block ids it contains
        (``PlacementInstance.model_blocks``).
    block_sizes:
        Block id -> size in bytes (``PlacementInstance.block_sizes``).
        Every block referenced by a model must be present; unreferenced
        blocks are allowed (they occupy a column that no model sets).
    """

    def __init__(
        self,
        model_blocks: Sequence[FrozenSet[int]],
        block_sizes: Mapping[int, int],
    ) -> None:
        #: block position -> block id (ascending id order).
        self.block_ids: np.ndarray = np.array(sorted(block_sizes), dtype=np.int64)
        #: block id -> block position.
        self.block_pos: Dict[int, int] = {
            int(block_id): pos for pos, block_id in enumerate(self.block_ids)
        }
        #: ``(B,)`` block sizes in bytes, aligned with ``block_ids``.
        self.sizes: np.ndarray = np.array(
            [block_sizes[int(b)] for b in self.block_ids], dtype=np.int64
        )
        num_models = len(model_blocks)
        num_blocks = len(self.block_ids)
        #: ``(I, B)`` bool membership matrix.
        self.member: np.ndarray = np.zeros((num_models, num_blocks), dtype=bool)
        for index, blocks in enumerate(model_blocks):
            if blocks:
                self.member[index, [self.block_pos[b] for b in blocks]] = True
        #: ``(I,)`` full model sizes ``D_i`` (sum of member block sizes).
        self.model_sizes: np.ndarray = self.member @ self.sizes
        #: per model, the sorted block *positions* it occupies (the sparse
        #: row of ``member`` — the greedy engines touch only these).
        self.model_positions: list = [
            np.flatnonzero(row) for row in self.member
        ]
        member_i64 = self.member.astype(np.int64)
        #: per model, the ``(B',)`` sizes of its own blocks and the
        #: ``(I, B')`` membership sub-matrix over those blocks — the only
        #: columns the per-placement delta update can touch, precomputed
        #: contiguous so the hot matvec never gathers from ``member``.
        self.model_block_sizes: list = [
            self.sizes[positions] for positions in self.model_positions
        ]
        self.model_member_cols: list = [
            np.ascontiguousarray(member_i64[:, positions])
            for positions in self.model_positions
        ]
        #: per model, the precomputed delta when *none* of its blocks are
        #: cached yet (the common case on sparsely filled servers):
        #: ``member_cols @ block_sizes`` — every model's marginal drops by
        #: its byte overlap with the freshly cached model.
        self.model_full_overlap: list = [
            cols @ sizes
            for cols, sizes in zip(self.model_member_cols, self.model_block_sizes)
        ]

    # ------------------------------------------------------------------
    @property
    def num_models(self) -> int:
        """``I``."""
        return int(self.member.shape[0])

    @property
    def num_blocks(self) -> int:
        """``B``."""
        return int(self.member.shape[1])

    def empty_mask(self) -> np.ndarray:
        """A fresh all-false ``(B,)`` block mask."""
        return np.zeros(self.num_blocks, dtype=bool)

    def mask_of(self, model_index: int) -> np.ndarray:
        """``(B,)`` bool membership row of one model (a view)."""
        return self.member[model_index]

    def mask_from_ids(self, block_ids: Iterable[int]) -> np.ndarray:
        """``(B,)`` bool mask from explicit block ids."""
        mask = self.empty_mask()
        positions = [self.block_pos[b] for b in block_ids]
        if positions:
            mask[positions] = True
        return mask

    def ids_from_mask(self, mask: np.ndarray) -> FrozenSet[int]:
        """Block ids set by a ``(B,)`` mask (round-trip helper)."""
        return frozenset(int(b) for b in self.block_ids[mask])

    # ------------------------------------------------------------------
    def marginal_size(self, model_index: int, cached_mask: np.ndarray) -> int:
        """Bytes needed to add one model on top of ``cached_mask``."""
        return int((self.member[model_index] & ~cached_mask) @ self.sizes)

    def marginal_sizes(self, cached_mask: np.ndarray) -> np.ndarray:
        """``(I,)`` int64 marginal bytes of *every* model at once."""
        return (self.member & ~cached_mask) @ self.sizes

    def union_size(self, model_indices: Iterable[int]) -> int:
        """Deduplicated footprint of a set of models (``g_m``)."""
        indices = list(model_indices)
        if not indices:
            return 0
        return int(self.sizes[self.member[indices].any(axis=0)].sum())

class ServerBlockCache:
    """Mutable per-server cached-block state for the greedy engines.

    Maintains, for each server:

    * ``masks[m]`` — ``(B,)`` bool: blocks currently cached;
    * ``used[m]`` — deduplicated bytes currently used;
    * ``extras[m]`` — ``(I,)`` int64: marginal bytes of every model.

    ``extras`` is updated *incrementally*: adding a model contributes only
    its newly cached blocks, and each model's marginal shrinks by exactly
    the sizes of the new blocks it contains. All arithmetic is integer,
    so the table is always exactly equal to a from-scratch recompute.
    """

    def __init__(self, index: BlockMaskIndex, num_servers: int) -> None:
        self.index = index
        self.masks = np.zeros((num_servers, index.num_blocks), dtype=bool)
        self.used = np.zeros(num_servers, dtype=np.int64)
        self.extras = np.tile(index.model_sizes, (num_servers, 1))

    @classmethod
    def from_placement(
        cls, index: BlockMaskIndex, placement_matrix: np.ndarray
    ) -> "ServerBlockCache":
        """A cache pre-loaded with an existing ``(M, I)`` placement.

        Replays every placed model through :meth:`add`; the resulting
        masks, usage and marginal tables are exactly what incremental
        construction would have produced (set union and integer sums are
        order-independent).
        """
        cache = cls(index, int(placement_matrix.shape[0]))
        for server, model_index in zip(*np.nonzero(placement_matrix)):
            cache.add(int(server), int(model_index))
        return cache

    def marginal(self, server: int, model_index: int) -> int:
        """Marginal bytes of one (server, model) pair — O(1) lookup."""
        return int(self.extras[server, model_index])

    def marginal_row(self, server: int) -> np.ndarray:
        """``(I,)`` marginal bytes on one server (a view; do not mutate)."""
        return self.extras[server]

    def add(self, server: int, model_index: int) -> int:
        """Cache a model's blocks on a server; returns the bytes added."""
        index = self.index
        positions = index.model_positions[model_index]
        if positions.size == 0:
            return 0
        mask_row = self.masks[server]
        already = mask_row[positions]
        mask_row[positions] = True
        if not already.any():
            # None of the blocks were cached: the delta is the model's
            # full overlap vector, precomputed on the index (identical
            # integers to the general path with ``already`` all false).
            added = int(index.model_sizes[model_index])
            self.extras[server] -= index.model_full_overlap[model_index]
            self.used[server] += added
            return added
        # Sizes of the newly cached blocks, zero where already cached:
        # every model containing one of the new blocks gets exactly that
        # much cheaper on this server.
        new_sizes = index.model_block_sizes[model_index] * ~already
        added = int(new_sizes.sum())
        if added:
            self.extras[server] -= index.model_member_cols[model_index] @ new_sizes
            self.used[server] += added
        return added
