"""Approximation-bound calculators (Theorems 2-3).

* :func:`spec_guarantee` — TrimCaching Spec's ``(1 - ε)/2`` factor.
* :func:`gamma_bound` — the Γ of Theorem 3: the largest number of
  placements any feasible solution can contain, which lower-bounds the
  Gen greedy as ``U(X) >= U(X*) / Γ``. Γ grows with the library and the
  server count, which is exactly why the Gen guarantee is not constant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.placement import PlacementInstance
from repro.errors import ConfigurationError


def spec_guarantee(epsilon: float) -> float:
    """The Spec approximation factor ``(1 - ε)/2`` (Theorem 2)."""
    if not 0 <= epsilon <= 1:
        raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
    return (1.0 - epsilon) / 2.0


def max_models_per_server(instance: PlacementInstance, server: int) -> int:
    """Upper bound on how many models one server can hold.

    Greedily packs models by increasing *specific* footprint, counting
    every shared block only once (for free after first use) — this
    over-estimates what fits, which is the safe direction for Γ.
    """
    capacity = int(instance.capacities[server])
    # Cheapest possible marginal cost of each model: its exclusive blocks
    # (every shared block might already be cached).
    library = instance.library
    shared = library.shared_block_ids
    specific_costs: List[int] = []
    for model_index in range(instance.num_models):
        blocks = instance.model_blocks[model_index]
        specific_costs.append(
            sum(instance.block_sizes[b] for b in blocks if b not in shared)
        )
    specific_costs.sort()
    count = 0
    used = 0
    for cost in specific_costs:
        if used + cost > capacity:
            break
        used += cost
        count += 1
    return count


def gamma_bound(instance: PlacementInstance) -> int:
    """Γ = max{|X| : g_m(X_m) <= Q_m ∀m} (Theorem 3), upper-bounded.

    Computed as the sum over servers of an optimistic per-server packing
    bound; the true Γ is at most this, so ``1 / gamma_bound`` is a valid
    (if loose) lower bound on the Gen greedy's approximation factor.
    """
    return int(
        sum(
            max_models_per_server(instance, server)
            for server in range(instance.num_servers)
        )
    )


def gen_guarantee(instance: PlacementInstance) -> float:
    """The 1/Γ factor of Theorem 3 for this instance (0 if Γ = 0)."""
    gamma = gamma_bound(instance)
    return 1.0 / gamma if gamma > 0 else 0.0
