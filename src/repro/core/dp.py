"""Algorithm 2 machinery: shared-block combinations and knapsack solvers.

The Spec solver decomposes each per-server sub-problem **P2.1m** into:

1. a traversal of *combinations of shared parameter blocks* ``N ∈ A``
   (:func:`enumerate_shared_combinations`), and
2. for each combination, a 0/1 knapsack over the eligible models' specific
   blocks within the capacity left after caching ``N``.

Four interchangeable knapsack backends are provided:

* :func:`knapsack_value_dp` — the paper's rounded DP over utility values
  (eq. 16/19): ``(1 - ε)``-optimal, polynomial in ``1/ε``;
* :func:`knapsack_weight_dp` — DP over quantised weights: exact up to the
  conservative ceiling of item sizes to the quantum;
* :func:`knapsack_branch_and_bound` — exact, no quantisation; the ε = 0
  reference used by the Fig. 6 optimality study and the test suite;
* :func:`knapsack_best_first` — the same exact search driven by a
  priority queue instead of depth-first recursion: it expands only nodes
  whose LP bound beats the incumbent, which collapses the node count on
  the wide-value instances that blow up the rounded DP.

:class:`ValueDpTables` memoises the capacity-independent part of the
rounded DP so a Spec solve that re-poses the same filtered sub-instance
across combinations and servers pays for the table fill once.
"""

from __future__ import annotations

import heapq
import itertools
import math
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SolverError
from repro.models.library import ModelLibrary


# ----------------------------------------------------------------------
# Shared-block combination enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedCombination:
    """One element ``N`` of the combination set ``A``.

    Attributes
    ----------
    blocks:
        The shared block ids cached by this combination.
    size_bytes:
        ``d_N``: total size of those blocks.
    """

    blocks: FrozenSet[int]
    size_bytes: int


def _distinct_shared_sets(library: ModelLibrary) -> List[FrozenSet[int]]:
    """Distinct non-empty per-model shared-block sets."""
    seen: Set[FrozenSet[int]] = set()
    for model_id in library.model_ids:
        shared = library.shared_blocks_of(model_id)
        if shared:
            seen.add(shared)
    return sorted(seen, key=lambda s: (len(s), sorted(s)))


def _group_nested_chains(
    shared_sets: Sequence[FrozenSet[int]],
) -> List[List[FrozenSet[int]]]:
    """Group shared sets into families of pairwise-overlapping sets.

    For layer-freezing libraries every family is a chain of nested
    prefixes of one root; the caller verifies nestedness.
    """
    parent = list(range(len(shared_sets)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for a, b in itertools.combinations(range(len(shared_sets)), 2):
        if shared_sets[a] & shared_sets[b]:
            union(a, b)
    groups: Dict[int, List[FrozenSet[int]]] = {}
    for index, shared in enumerate(shared_sets):
        groups.setdefault(find(index), []).append(shared)
    return [sorted(members, key=len) for members in groups.values()]


def _chains_are_nested(chain: Sequence[FrozenSet[int]]) -> bool:
    """Is ``chain`` (sorted by size) totally ordered by inclusion?"""
    for smaller, larger in zip(chain, chain[1:]):
        if not smaller <= larger:
            return False
    return True


#: Per-library memo of enumerated combination sets. Libraries are
#: logically immutable and compared by identity, so weak keying is exact;
#: entries vanish with their library. A sweep that shares one library
#: across topologies (the paper fixes the library) enumerates ``A`` once
#: instead of once per solve.
_COMBINATION_CACHE: "weakref.WeakKeyDictionary[ModelLibrary, Dict[Tuple[str, int], List[SharedCombination]]]" = (
    weakref.WeakKeyDictionary()
)


def enumerate_shared_combinations(
    library: ModelLibrary,
    mode: str = "auto",
    max_combinations: int = 1_000_000,
    cache: bool = True,
) -> List[SharedCombination]:
    """Build the combination set ``A`` for Algorithm 2.

    With ``cache=True`` (default) the result is memoised per library
    object (treat it as immutable — every built-in path does); pass
    ``cache=False`` to force a fresh enumeration, e.g. for benchmarking
    the pre-cache pipeline.

    Modes
    -----
    ``"exhaustive"``
        Every subset of the shared blocks — the paper's literal ``2^β``;
        only viable for tiny block counts (tests).
    ``"prefix"``
        Exploits the structure fine-tuning creates: per-model shared sets
        form nested chains (one per root/family), and a union of
        non-maximal prefixes of the *same* chain is never preferable, so
        ``A`` is the product over chains of (no prefix | one of its
        distinct prefixes). Raises :class:`SolverError` if the library's
        shared sets are not chain-structured.
    ``"auto"``
        ``"prefix"`` when the library is chain-structured, otherwise
        ``"exhaustive"``.

    Raises
    ------
    SolverError
        If the resulting ``A`` would exceed ``max_combinations``.
    """
    if mode not in ("auto", "prefix", "exhaustive"):
        raise SolverError(f"unknown combination mode {mode!r}")
    if cache:
        per_library = _COMBINATION_CACHE.setdefault(library, {})
        key = (mode, max_combinations)
        cached = per_library.get(key)
        if cached is None:
            cached = enumerate_shared_combinations(
                library, mode, max_combinations, cache=False
            )
            per_library[key] = cached
        return cached
    shared = sorted(library.shared_block_ids)
    if not shared:
        return [SharedCombination(frozenset(), 0)]

    def sized(blocks: FrozenSet[int]) -> SharedCombination:
        return SharedCombination(blocks, library.blocks_size(blocks))

    if mode in ("auto", "prefix"):
        shared_sets = _distinct_shared_sets(library)
        chains = _group_nested_chains(shared_sets)
        nested = all(_chains_are_nested(chain) for chain in chains)
        if not nested and mode == "prefix":
            raise SolverError(
                "library's shared blocks are not chain-structured; "
                "use mode='exhaustive'"
            )
        if nested:
            count = 1
            for chain in chains:
                count *= len(chain) + 1
                if count > max_combinations:
                    raise SolverError(
                        f"combination set would exceed {max_combinations} "
                        f"elements; the library is too general for Spec"
                    )
            combos: List[SharedCombination] = []
            choice_lists = [
                [frozenset()] + list(chain) for chain in chains
            ]
            for selection in itertools.product(*choice_lists):
                blocks = frozenset().union(*selection)
                combos.append(sized(blocks))
            return combos

    count = 2 ** len(shared)
    if count > max_combinations:
        raise SolverError(
            f"2^{len(shared)} shared-block subsets exceed {max_combinations}; "
            "the library is too general for exhaustive enumeration"
        )
    combos = []
    for r in range(len(shared) + 1):
        for subset in itertools.combinations(shared, r):
            combos.append(sized(frozenset(subset)))
    return combos


# ----------------------------------------------------------------------
# Knapsack backends
# ----------------------------------------------------------------------
def _validate_knapsack(
    values: Sequence[float], weights: Sequence[int], capacity: int
) -> None:
    if len(values) != len(weights):
        raise SolverError("values and weights must have equal length")
    if capacity < 0:
        raise SolverError(f"capacity must be non-negative, got {capacity}")
    if any(v < 0 for v in values):
        raise SolverError("knapsack values must be non-negative")
    if any(w < 0 for w in weights):
        raise SolverError("knapsack weights must be non-negative")


def knapsack_value_dp(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
    epsilon: float = 0.1,
    max_states: int = 5_000_000,
) -> Tuple[float, List[int]]:
    """The paper's rounded value-dimension DP (Algorithm 2, eq. 16/19).

    Values are rounded to integers ``⌊v / (ε · v_min)⌋`` (``v_min`` =
    smallest positive value), then ``T[w] = minimal weight achieving
    rounded value w`` is filled item by item. Guarantees total value at
    least ``(1 - ε)`` of the optimum.

    Each item's state sweep is one numpy slice-shift update (the shifted
    candidate row is materialised before the masked write, which gives
    exactly the 0/1 semantics of the seed's descending Python loop), and
    instead of a dense ``(items × states)`` take matrix the backtrack
    uses a compact per-item record of the improved state indices.
    Selections are bit-identical to the seed implementation (retained as
    :func:`repro.core.reference.reference_knapsack_value_dp`).

    Returns ``(true_value_of_selection, selected_indices)``.

    Raises
    ------
    SolverError
        If ``epsilon <= 0`` (use the exact backends instead) or the DP
        table would exceed ``max_states``.
    """
    _validate_knapsack(values, weights, capacity)
    if epsilon <= 0:
        raise SolverError("knapsack_value_dp requires epsilon > 0")
    items = [
        (index, float(values[index]), int(weights[index]))
        for index in range(len(values))
        if values[index] > 0 and weights[index] <= capacity
    ]
    if not items:
        return 0.0, []
    v_min = min(value for _, value, _ in items)
    unit = epsilon * v_min
    rounded = [max(1, int(math.floor(value / unit))) for _, value, _ in items]
    total_rounded = sum(rounded)
    if (total_rounded + 1) * len(items) > max_states:
        raise SolverError(
            f"value DP needs {(total_rounded + 1) * len(items)} states "
            f"(> {max_states}); increase epsilon or use another backend"
        )

    min_weight = np.full(total_rounded + 1, np.inf)
    min_weight[0] = 0.0
    # Per item: the state indices whose minimal weight this item improved
    # (all the backtrack needs — the compact form of the take matrix).
    improved_states: List[np.ndarray] = []
    reachable = 0
    for (_, _, weight), value_units in zip(items, rounded):
        reachable = min(reachable + value_units, total_rounded)
        shifted = min_weight[: reachable - value_units + 1] + weight
        segment = min_weight[value_units : reachable + 1]
        improved = shifted < segment
        np.copyto(segment, shifted, where=improved)
        improved_states.append(np.flatnonzero(improved) + value_units)

    best_units = int(np.flatnonzero(min_weight <= capacity)[-1])
    selected: List[int] = []
    units = best_units
    for item_pos in range(len(items) - 1, -1, -1):
        states = improved_states[item_pos]
        pos = int(np.searchsorted(states, units))
        if pos < len(states) and states[pos] == units:
            selected.append(items[item_pos][0])
            units -= rounded[item_pos]
    if units != 0:
        raise SolverError("value DP backtrack failed (internal error)")
    selected.reverse()
    true_value = float(sum(values[index] for index in selected))
    return true_value, selected


def knapsack_weight_dp(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
    quantum: int = 1_000_000,
    max_states: int = 50_000_000,
) -> Tuple[float, List[int]]:
    """DP over quantised weights: exact for the quantised instance.

    Item weights are *ceiled* to multiples of ``quantum`` (conservative:
    a returned selection always fits the true capacity). With byte-exact
    weights and ``quantum=1`` this is the textbook exact DP.
    """
    _validate_knapsack(values, weights, capacity)
    if quantum <= 0:
        raise SolverError(f"quantum must be positive, got {quantum}")
    cap_units = capacity // quantum
    items = [
        (index, float(values[index]), -(-int(weights[index]) // quantum))
        for index in range(len(values))
        if values[index] > 0
    ]
    items = [item for item in items if item[2] <= cap_units]
    if not items:
        return 0.0, []
    if (cap_units + 1) * len(items) > max_states:
        raise SolverError(
            f"weight DP needs {(cap_units + 1) * len(items)} states "
            f"(> {max_states}); increase the quantum"
        )
    best = np.zeros(cap_units + 1)
    take = np.zeros((len(items), cap_units + 1), dtype=bool)
    for item_pos, (_, value, weight_units) in enumerate(items):
        if weight_units == 0:
            # Fits for free after quantisation: always take.
            best += value
            take[item_pos, :] = True
            continue
        shifted = best[: cap_units + 1 - weight_units] + value
        segment = best[weight_units:]
        improved = shifted > segment
        segment[improved] = shifted[improved]
        take[item_pos, weight_units:] = improved
    units = int(np.argmax(best))
    selected = []
    for item_pos in range(len(items) - 1, -1, -1):
        if take[item_pos, units]:
            selected.append(items[item_pos][0])
            units -= items[item_pos][2]
    selected.reverse()
    true_value = float(sum(values[index] for index in selected))
    return true_value, selected


def knapsack_branch_and_bound(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
) -> Tuple[float, List[int]]:
    """Exact 0/1 knapsack via depth-first branch and bound.

    Items are explored in decreasing value density with the fractional
    (LP) relaxation as the pruning bound. Exponential worst case but fast
    at the sub-problem sizes Spec produces; the ε = 0 reference solver.
    """
    _validate_knapsack(values, weights, capacity)
    items = [
        (index, float(values[index]), int(weights[index]))
        for index in range(len(values))
        if values[index] > 0 and weights[index] <= capacity
    ]
    if not items:
        return 0.0, []
    items.sort(key=lambda item: item[1] / max(item[2], 1e-12), reverse=True)

    n = len(items)
    best_value = 0.0
    best_set: List[int] = []
    chosen: List[int] = []

    def bound(position: int, value: float, remaining: int) -> float:
        upper = value
        for idx in range(position, n):
            _, item_value, item_weight = items[idx]
            if item_weight <= remaining:
                upper += item_value
                remaining -= item_weight
            else:
                if item_weight > 0:
                    upper += item_value * remaining / item_weight
                break
        return upper

    def dfs(position: int, value: float, remaining: int) -> None:
        nonlocal best_value, best_set
        if value > best_value:
            best_value = value
            best_set = list(chosen)
        if position == n:
            return
        if bound(position, value, remaining) <= best_value + 1e-12:
            return
        index, item_value, item_weight = items[position]
        if item_weight <= remaining:
            chosen.append(index)
            dfs(position + 1, value + item_value, remaining - item_weight)
            chosen.pop()
        dfs(position + 1, value, remaining)

    dfs(0, 0.0, capacity)
    return best_value, sorted(best_set)


def knapsack_best_first(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
    max_nodes: int = 1_000_000,
) -> Tuple[float, List[int]]:
    """Exact 0/1 knapsack via best-first branch and bound.

    Explores the same include-first decision tree as
    :func:`knapsack_branch_and_bound` (items in decreasing value density,
    fractional LP relaxation as the bound) but pops nodes from a priority
    queue ordered by bound instead of recursing depth-first. Only nodes
    whose bound exceeds the optimum are ever expanded, so the node count
    collapses on instances where depth-first churns — exactly the
    wide-value-spread instances that overflow the rounded value DP.

    The queue is tie-broken on the DFS preorder path (include = 0 sorts
    before exclude = 1), and the incumbent keeps the preorder-earliest
    achiever of the maximal value, so equal-value optima resolve to the
    *same* selection the depth-first reference returns. The one
    theoretical divergence is the DFS's ``1e-12`` pruning slack, which
    can make it miss an improvement smaller than ``1e-12`` absolute that
    this backend finds; no generic float instance exercises that corner
    (the equivalence tests pin the two backends selection-identical).

    Raises
    ------
    SolverError
        If more than ``max_nodes`` nodes are expanded. Exact 0/1
        knapsack is exponential in the worst case; the Spec fallback
        chain catches the budget overrun and drops to the quantised DP.
    """
    _validate_knapsack(values, weights, capacity)
    items = [
        (index, float(values[index]), int(weights[index]))
        for index in range(len(values))
        if values[index] > 0 and weights[index] <= capacity
    ]
    if not items:
        return 0.0, []
    items.sort(key=lambda item: item[1] / max(item[2], 1e-12), reverse=True)
    n = len(items)

    def bound(position: int, value: float, remaining: int) -> float:
        upper = value
        for idx in range(position, n):
            _, item_value, item_weight = items[idx]
            if item_weight <= remaining:
                upper += item_value
                remaining -= item_weight
            else:
                if item_weight > 0:
                    upper += item_value * remaining / item_weight
                break
        return upper

    best_value = 0.0
    best_set: Tuple[int, ...] = ()
    # Sentinel larger than every real path (paths start with 0 or 1).
    best_path: Tuple[int, ...] = (2,)
    expanded = 0
    # Heap entry: (-bound, preorder path, position, value, remaining,
    # chosen original indices). Python's tuple comparison gives us
    # best-bound-first with preorder tie-breaks for free.
    root = (-bound(0, 0.0, capacity), (), 0, 0.0, capacity, ())
    heap: List[Tuple[float, Tuple[int, ...], int, float, int, Tuple[int, ...]]] = [root]
    while heap:
        neg_bound, path, position, value, remaining, chosen = heapq.heappop(heap)
        node_bound = -neg_bound
        # The heap pops in (bound desc, preorder) order, so once the top
        # cannot strictly improve — or can at best tie at a later
        # preorder position — nothing below it can either.
        if node_bound < best_value or (
            node_bound == best_value and path > best_path
        ):
            break
        if value > best_value or (value == best_value and path < best_path):
            best_value = value
            best_set = chosen
            best_path = path
        if position == n:
            continue
        expanded += 1
        if expanded > max_nodes:
            raise SolverError(
                f"best-first knapsack expanded more than {max_nodes} nodes; "
                "use a DP backend for this instance"
            )
        index, item_value, item_weight = items[position]
        if item_weight <= remaining:
            include_value = value + item_value
            include_remaining = remaining - item_weight
            heapq.heappush(
                heap,
                (
                    -bound(position + 1, include_value, include_remaining),
                    path + (0,),
                    position + 1,
                    include_value,
                    include_remaining,
                    chosen + (index,),
                ),
            )
        heapq.heappush(
            heap,
            (
                -bound(position + 1, value, remaining),
                path + (1,),
                position + 1,
                value,
                remaining,
                chosen,
            ),
        )
    return best_value, sorted(best_set)


#: Sentinel cached for filtered instances whose rounded table overflows
#: ``max_states`` — repeat calls re-raise without re-deriving the count.
_TABLE_BLOWN = "blown"


class ValueDpTables:
    """Memoised capacity-independent :func:`knapsack_value_dp` tables.

    The rounded table ``min_weight[units]`` depends only on the
    *filtered* item list (positive value, weight ≤ capacity) and
    ``epsilon`` — the capacity enters through the item filter and the
    final best-units/backtrack step, not the fill. Within one Spec solve
    the same filtered sub-instance recurs across combinations and
    servers (utilities only change for models whose demand an earlier
    placement already served), so keying the fill on the filtered
    ``(values, weights)`` bytes turns repeat calls into a backtrack.

    :meth:`solve` replicates ``knapsack_value_dp``'s arithmetic exactly —
    same rounding, same slice-shift fill, same backtrack, same
    ``true_value`` accumulation order — so selections are byte-identical
    (asserted by the equivalence tests).
    """

    def __init__(
        self,
        epsilon: float,
        max_states: int = 5_000_000,
        max_entries: int = 100_000,
    ) -> None:
        if epsilon <= 0:
            raise SolverError("ValueDpTables requires epsilon > 0")
        self.epsilon = epsilon
        self.max_states = max_states
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._tables: Dict[Tuple[bytes, bytes], tuple] = {}

    # ------------------------------------------------------------------
    def _fill(self, filtered_values: np.ndarray, filtered_weights: np.ndarray):
        """The capacity-independent part of ``knapsack_value_dp``."""
        count = filtered_values.shape[0]
        v_min = float(filtered_values.min())
        unit = self.epsilon * v_min
        ratio = np.floor(filtered_values / unit)
        # Beyond 2**53 the float ratios stop being the exact floors the
        # seed's integer arithmetic produces — but any such instance is
        # astronomically past max_states, so the blown marker is exact.
        if not np.all(np.isfinite(ratio)) or float(ratio.max()) >= 2.0**53:
            return (
                _TABLE_BLOWN,
                f"value DP needs more than {self.max_states} states; "
                "increase epsilon or use another backend",
            )
        rounded = np.maximum(ratio, 1.0).astype(np.int64).tolist()
        total_rounded = sum(rounded)
        if (total_rounded + 1) * count > self.max_states:
            return (
                _TABLE_BLOWN,
                f"value DP needs {(total_rounded + 1) * count} states "
                f"(> {self.max_states}); increase epsilon or use another backend",
            )
        min_weight = np.full(total_rounded + 1, np.inf)
        min_weight[0] = 0.0
        improved_states: List[np.ndarray] = []
        reachable = 0
        for weight, value_units in zip(filtered_weights.tolist(), rounded):
            reachable = min(reachable + value_units, total_rounded)
            shifted = min_weight[: reachable - value_units + 1] + weight
            segment = min_weight[value_units : reachable + 1]
            improved = shifted < segment
            np.copyto(segment, shifted, where=improved)
            improved_states.append(np.flatnonzero(improved) + value_units)
        return (min_weight, improved_states, rounded)

    # ------------------------------------------------------------------
    def solve(
        self, values: Sequence[float], weights: Sequence[int], capacity: int
    ) -> Tuple[float, List[int]]:
        """``knapsack_value_dp(values, weights, capacity)``, memoised.

        Raises :class:`SolverError` exactly when the uncached call
        would: negative inputs, mismatched lengths, or a rounded table
        past ``max_states``.
        """
        all_values = np.asarray(values, dtype=float)
        all_weights = np.asarray(weights, dtype=np.int64)
        if all_values.shape[0] != all_weights.shape[0]:
            raise SolverError("values and weights must have equal length")
        if capacity < 0:
            raise SolverError(f"capacity must be non-negative, got {capacity}")
        if all_values.size and float(all_values.min()) < 0:
            raise SolverError("knapsack values must be non-negative")
        if all_weights.size and int(all_weights.min()) < 0:
            raise SolverError("knapsack weights must be non-negative")
        keep = (all_values > 0) & (all_weights <= capacity)
        original = np.flatnonzero(keep)
        if original.size == 0:
            return 0.0, []
        filtered_values = np.ascontiguousarray(all_values[keep])
        filtered_weights = np.ascontiguousarray(all_weights[keep])
        key = (filtered_values.tobytes(), filtered_weights.tobytes())
        entry = self._tables.get(key)
        if entry is None:
            self.misses += 1
            entry = self._fill(filtered_values, filtered_weights)
            if len(self._tables) < self.max_entries:
                self._tables[key] = entry
        else:
            self.hits += 1
        if entry[0] is _TABLE_BLOWN:
            raise SolverError(entry[1])
        min_weight, improved_states, rounded = entry

        best_units = int(np.flatnonzero(min_weight <= capacity)[-1])
        selected_positions: List[int] = []
        units = best_units
        for item_pos in range(len(rounded) - 1, -1, -1):
            states = improved_states[item_pos]
            pos = int(np.searchsorted(states, units))
            if pos < len(states) and states[pos] == units:
                selected_positions.append(item_pos)
                units -= rounded[item_pos]
        if units != 0:
            raise SolverError("value DP backtrack failed (internal error)")
        selected_positions.reverse()
        selected = [int(original[position]) for position in selected_positions]
        true_value = float(sum(all_values[index] for index in selected))
        return true_value, selected


#: Backend registry used by the Spec solver.
KNAPSACK_BACKENDS = {
    "value_dp": knapsack_value_dp,
    "weight_dp": knapsack_weight_dp,
    "exact": knapsack_branch_and_bound,
    "best_first": knapsack_best_first,
}
