"""Exhaustive (optimal) search for small instances.

Used for the Fig. 6(a) optimality study and as the oracle in tests. Two
structural facts keep the search tractable:

* storage is monotone in the cached set, so infeasible subsets are pruned
  together with all their supersets during enumeration;
* the objective is monotone, so only *maximal* feasible per-server subsets
  can be optimal and the cross-server product is taken over those.

Complexity is still exponential (the paper quotes ``2^{M K I}`` for naive
search; ours enumerates ``∏_m |maximal subsets of m|``), so the solver
guards itself with explicit limits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import SolverError


class ExhaustiveSearch:
    """Exact optimum by enumerating maximal feasible per-server subsets.

    Parameters
    ----------
    max_subsets_per_server:
        Abort threshold for the per-server enumeration.
    max_product:
        Abort threshold for the cross-server combination count.
    """

    name = "Optimal (exhaustive)"

    def __init__(
        self,
        max_subsets_per_server: int = 200_000,
        max_product: int = 5_000_000,
    ) -> None:
        self.max_subsets_per_server = max_subsets_per_server
        self.max_product = max_product

    # ------------------------------------------------------------------
    def _feasible_subsets(
        self, instance: PlacementInstance, server: int
    ) -> List[FrozenSet[int]]:
        """All maximal feasible model subsets of one server."""
        capacity = int(instance.capacities[server])
        num_models = instance.num_models
        results: List[FrozenSet[int]] = []

        def extend(start: int, chosen: Set[int], blocks: Set[int], used: int) -> None:
            if len(results) > self.max_subsets_per_server:
                raise SolverError(
                    f"server {server} has more than "
                    f"{self.max_subsets_per_server} feasible subsets"
                )
            extended = False
            for model_index in range(start, num_models):
                extra = instance.marginal_storage(model_index, blocks)
                if used + extra <= capacity:
                    extended = True
                    chosen.add(model_index)
                    added = instance.model_blocks[model_index] - blocks
                    blocks |= added
                    extend(model_index + 1, chosen, blocks, used + extra)
                    blocks -= added
                    chosen.remove(model_index)
            if not extended:
                # No *later* model fits; the subset is maximal only if no
                # earlier model fits either.
                for model_index in range(0, start):
                    if model_index in chosen:
                        continue
                    if (
                        used + instance.marginal_storage(model_index, blocks)
                        <= capacity
                    ):
                        return
                results.append(frozenset(chosen))

        extend(0, set(), set(), 0)
        if not results:
            results.append(frozenset())
        return results

    # ------------------------------------------------------------------
    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Enumerate all maximal subset combinations; return the best."""
        start = time.perf_counter()
        per_server = [
            self._feasible_subsets(instance, server)
            for server in range(instance.num_servers)
        ]
        product = 1
        for subsets in per_server:
            product *= len(subsets)
            if product > self.max_product:
                raise SolverError(
                    f"exhaustive search would evaluate more than "
                    f"{self.max_product} combinations"
                )

        # served_masks[m][s] is the flattened (K*I,) boolean mask of
        # requests server m serves with subset s cached.
        demand_flat = instance.demand.reshape(-1)
        served_masks: List[np.ndarray] = []
        for server, subsets in enumerate(per_server):
            masks = np.zeros((len(subsets), instance.num_users * instance.num_models), dtype=bool)
            feas = instance.feasible[server]  # (K, I)
            for row, subset in enumerate(subsets):
                if not subset:
                    continue
                mask = np.zeros_like(feas)
                for model_index in subset:
                    mask[:, model_index] |= feas[:, model_index]
                masks[row] = mask.reshape(-1)
            served_masks.append(masks)

        best_mass = -1.0
        best_choice: List[int] = [0] * instance.num_servers

        def recurse(server: int, covered: np.ndarray, mass: float, choice: List[int]) -> None:
            nonlocal best_mass, best_choice
            if server == instance.num_servers - 1:
                residual = demand_flat * ~covered
                gains = served_masks[server] @ residual
                row = int(np.argmax(gains))
                if mass + gains[row] > best_mass:
                    best_mass = mass + float(gains[row])
                    best_choice = choice + [row]
                return
            for row, mask in enumerate(served_masks[server]):
                newly = demand_flat[~covered & mask].sum()
                recurse(
                    server + 1,
                    covered | mask,
                    mass + float(newly),
                    choice + [row],
                )

        recurse(0, np.zeros_like(demand_flat, dtype=bool), 0.0, [])

        placement = instance.new_placement()
        for server, row in enumerate(best_choice):
            for model_index in per_server[server][row]:
                placement.add(server, model_index)
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={
                "subsets_per_server": [len(s) for s in per_server],
                "combinations": product,
            },
        )


@dataclass(frozen=True)
class ExhaustiveConfig:
    """Typed constructor knobs of :class:`ExhaustiveSearch`.

    Registered in :data:`repro.api.SOLVERS` under ``"exhaustive"``.
    """

    max_subsets_per_server: int = 200_000
    max_product: int = 5_000_000

    def build(self) -> "ExhaustiveSearch":
        """Construct the solver (constructor performs validation)."""
        return ExhaustiveSearch(
            max_subsets_per_server=self.max_subsets_per_server,
            max_product=self.max_product,
        )
