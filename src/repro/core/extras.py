"""Extra baseline policies beyond the paper's comparison set.

These are not in the paper but are standard sanity baselines for caching
studies and useful in the examples: random feasible placement and
popularity-only top-k placement (cache the most requested models
everywhere, ignoring the radio feasibility structure).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Set

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import PlacementInstance
from repro.core.result import SolverResult
from repro.utils.rng import SeedLike, as_generator


class RandomPlacement:
    """Cache uniformly random models on each server until full."""

    name = "Random"

    def __init__(self, seed: SeedLike = None, deduplicate: bool = True) -> None:
        self.seed = seed
        self.deduplicate = deduplicate

    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Fill each server with a random feasible model subset."""
        start = time.perf_counter()
        rng = as_generator(self.seed)
        placement = instance.new_placement()
        for server in range(instance.num_servers):
            capacity = int(instance.capacities[server])
            used = 0
            blocks: Set[int] = set()
            for model_index in rng.permutation(instance.num_models):
                model_index = int(model_index)
                if self.deduplicate:
                    extra = instance.marginal_storage(model_index, blocks)
                else:
                    extra = int(instance.model_sizes[model_index])
                if used + extra <= capacity:
                    placement.add(server, model_index)
                    used += extra
                    blocks |= instance.model_blocks[model_index]
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
        )


class TopPopularityPlacement:
    """Cache globally most-popular models on every server (LFU-style)."""

    name = "Top popularity"

    def __init__(self, deduplicate: bool = True) -> None:
        self.deduplicate = deduplicate

    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Greedy by aggregate demand, identical set attempted per server."""
        start = time.perf_counter()
        popularity = instance.demand.sum(axis=0)
        order: List[int] = np.argsort(-popularity, kind="stable").tolist()
        placement = instance.new_placement()
        for server in range(instance.num_servers):
            capacity = int(instance.capacities[server])
            used = 0
            blocks: Set[int] = set()
            for model_index in order:
                if self.deduplicate:
                    extra = instance.marginal_storage(model_index, blocks)
                else:
                    extra = int(instance.model_sizes[model_index])
                if used + extra <= capacity:
                    placement.add(server, model_index)
                    used += extra
                    blocks |= instance.model_blocks[model_index]
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
        )


@dataclass(frozen=True)
class RandomConfig:
    """Typed constructor knobs of :class:`RandomPlacement`.

    Registered in :data:`repro.api.SOLVERS` under ``"random"``. ``seed``
    is restricted to JSON-safe values (int or None) so plans serialise.
    """

    seed: int = 0
    deduplicate: bool = True

    def build(self) -> "RandomPlacement":
        """Construct the solver."""
        return RandomPlacement(seed=self.seed, deduplicate=self.deduplicate)


@dataclass(frozen=True)
class TopPopularityConfig:
    """Typed constructor knobs of :class:`TopPopularityPlacement`.

    Registered in :data:`repro.api.SOLVERS` under ``"top-popularity"``.
    """

    deduplicate: bool = True

    def build(self) -> "TopPopularityPlacement":
        """Construct the solver."""
        return TopPopularityPlacement(deduplicate=self.deduplicate)
