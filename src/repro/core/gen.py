"""TrimCaching Gen — the paper's Algorithm 3 (general-case greedy).

Each step caches the (server, model) pair with the largest marginal
hit-ratio gain whose *deduplicated* marginal storage fits the server's
remaining capacity, repeating until nothing useful fits. Guarantee: 1/Γ of
optimal (Theorem 3) — not constant, matching Proposition 2.

Two implementations with provably identical output are provided:

* ``accelerated=False`` — the literal algorithm: re-scan all (m, i) pairs
  per step.
* ``accelerated=True`` (default) — lazy greedy: since ``U`` is submodular,
  a pair's previously computed gain upper-bounds its current gain, so a
  max-heap of stale gains avoids most re-evaluation. Pairs that currently
  do not fit are parked per server and revisited when that server's cached
  block set changes (the only event that can shrink their marginal size —
  the storage cost is submodular too).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.objective import CoverageTracker
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import ConfigurationError

# Gains are sums of non-negative products (demand x indicator), so a true
# zero gain is exactly 0.0 and strict comparisons need no epsilon floor.


class TrimCachingGen:
    """Algorithm 3: greedy placement for arbitrary parameter sharing.

    Parameters
    ----------
    accelerated:
        Use the lazy-greedy implementation (identical output, faster).
    fill_zero_gain:
        The paper's loop runs "until no server can cache any model", which
        would also cache models with zero marginal gain. Those placements
        never change ``U``; by default we stop early instead. Enable to
        mimic the literal stopping rule (useful as warm spare capacity).
    """

    name = "TrimCaching Gen"

    def __init__(self, accelerated: bool = True, fill_zero_gain: bool = False) -> None:
        self.accelerated = accelerated
        self.fill_zero_gain = fill_zero_gain

    # ------------------------------------------------------------------
    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Run the greedy until no (positive-gain) pair fits."""
        start = time.perf_counter()
        if self.accelerated:
            placement, steps = self._solve_lazy(instance)
        else:
            placement, steps = self._solve_naive(instance)
        if self.fill_zero_gain:
            self._fill_remaining(instance, placement)
        from repro.core.objective import hit_ratio  # local to avoid cycle at import

        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps, "accelerated": self.accelerated},
        )

    # ------------------------------------------------------------------
    def _solve_naive(self, instance: PlacementInstance) -> Tuple[Placement, int]:
        placement = instance.new_placement()
        tracker = CoverageTracker(instance)
        cached_blocks: List[Set[int]] = [set() for _ in range(instance.num_servers)]
        used = np.zeros(instance.num_servers, dtype=np.int64)
        steps = 0
        while True:
            gains = tracker.gain_matrix()
            gains[placement.matrix] = -1.0  # already placed
            best_gain = -1.0
            best_pair = None
            for server in range(instance.num_servers):
                remaining = int(instance.capacities[server] - used[server])
                if remaining < 0:
                    continue
                order = np.argsort(-gains[server], kind="stable")
                for model_index in order:
                    gain = gains[server, model_index]
                    if gain <= best_gain or gain <= 0.0:
                        break
                    extra = instance.marginal_storage(
                        int(model_index), cached_blocks[server]
                    )
                    if extra <= remaining:
                        best_gain = gain
                        best_pair = (server, int(model_index))
                        break
            if best_pair is None:
                break
            server, model_index = best_pair
            self._apply(
                instance, placement, tracker, cached_blocks, used, server, model_index
            )
            steps += 1
        return placement, steps

    # ------------------------------------------------------------------
    def _solve_lazy(self, instance: PlacementInstance) -> Tuple[Placement, int]:
        placement = instance.new_placement()
        tracker = CoverageTracker(instance)
        cached_blocks: List[Set[int]] = [set() for _ in range(instance.num_servers)]
        used = np.zeros(instance.num_servers, dtype=np.int64)

        initial = tracker.gain_matrix()
        heap: List[Tuple[float, int, int]] = []
        for server in range(instance.num_servers):
            for model_index in range(instance.num_models):
                gain = initial[server, model_index]
                if gain > 0.0:
                    heap.append((-gain, server, model_index))
        heapq.heapify(heap)
        # Pairs whose gain is current but whose marginal size does not fit;
        # keyed by server, revisited when that server's block set grows.
        parked: Dict[int, List[Tuple[float, int, int]]] = {
            m: [] for m in range(instance.num_servers)
        }
        steps = 0
        while heap:
            neg_gain, server, model_index = heapq.heappop(heap)
            if placement.contains(server, model_index):
                continue
            fresh = tracker.gain(server, model_index)
            if fresh <= 0.0:
                continue
            candidate = (-fresh, server, model_index)
            if heap and heap[0] < candidate:
                # Stale (or tied with a lower-index pair): re-queue with
                # the fresh key so ties break exactly like the naive scan.
                heapq.heappush(heap, candidate)
                continue
            extra = instance.marginal_storage(model_index, cached_blocks[server])
            if extra > instance.capacities[server] - used[server]:
                parked[server].append((-fresh, server, model_index))
                continue
            self._apply(
                instance, placement, tracker, cached_blocks, used, server, model_index
            )
            steps += 1
            # The server's block set grew: parked pairs may fit now.
            if parked[server]:
                for entry in parked[server]:
                    heapq.heappush(heap, entry)
                parked[server] = []
        return placement, steps

    # ------------------------------------------------------------------
    @staticmethod
    def _apply(
        instance: PlacementInstance,
        placement: Placement,
        tracker: CoverageTracker,
        cached_blocks: List[Set[int]],
        used: np.ndarray,
        server: int,
        model_index: int,
    ) -> None:
        extra = instance.marginal_storage(model_index, cached_blocks[server])
        placement.add(server, model_index)
        cached_blocks[server] |= instance.model_blocks[model_index]
        used[server] += extra
        tracker.mark_served(server, model_index)

    # ------------------------------------------------------------------
    def _fill_remaining(
        self, instance: PlacementInstance, placement: Placement
    ) -> None:
        """Literal stopping rule: keep caching (zero-gain) models while any fits."""
        cached_blocks: List[Set[int]] = []
        used = []
        for server in range(instance.num_servers):
            blocks: Set[int] = set()
            for model_index in placement.models_on(server):
                blocks |= instance.model_blocks[model_index]
            cached_blocks.append(blocks)
            used.append(instance.dedup_storage(placement.models_on(server)))
        for server in range(instance.num_servers):
            remaining = int(instance.capacities[server] - used[server])
            for model_index in range(instance.num_models):
                if placement.contains(server, model_index):
                    continue
                extra = instance.marginal_storage(model_index, cached_blocks[server])
                if extra <= remaining:
                    placement.add(server, model_index)
                    cached_blocks[server] |= instance.model_blocks[model_index]
                    remaining -= extra
