"""TrimCaching Gen — the paper's Algorithm 3 (general-case greedy).

Each step caches the (server, model) pair with the largest marginal
hit-ratio gain whose *deduplicated* marginal storage fits the server's
remaining capacity, repeating until nothing useful fits. Guarantee: 1/Γ of
optimal (Theorem 3) — not constant, matching Proposition 2.

Two implementations with provably identical output are provided, both
driven by the incremental :class:`~repro.core.objective.CoverageTracker`
(maintained gain matrix) and :class:`~repro.core.blockmask.
ServerBlockCache` (exact integer marginal-storage table):

* ``accelerated=False`` — the literal algorithm: re-scan all (m, i) pairs
  per step (per-server stable argsort, exactly the seed's scan order).
* ``accelerated=True`` (default) — the vectorised engine: a maintained
  ``(M, I)`` candidate-value matrix holds each pair's gain where the pair
  is unplaced, positive-gain and currently fits, and ``-1`` elsewhere.
  A step is one ``argmax`` over that matrix; placing (m, i) then only
  dirties row ``m`` (storage/remaining changed) and column ``i`` (gains
  changed), so the refresh is ``O(M + I)`` plus the tracker's ``O(M·K)``
  column update. ``np.argmax`` returns the first (row-major) maximiser —
  the same lowest-server-then-lowest-model tie-break as the literal scan.

The seed implementations are retained verbatim in
:mod:`repro.core.reference`; the equivalence tests assert bit-identical
placements against them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core import kernels
from repro.core.blockmask import ServerBlockCache
from repro.core.objective import CoverageTracker
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import ConfigurationError

# Gains are sums of non-negative products (demand x indicator), so a true
# zero gain is exactly 0.0 and strict comparisons need no epsilon floor.


def _check_engine(engine: str) -> None:
    """Fail at construction, not mid-solve inside a worker."""
    if engine not in ("dense", "sparse", "compiled", "auto"):
        raise ConfigurationError(
            f"engine must be dense|sparse|compiled|auto, got {engine!r}"
        )


class TrimCachingGen:
    """Algorithm 3: greedy placement for arbitrary parameter sharing.

    Parameters
    ----------
    accelerated:
        Use the vectorised argmax engine (identical output, faster).
    fill_zero_gain:
        The paper's loop runs "until no server can cache any model", which
        would also cache models with zero marginal gain. Those placements
        never change ``U``; by default we stop early instead. Enable to
        mimic the literal stopping rule (useful as warm spare capacity).
    """

    name = "TrimCaching Gen"

    def __init__(
        self,
        accelerated: bool = True,
        fill_zero_gain: bool = False,
        engine: str = "dense",
    ) -> None:
        _check_engine(engine)
        self.accelerated = accelerated
        self.fill_zero_gain = fill_zero_gain
        #: Coverage engine: ``"dense"`` (bit-pinned to the seed),
        #: ``"sparse"`` (O(nnz) CSR walks), ``"compiled"`` (Numba
        #: kernels when available, numpy otherwise) or ``"auto"``.
        self.engine = engine

    # ------------------------------------------------------------------
    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Run the greedy until no (positive-gain) pair fits."""
        from repro import obs

        start = time.perf_counter()
        with obs.span("solve.gen", engine=self.engine) as handle:
            if self.accelerated:
                placement, steps, tracker = self._solve_vectorized(instance)
            else:
                placement, steps, tracker = self._solve_naive(instance)
            handle["steps"] = steps
        obs.count("repro_solver_greedy_steps_total", steps)
        if self.fill_zero_gain:
            self._fill_remaining(instance, placement)
            from repro.core.objective import hit_ratio  # local: import cycle

            # Zero-gain filler changes `served` (zero-demand users), so
            # recompute from the final placement.
            ratio = hit_ratio(instance, placement)
        else:
            # The tracker's served matrix is exactly the placement's
            # served matrix, so its ratio equals a full recompute.
            ratio = tracker.hit_ratio()
        return SolverResult(
            placement=placement,
            hit_ratio=ratio,
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps, "accelerated": self.accelerated},
        )

    # ------------------------------------------------------------------
    def _solve_naive(
        self, instance: PlacementInstance
    ) -> Tuple[Placement, int, CoverageTracker]:
        placement = instance.new_placement()
        tracker = CoverageTracker(instance, engine=self.engine)
        cache = ServerBlockCache(instance.block_index, instance.num_servers)
        steps = 0
        while True:
            gains = tracker.gain_matrix()
            gains[placement.matrix] = -1.0  # already placed
            best_gain = -1.0
            best_pair = None
            for server in range(instance.num_servers):
                remaining = int(instance.capacities[server] - cache.used[server])
                extras = cache.marginal_row(server)
                if remaining == 0 and not np.any(
                    (extras == 0) & (gains[server] > 0.0)
                ):
                    # Full server: only a zero-marginal (fully shared)
                    # model could still be cached — skip only when none
                    # qualifies, it is legal to cache at exact capacity.
                    continue
                order = np.argsort(-gains[server], kind="stable")
                for model_index in order:
                    gain = gains[server, model_index]
                    if gain <= best_gain or gain <= 0.0:
                        break
                    if extras[model_index] <= remaining:
                        best_gain = gain
                        best_pair = (server, int(model_index))
                        break
            if best_pair is None:
                break
            server, model_index = best_pair
            placement.add(server, model_index)
            cache.add(server, model_index)
            tracker.mark_served(server, model_index)
            steps += 1
        return placement, steps, tracker

    # ------------------------------------------------------------------
    def _solve_vectorized(
        self, instance: PlacementInstance
    ) -> Tuple[Placement, int, CoverageTracker]:
        from repro import obs

        placement = instance.new_placement()
        with obs.span("solve.gen.tracker_init", engine=self.engine):
            tracker = CoverageTracker(instance, engine=self.engine)
        cache = ServerBlockCache(instance.block_index, instance.num_servers)
        gains = tracker.gain_matrix_view()
        extras = cache.extras
        remaining = instance.capacities.astype(np.int64)[:, None].copy()
        placed = placement.matrix
        num_models = instance.num_models

        # Every step is one masked argmax: pairs that fit keep their gain,
        # the rest read as -1. Placed pairs need no mask of their own —
        # marking (m, i) served zeroes gains[m, i] exactly (every product
        # in its column refresh is 0.0), so `> 0` can never re-select
        # them; the final scalar check stops when no fitting pair has
        # positive gain. np.argmax takes the first (row-major) maximiser,
        # i.e. lowest server then lowest model among exact ties — the
        # literal scan's tie-break.
        fit = np.empty(extras.shape, dtype=bool)
        value = np.empty(extras.shape)
        # The compiled argmax is comparison-only, so its index matches
        # the numpy masked argmax bit-for-bit (same first-maximiser
        # tie-break); the numpy fallback IS the inline expression below.
        use_kernels = kernels.prefers_compiled(self.engine)
        steps = 0
        # One span brackets the whole loop (a per-step span would cost
        # more than the masked argmax it measures).
        with obs.span("solve.gen.greedy"):
            while True:
                if use_kernels:
                    flat = kernels.masked_argmax(
                        gains, extras, remaining, fit, value
                    )
                else:
                    np.less_equal(extras, remaining, out=fit)
                    value.fill(-1.0)
                    np.copyto(value, gains, where=fit)
                    flat = int(np.argmax(value))
                server, model_index = divmod(flat, num_models)
                if (
                    gains[server, model_index] <= 0.0
                    or extras[server, model_index] > remaining[server, 0]
                ):
                    break
                placed[server, model_index] = True
                remaining[server, 0] -= cache.add(server, model_index)
                tracker.mark_served(server, model_index)
                steps += 1
        return placement, steps, tracker

    # ------------------------------------------------------------------
    def _fill_remaining(
        self, instance: PlacementInstance, placement: Placement
    ) -> None:
        """Literal stopping rule: keep caching (zero-gain) models while any fits.

        Runs on :class:`ServerBlockCache` marginal tables instead of the
        former Python-set walk; all arithmetic is exact integers, so the
        filled placements are identical to the set-based version.
        """
        cache = ServerBlockCache.from_placement(
            instance.block_index, placement.matrix
        )
        for server in range(instance.num_servers):
            remaining = int(instance.capacities[server] - cache.used[server])
            extras = cache.marginal_row(server)  # updated in place by add()
            for model_index in range(instance.num_models):
                if placement.contains(server, model_index):
                    continue
                if extras[model_index] <= remaining:
                    placement.add(server, model_index)
                    remaining -= cache.add(server, model_index)


@dataclass(frozen=True)
class GenConfig:
    """Typed constructor knobs of :class:`TrimCachingGen`.

    Registered in :data:`repro.api.SOLVERS` under ``"gen"``; declarative
    plans carry this dataclass instead of a constructed solver so they
    stay JSON-serialisable.
    """

    accelerated: bool = True
    fill_zero_gain: bool = False
    engine: str = "dense"

    def build(self) -> "TrimCachingGen":
        """Construct the solver (constructor performs validation)."""
        return TrimCachingGen(
            accelerated=self.accelerated,
            fill_zero_gain=self.fill_zero_gain,
            engine=self.engine,
        )
