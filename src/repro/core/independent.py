"""Independent Caching — the content-placement baseline (paper §VII).

Classic edge content placement treats each model as an opaque file: a
cached model always occupies its *full* size ``D_i`` (knapsack storage
constraints), so shared parameter blocks are stored once per model rather
than once per server. The placement objective and greedy rule are exactly
TrimCaching Gen's; only the storage accounting differs — which isolates
the benefit of parameter sharing, as the paper intends.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.core.objective import CoverageTracker, hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult

# Gains are sums of non-negative products, so zero gain is exactly 0.0.


class IndependentCaching:
    """Greedy content placement without parameter-sharing awareness."""

    name = "Independent Caching"

    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Greedy: best (server, model) pair under knapsack storage."""
        start = time.perf_counter()
        placement = instance.new_placement()
        tracker = CoverageTracker(instance)
        remaining = instance.capacities.astype(np.int64).copy()
        steps = 0
        while True:
            gains = tracker.gain_matrix()
            gains[placement.matrix] = -1.0
            # A model fits iff its full size fits the remaining capacity.
            fits = instance.model_sizes[None, :] <= remaining[:, None]
            gains[~fits] = -1.0
            flat = int(np.argmax(gains))
            server, model_index = divmod(flat, instance.num_models)
            if gains[server, model_index] <= 0.0:
                break
            placement.add(server, model_index)
            remaining[server] -= int(instance.model_sizes[model_index])
            tracker.mark_served(server, model_index)
            steps += 1
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps},
        )
