"""Independent Caching — the content-placement baseline (paper §VII).

Classic edge content placement treats each model as an opaque file: a
cached model always occupies its *full* size ``D_i`` (knapsack storage
constraints), so shared parameter blocks are stored once per model rather
than once per server. The placement objective and greedy rule are exactly
TrimCaching Gen's; only the storage accounting differs — which isolates
the benefit of parameter sharing, as the paper intends.

The solver runs on the same masked-argmax engine as
:class:`~repro.core.gen.TrimCachingGen`: the maintained
:class:`~repro.core.objective.CoverageTracker` gain matrix is read in
place (no per-step copy), a step is one ``argmax`` over the
where-it-fits-else ``-1`` candidate matrix, and placed pairs need no mask
because marking them served zeroes their gain exactly. ``np.argmax``
returns the first row-major maximiser — the same lowest-server-then-
lowest-model tie-break as the seed's per-step rescan, whose
implementation is retained verbatim as
:class:`~repro.core.reference.ReferenceIndependent` and pinned byte-
identical by the equivalence tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.objective import CoverageTracker, hit_ratio
from repro.core.placement import PlacementInstance
from repro.core.result import SolverResult

# Gains are sums of non-negative products, so zero gain is exactly 0.0.


class IndependentCaching:
    """Greedy content placement without parameter-sharing awareness.

    Parameters
    ----------
    engine:
        Coverage engine: ``"dense"`` (bit-pinned to the seed),
        ``"sparse"`` (O(nnz) CSR walks), ``"compiled"`` (Numba kernels
        when available, numpy otherwise) or ``"auto"``.
    """

    name = "Independent Caching"

    def __init__(self, engine: str = "dense") -> None:
        from repro.core.gen import _check_engine

        _check_engine(engine)
        self.engine = engine

    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Greedy: best (server, model) pair under knapsack storage."""
        start = time.perf_counter()
        placement = instance.new_placement()
        tracker = CoverageTracker(instance, engine=self.engine)
        gains = tracker.gain_matrix_view()
        sizes = instance.model_sizes
        remaining = instance.capacities.astype(np.int64)[:, None].copy()
        placed = placement.matrix
        num_models = instance.num_models

        # One masked argmax per step: pairs whose full model size fits
        # keep their gain, the rest read as -1. Placed pairs are exactly
        # 0.0 after mark_served, so `> 0` can never re-select them; the
        # final scalar check stops when no fitting pair gains anything.
        fit = np.empty((instance.num_servers, num_models), dtype=bool)
        value = np.empty(fit.shape)
        use_kernels = kernels.prefers_compiled(self.engine)
        steps = 0
        while True:
            if use_kernels:
                flat = kernels.masked_argmax(gains, sizes, remaining, fit, value)
            else:
                np.less_equal(sizes[None, :], remaining, out=fit)
                value.fill(-1.0)
                np.copyto(value, gains, where=fit)
                flat = int(np.argmax(value))
            server, model_index = divmod(flat, num_models)
            if (
                gains[server, model_index] <= 0.0
                or sizes[model_index] > remaining[server, 0]
            ):
                break
            placed[server, model_index] = True
            remaining[server, 0] -= int(sizes[model_index])
            tracker.mark_served(server, model_index)
            steps += 1
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps},
        )


@dataclass(frozen=True)
class IndependentConfig:
    """Typed constructor knobs of :class:`IndependentCaching`.

    Registered in :data:`repro.api.SOLVERS` under ``"independent"``.
    """

    engine: str = "dense"

    def build(self) -> "IndependentCaching":
        """Construct the solver (constructor performs validation)."""
        return IndependentCaching(engine=self.engine)
