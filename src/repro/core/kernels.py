"""Optional compiled kernels behind the solvers' ``engine="compiled"``.

Three inner loops dominate solver wall-clock now that the surrounding
machinery is vectorised:

* the dense per-column gain refresh in
  :meth:`~repro.core.objective.CoverageTracker.mark_served` — an
  ``O(M·K)`` einsum over a column view per placement step;
* the sparse ``O(nnz)`` fold over a CSR column (a ``np.bincount``);
* the masked argmax that picks the next greedy pair in
  :class:`~repro.core.gen.TrimCachingGen` and
  :class:`~repro.core.independent.IndependentCaching`.

Each has two implementations:

* a Numba ``@njit`` version, compiled on import when numba is installed
  (:data:`HAVE_NUMBA`), with ``fastmath`` left OFF so the float
  accumulation stays strict IEEE;
* a pure-numpy fallback that is literally the numpy expression the
  dense/sparse engines run, so ``engine="compiled"`` works — and is
  tested — on a dependency-free install.

Bit discipline: the sparse fold and the masked argmax are sequential
and comparison-only respectively, so their jitted results equal the
numpy ops bit-for-bit. The jitted *dense* gain kernel reduces in
sequential order while ``np.einsum`` may use partial accumulators, so
its gains can differ from the einsum in final ulps — hence, exactly
like the sparse engine in PR 2, the compiled engine is pinned at the
*placement* level by the equivalence suite rather than bit-by-bit
through the gains. Numba itself stays an optional dependency: nothing
in the repo imports it unconditionally.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the dependency-free default
    numba = None
    HAVE_NUMBA = False


def prefers_compiled(engine: str) -> bool:
    """Should ``engine`` route through the compiled kernels?

    ``"compiled"`` always does (numpy fallbacks when numba is absent);
    ``"auto"`` prefers them exactly when the numba import succeeded.
    """
    return engine == "compiled" or (engine == "auto" and HAVE_NUMBA)


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=False, nogil=True)
    def _dense_column_gains_jit(feasible_column, weighted_column, out):
        num_servers, num_users = feasible_column.shape
        for server in range(num_servers):
            acc = 0.0
            for user in range(num_users):
                if feasible_column[server, user]:
                    acc += weighted_column[user]
            out[server] = acc

    @numba.njit(cache=False, nogil=True)
    def _sparse_column_gains_jit(servers, users, weighted_column, out):
        out[:] = 0.0
        for entry in range(servers.shape[0]):
            out[servers[entry]] += weighted_column[users[entry]]

    @numba.njit(cache=False, nogil=True)
    def _masked_argmax_extras_jit(gains, extras, remaining):
        num_servers, num_models = gains.shape
        best = -1.0
        best_flat = 0
        for server in range(num_servers):
            budget = remaining[server]
            for model in range(num_models):
                if extras[server, model] <= budget:
                    value = gains[server, model]
                else:
                    value = -1.0
                if value > best:
                    best = value
                    best_flat = server * num_models + model
        return best_flat

    @numba.njit(cache=False, nogil=True)
    def _masked_argmax_sizes_jit(gains, sizes, remaining):
        num_servers, num_models = gains.shape
        best = -1.0
        best_flat = 0
        for server in range(num_servers):
            budget = remaining[server]
            for model in range(num_models):
                if sizes[model] <= budget:
                    value = gains[server, model]
                else:
                    value = -1.0
                if value > best:
                    best = value
                    best_flat = server * num_models + model
        return best_flat


def dense_column_gains(
    feasible_column: np.ndarray, weighted_column: np.ndarray, out: np.ndarray
) -> None:
    """``out[m] = Σ_k feasible[m, k] · weighted[k]`` for one model column.

    The ``CoverageTracker`` dense refresh: ``feasible_column`` is the
    ``(M, K)`` bool view ``instance.feasible[:, :, i]``, ``out`` the
    ``(M,)`` gain-column view being refreshed in place.
    """
    if HAVE_NUMBA:
        _dense_column_gains_jit(feasible_column, weighted_column, out)
    else:
        np.einsum("mk,k->m", feasible_column, weighted_column, out=out)


def sparse_column_gains(
    servers: np.ndarray,
    users: np.ndarray,
    weighted_column: np.ndarray,
    out: np.ndarray,
) -> None:
    """The sparse column fold: ``out[servers[e]] += weighted[users[e]]``.

    Both implementations accumulate in entry order — the jitted loop is
    bit-identical to ``np.bincount`` with weights.
    """
    if HAVE_NUMBA:
        _sparse_column_gains_jit(servers, users, weighted_column, out)
    else:
        out[:] = np.bincount(
            servers, weights=weighted_column[users], minlength=out.shape[0]
        )


def masked_argmax(
    gains: np.ndarray,
    extras: np.ndarray,
    remaining: np.ndarray,
    fit: np.ndarray,
    value: np.ndarray,
) -> int:
    """First row-major maximiser of ``where(extras <= remaining, gains, -1)``.

    The greedy step shared by Gen (``extras`` is the ``(M, I)`` marginal
    storage table) and Independent Caching (``extras`` is the ``(I,)``
    full model sizes); ``remaining`` is the ``(M, 1)`` per-server budget
    column. ``fit``/``value`` are the caller's scratch buffers, used
    only by the numpy fallback. Comparison-only, so jitted and numpy
    paths return the same index bit-for-bit.
    """
    if HAVE_NUMBA:
        if extras.ndim == 1:
            return int(_masked_argmax_sizes_jit(gains, extras, remaining[:, 0]))
        return int(_masked_argmax_extras_jit(gains, extras, remaining[:, 0]))
    np.less_equal(extras if extras.ndim == 2 else extras[None, :], remaining, out=fit)
    value.fill(-1.0)
    np.copyto(value, gains, where=fit)
    return int(np.argmax(value))
