"""Objective ``U(X)`` (eq. 2), storage cost ``g_m`` (eq. 7), feasibility.

Also provides :class:`CoverageTracker`, the incremental-evaluation engine
shared by the greedy solvers: it maintains which (user, model) requests are
already served and answers marginal-gain queries in vectorised form. The
tracker has two engines over the same state:

* ``"dense"`` (default) — column refreshes run the einsum kernel on
  column views, bit-identical to the frozen seed's from-scratch
  recompute (:mod:`repro.core.reference`);
* ``"sparse"`` — column refreshes walk only the CSR nonzeros, ``O(nnz)``
  instead of ``O(M·K)``.

:func:`served_matrix` picks the O(nnz) walk automatically whenever the
instance carries the CSR artifact — boolean output, so the sparse walk is
*exactly* the dense einsum's result, not merely close.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core import kernels
from repro.core.placement import Placement, PlacementInstance
from repro.errors import PlacementError


def _check_shapes(instance: PlacementInstance, placement: Placement) -> None:
    expected = (instance.num_servers, instance.num_models)
    if placement.matrix.shape != expected:
        raise PlacementError(
            f"placement shape {placement.matrix.shape} does not match instance {expected}"
        )


def served_matrix(
    instance: PlacementInstance,
    placement: Placement,
    feasible: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(K, I)`` boolean: is request (k, i) served by some server?

    ``feasible`` overrides the instance's ``I1`` tensor (used when
    evaluating a placement under faded rates instead of expected rates).
    Without an override, a sparse-primary instance is walked in O(nnz)
    via its CSR artifact; the result is exactly the dense einsum's.
    """
    _check_shapes(instance, placement)
    if feasible is None:
        if instance.has_sparse or instance.is_sparse_primary:
            return instance.sparse_feasible.served_matrix(placement.matrix)
        feas = instance.feasible
    else:
        feas = feasible
        if feas.shape != instance.feasible_shape:
            raise PlacementError(
                f"feasibility tensor must have shape {instance.feasible_shape}"
            )
    # served[k, i] = OR_m (x[m, i] AND I1[m, k, i])
    return np.einsum("mki,mi->ki", feas, placement.matrix) > 0


def hit_ratio(
    instance: PlacementInstance,
    placement: Placement,
    feasible: Optional[np.ndarray] = None,
) -> float:
    """The expected cache hit ratio ``U(X)`` of eq. (2)."""
    served = served_matrix(instance, placement, feasible)
    return float((instance.demand * served).sum() / instance.total_demand)


def storage_used(instance: PlacementInstance, placement: Placement, server: int) -> int:
    """Deduplicated bytes used on ``server``: ``g_m(X_m)`` of eq. (7)."""
    _check_shapes(instance, placement)
    return instance.dedup_storage(placement.models_on(server))


def independent_storage_used(
    instance: PlacementInstance, placement: Placement, server: int
) -> int:
    """Bytes used on ``server`` when models are stored without sharing."""
    _check_shapes(instance, placement)
    return int(sum(instance.model_sizes[i] for i in placement.models_on(server)))


def placement_is_feasible(
    instance: PlacementInstance,
    placement: Placement,
    *,
    deduplicate: bool = True,
) -> bool:
    """Does the placement respect every server's capacity?

    ``deduplicate=False`` applies the Independent-Caching storage
    accounting (full model sizes, knapsack constraint).
    """
    for server in range(instance.num_servers):
        if deduplicate:
            used = storage_used(instance, placement, server)
        else:
            used = independent_storage_used(instance, placement, server)
        if used > instance.capacities[server]:
            return False
    return True


class CoverageTracker:
    """Incremental coverage bookkeeping for greedy solvers.

    Tracks which (user, model) requests are currently served and exposes:

    * :meth:`gain` — marginal hit-probability mass of adding (m, i);
    * :meth:`gain_matrix` — all marginal gains at once, shape ``(M, I)``;
    * :meth:`mark_served` — update after a placement step.

    All gains are *unnormalised* (probability mass, not ratio); divide by
    ``instance.total_demand`` to convert.

    The ``(M, I)`` gain matrix is *maintained* rather than recomputed:
    caching (m, i) only changes column ``i`` (the users it newly serves
    stop counting toward every server that could reach them), so
    :meth:`mark_served` refreshes that one column instead of running the
    full ``O(M·K·I)`` einsum. Two refresh engines are available:

    ``engine="dense"`` (default)
        ``O(M·K)`` per refresh; runs the same einsum kernel on column
        *views* of the same arrays the full recompute would use
        (identical dtypes and stride patterns, hence identical
        accumulation order), which keeps the maintained matrix
        bit-identical to the seed's from-scratch recompute — greedy
        tie-breaking is unaffected. Enforced by the equivalence tests
        against :mod:`repro.core.reference`, which assert exact equality.

    ``engine="sparse"``
        ``O(nnz of the column)`` per refresh via the instance's CSR
        artifact (a bincount over the column's feasible entries). The
        ``served``/``unserved_demand`` state stays *exactly* equal to the
        dense engine's (boolean updates and exact zeroing only), but the
        gain sums reduce fewer terms than the einsum and may differ from
        it in final ulps — so greedy placements are pinned to the seed at
        the placement level (empirically identical on the equivalence
        grids) rather than bit-by-bit through the gains.

    ``engine="compiled"``
        The same refresh routed through :mod:`repro.core.kernels`:
        Numba-jitted loops when numba is installed, the engines' own
        numpy expressions otherwise. The state layout follows what the
        instance would pick anyway (CSR fold for sparse-primary, column
        kernel otherwise). The jitted sparse fold is bit-identical to
        the bincount; the jitted dense kernel may differ from the
        einsum in final ulps, so compiled placements are pinned at the
        placement level exactly like the sparse engine's.

    ``engine="auto"`` picks ``"compiled"`` when numba is importable,
    otherwise ``"sparse"`` for sparse-primary instances and ``"dense"``
    for the rest.
    """

    def __init__(self, instance: PlacementInstance, engine: str = "dense") -> None:
        if engine == "auto":
            if kernels.HAVE_NUMBA:
                engine = "compiled"
            else:
                engine = "sparse" if instance.is_sparse_primary else "dense"
        if engine not in ("dense", "sparse", "compiled"):
            raise PlacementError(
                f"engine must be dense|sparse|compiled|auto, got {engine!r}"
            )
        self.instance = instance
        self.engine = engine
        self._compiled = engine == "compiled"
        sparse_state = engine == "sparse" or (
            self._compiled and instance.is_sparse_primary
        )
        self.served = np.zeros(
            (instance.num_users, instance.num_models), dtype=bool
        )
        #: ``(K, I)`` demand mass not yet served, maintained per column.
        self._weighted = instance.demand * ~self.served
        # Flat alias of the same buffer (never rebound — all updates are
        # in place), for 1-D gathers against the CSR entry_flat_index.
        self._wflat = self._weighted.reshape(-1)
        if sparse_state:
            sparse = instance.sparse_feasible
            self._sparse = sparse
            num_servers = instance.num_servers
            self._gains = np.zeros(
                (num_servers, instance.num_models), dtype=float
            )
            for model_index in range(instance.num_models):
                servers, users = sparse.column_entries(model_index)
                self._gains[:, model_index] = np.bincount(
                    servers,
                    weights=self._weighted[users, model_index],
                    minlength=num_servers,
                )
        else:
            self._sparse = None
            self._gains = np.einsum(
                "mki,ki->mi", instance.feasible, self._weighted
            )

    def unserved_demand(self) -> np.ndarray:
        """``(K, I)`` demand mass not yet served."""
        return self._weighted.copy()

    def gain(self, server: int, model_index: int) -> float:
        """Marginal mass served by caching ``model_index`` on ``server``."""
        return float(self._gains[server, model_index])

    def gain_matrix(self) -> np.ndarray:
        """``(M, I)`` marginal masses for every (server, model) pair."""
        return self._gains.copy()

    def gain_matrix_view(self) -> np.ndarray:
        """The maintained ``(M, I)`` gain matrix itself (do not mutate)."""
        return self._gains

    def server_gains(self, server: int) -> np.ndarray:
        """``(I,)`` marginal masses for one server (the Spec sub-problem's
        ``u(m, i)`` values of eq. (14), with ``I2`` implicit in
        ``self.served``)."""
        return self._gains[server].copy()

    def _refresh_column(self, model_index: int) -> None:
        """Re-run this engine's exact gain kernel for one column.

        This is the single refresh primitive: :meth:`mark_served` and the
        demand-delta operations both end here, so a refreshed column is
        always the product of the same kernel (same accumulation order,
        same bits) as the initial build.
        """
        if self._sparse is not None:
            sparse = self._sparse
            if self._compiled:
                servers, users = sparse.column_entries(model_index)
                kernels.sparse_column_gains(
                    servers,
                    users,
                    self._weighted[:, model_index],
                    self._gains[:, model_index],
                )
                return
            # Same entries in the same order as the (servers, users)
            # column view, gathered flat (entry_flat_index[j] addresses
            # weighted[users[j], model_index]) — identical bincount input.
            num_servers = self.instance.num_servers
            start = sparse.pair_indptr[model_index * num_servers]
            stop = sparse.pair_indptr[(model_index + 1) * num_servers]
            self._gains[:, model_index] = np.bincount(
                sparse.entry_servers[start:stop],
                weights=self._wflat[sparse.entry_flat_index()[start:stop]],
                minlength=num_servers,
            )
            return
        if self._compiled:
            kernels.dense_column_gains(
                self.instance.feasible[:, :, model_index],
                self._weighted[:, model_index],
                self._gains[:, model_index],
            )
            return
        # Column views of the same arrays the full einsum would reduce:
        # same kernel, same accumulation order, same bits.
        self._gains[:, model_index] = np.einsum(
            "mk,k->m",
            self.instance.feasible[:, :, model_index],
            self._weighted[:, model_index],
        )

    def mark_served(self, server: int, model_index: int) -> None:
        """Record that (server, model) is now cached."""
        if self._sparse is not None:
            self._mark_served_sparse(server, model_index)
            return
        feas = self.instance.feasible[server, :, model_index]
        served_col = self.served[:, model_index]
        newly = feas > served_col  # feasible and not yet served
        if not newly.any():
            return
        served_col |= feas
        # Still-unserved entries keep their exact bits; newly served ones
        # become exactly 0.0 — identical to recomputing demand * ~served.
        self._weighted[:, model_index][newly] = 0.0
        self._refresh_column(model_index)

    def _mark_served_sparse(self, server: int, model_index: int) -> None:
        """O(column nnz) refresh over the CSR artifact."""
        sparse = self._sparse
        row = model_index * self.instance.num_servers + server
        start = sparse.pair_indptr[row]
        stop = sparse.pair_indptr[row + 1]
        if start == stop:
            return
        pair_users = sparse.entry_users[start:stop]
        # No all-served early-out: on the greedy path the chosen pair
        # always has positive gain (some pair user unserved), so the
        # check would be pure per-mark overhead; re-marking a fully
        # served pair just recomputes the same column bits.
        self.served[pair_users, model_index] = True
        # Same exact zeroing as the dense engine: newly served users'
        # remaining mass becomes exactly 0.0 (the flat indices address
        # exactly weighted[pair_users, model_index]).
        self._wflat[sparse.entry_flat_index()[start:stop]] = 0.0
        self._refresh_column(model_index)

    # ------------------------------------------------------------------
    # Delta operations (the serving layer's warm re-solve). The coverage
    # masks are demand-independent given the mark sequence — mark_served
    # marks every feasible user of the pair regardless of current demand —
    # so demand mutations only require re-syncing the unserved mass and
    # re-running the exact column kernel on the affected columns.

    def clone(self) -> "CoverageTracker":
        """An independent copy of the tracker state.

        The instance and CSR artifact are shared (read-only here); the
        ``served``/``unserved``/gain arrays are copied, so marks on the
        clone never touch the original. Bitwise, a clone is the tracker.
        """
        new = object.__new__(CoverageTracker)
        new.instance = self.instance
        new.engine = self.engine
        new._compiled = self._compiled
        new._sparse = self._sparse
        new.served = self.served.copy()
        new._weighted = self._weighted.copy()
        new._wflat = new._weighted.reshape(-1)
        new._gains = self._gains.copy()
        return new

    def refresh_columns(
        self, columns: Iterable[int], user: Optional[int] = None
    ) -> None:
        """Re-sync columns after ``instance.demand`` changed in place.

        Per column: ``weighted = demand * ~served`` recomputed elementwise
        (the constructor's expression, restricted to the column — still
        unserved entries get ``d * 1.0 == d`` bit-exactly, served ones
        ``d * 0.0 == +0.0``), then the engine's exact column kernel. The
        result equals a fresh tracker build on the mutated demand followed
        by replaying this tracker's mark sequence, bit for bit.

        ``user``, when given, promises that only that user's demand row
        changed: the elementwise resync is restricted to that row (the
        other rows' recompute would reproduce their bits unchanged).
        """
        demand = self.instance.demand
        if self._sparse is not None and not self._compiled:
            cols = np.asarray(columns, dtype=np.intp)
            if cols.size == 0:
                return
            # Batched form of the per-column loop below, one kernel run
            # for the whole column set. Bit-identical: the multiply is
            # elementwise, and np.bincount accumulates strictly in input
            # order, so concatenating the columns' CSR entries (each
            # column's order preserved) yields the same per-bin partial
            # sums as one bincount per column.
            if user is None:
                self._weighted[:, cols] = (
                    demand[:, cols] * ~self.served[:, cols]
                )
            else:
                self._weighted[user, cols] = (
                    demand[user, cols] * ~self.served[user, cols]
                )
            sparse = self._sparse
            num_servers = self.instance.num_servers
            # Each column's entries are one contiguous range of the CSR
            # arrays (sorted by (model, server, user)), so the per-column
            # concatenation is a union of ranges — built below as
            # cumsum-of-ones with jumps at range boundaries, skipping
            # empty columns.
            indptr = sparse.pair_indptr
            starts = indptr[cols * num_servers]
            lengths = indptr[(cols + 1) * num_servers] - starts
            total = int(lengths.sum())
            if total == 0:
                self._gains[:, cols] = 0.0
                return
            # pos[j] walks each column's contiguous entry range in order:
            # a global arange shifted per column so it starts at the
            # column's range start (columns with no entries contribute
            # nothing via the zero-length repeat).
            offsets = starts - np.cumsum(lengths) + lengths
            col_ids = np.repeat(np.arange(cols.size), lengths)
            pos = np.arange(total, dtype=np.int64) + offsets[col_ids]
            # One bincount over the global (model, server) pair bins: each
            # pair's entries arrive in the same order as its own bincount
            # would see them, so the per-bin partial sums are identical.
            sums = np.bincount(
                sparse.entry_pair_index()[pos],
                weights=self._wflat[sparse.entry_flat_index()[pos]],
                minlength=self.instance.num_models * num_servers,
            )
            self._gains[:, cols] = sums.reshape(
                self.instance.num_models, num_servers
            )[cols].T
            return
        for column in columns:
            column = int(column)
            if user is None:
                np.multiply(
                    demand[:, column],
                    ~self.served[:, column],
                    out=self._weighted[:, column],
                )
            else:
                self._weighted[user, column] = demand[user, column] * (
                    ~self.served[user, column]
                )
            self._refresh_column(column)

    def adopt_columns(self, other: "CoverageTracker", columns) -> None:
        """Copy the given columns' state verbatim from another tracker.

        Used by the serving layer's trace replay to compose a final
        tracker from two exactly-maintained halves (unchanged columns
        from the previous solve, changed columns from the replay clone).
        Both trackers must share the instance shape and engine.
        """
        self.served[:, columns] = other.served[:, columns]
        self._weighted[:, columns] = other._weighted[:, columns]
        self._gains[:, columns] = other._gains[:, columns]

    def bulk_mark(self, pairs: Iterable) -> np.ndarray:
        """Apply many placement marks with one kernel run per column.

        Equivalent to calling :meth:`mark_served` for every ``(server,
        model)`` pair, but defers the column refresh until all served bits
        are set — exact, because a column's final state depends only on
        the *set* of marked pairs, the weighted resync recomputes the
        constructor's expression bit for bit, and the kernel runs once on
        that final state (the same run the last sequential mark would
        do). Returns the touched column indices, sorted.
        """
        touched = set()
        for server, model_index in pairs:
            model_index = int(model_index)
            if self._sparse is not None:
                users = self._sparse.pair_users(int(server), model_index)
                if users.size:
                    self.served[users, model_index] = True
                    touched.add(model_index)
            else:
                self.served[:, model_index] |= self.instance.feasible[
                    int(server), :, model_index
                ]
                touched.add(model_index)
        columns = np.asarray(sorted(touched), dtype=np.intp)
        self.refresh_columns(columns)
        return columns

    def update_user(self, user: int, demand_row: np.ndarray) -> np.ndarray:
        """Set one user's demand row and refresh the affected columns.

        O(sum of changed-column costs): only columns whose demand entry
        actually changed are touched. Returns those column indices.
        """
        changed = self.instance.set_demand_row(user, demand_row)
        self.refresh_columns(changed, user=user)
        return changed

    def add_user(self, user: int, demand_row: np.ndarray) -> np.ndarray:
        """(Re-)activate a user with the given demand row (delta op)."""
        return self.update_user(user, demand_row)

    def remove_user(self, user: int) -> np.ndarray:
        """Deactivate a user: zero their demand row (delta op)."""
        return self.update_user(
            user, np.zeros(self.instance.num_models, dtype=float)
        )

    def scale_model(self, model_index: int, factor: float) -> np.ndarray:
        """Scale one model's demand column (popularity drift delta op)."""
        changed = self.instance.scale_demand_column(model_index, factor)
        self.refresh_columns(changed)
        return changed

    def mark_server_models(self, server: int, model_indices: Iterable[int]) -> None:
        """Record a whole per-server caching decision at once."""
        for model_index in model_indices:
            self.mark_served(server, model_index)

    def covered_mass(self) -> float:
        """Total demand mass currently served."""
        return float((self.instance.demand * self.served).sum())

    def hit_ratio(self) -> float:
        """Current hit ratio implied by the tracker state."""
        return self.covered_mass() / self.instance.total_demand
