"""Objective ``U(X)`` (eq. 2), storage cost ``g_m`` (eq. 7), feasibility.

Also provides :class:`CoverageTracker`, the incremental-evaluation engine
shared by the greedy solvers: it maintains which (user, model) requests are
already served and answers marginal-gain queries in vectorised form. The
tracker has two engines over the same state:

* ``"dense"`` (default) — column refreshes run the einsum kernel on
  column views, bit-identical to the frozen seed's from-scratch
  recompute (:mod:`repro.core.reference`);
* ``"sparse"`` — column refreshes walk only the CSR nonzeros, ``O(nnz)``
  instead of ``O(M·K)``.

:func:`served_matrix` picks the O(nnz) walk automatically whenever the
instance carries the CSR artifact — boolean output, so the sparse walk is
*exactly* the dense einsum's result, not merely close.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core import kernels
from repro.core.placement import Placement, PlacementInstance
from repro.errors import PlacementError


def _check_shapes(instance: PlacementInstance, placement: Placement) -> None:
    expected = (instance.num_servers, instance.num_models)
    if placement.matrix.shape != expected:
        raise PlacementError(
            f"placement shape {placement.matrix.shape} does not match instance {expected}"
        )


def served_matrix(
    instance: PlacementInstance,
    placement: Placement,
    feasible: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(K, I)`` boolean: is request (k, i) served by some server?

    ``feasible`` overrides the instance's ``I1`` tensor (used when
    evaluating a placement under faded rates instead of expected rates).
    Without an override, a sparse-primary instance is walked in O(nnz)
    via its CSR artifact; the result is exactly the dense einsum's.
    """
    _check_shapes(instance, placement)
    if feasible is None:
        if instance.has_sparse or instance.is_sparse_primary:
            return instance.sparse_feasible.served_matrix(placement.matrix)
        feas = instance.feasible
    else:
        feas = feasible
        if feas.shape != instance.feasible_shape:
            raise PlacementError(
                f"feasibility tensor must have shape {instance.feasible_shape}"
            )
    # served[k, i] = OR_m (x[m, i] AND I1[m, k, i])
    return np.einsum("mki,mi->ki", feas, placement.matrix) > 0


def hit_ratio(
    instance: PlacementInstance,
    placement: Placement,
    feasible: Optional[np.ndarray] = None,
) -> float:
    """The expected cache hit ratio ``U(X)`` of eq. (2)."""
    served = served_matrix(instance, placement, feasible)
    return float((instance.demand * served).sum() / instance.total_demand)


def storage_used(instance: PlacementInstance, placement: Placement, server: int) -> int:
    """Deduplicated bytes used on ``server``: ``g_m(X_m)`` of eq. (7)."""
    _check_shapes(instance, placement)
    return instance.dedup_storage(placement.models_on(server))


def independent_storage_used(
    instance: PlacementInstance, placement: Placement, server: int
) -> int:
    """Bytes used on ``server`` when models are stored without sharing."""
    _check_shapes(instance, placement)
    return int(sum(instance.model_sizes[i] for i in placement.models_on(server)))


def placement_is_feasible(
    instance: PlacementInstance,
    placement: Placement,
    *,
    deduplicate: bool = True,
) -> bool:
    """Does the placement respect every server's capacity?

    ``deduplicate=False`` applies the Independent-Caching storage
    accounting (full model sizes, knapsack constraint).
    """
    for server in range(instance.num_servers):
        if deduplicate:
            used = storage_used(instance, placement, server)
        else:
            used = independent_storage_used(instance, placement, server)
        if used > instance.capacities[server]:
            return False
    return True


class CoverageTracker:
    """Incremental coverage bookkeeping for greedy solvers.

    Tracks which (user, model) requests are currently served and exposes:

    * :meth:`gain` — marginal hit-probability mass of adding (m, i);
    * :meth:`gain_matrix` — all marginal gains at once, shape ``(M, I)``;
    * :meth:`mark_served` — update after a placement step.

    All gains are *unnormalised* (probability mass, not ratio); divide by
    ``instance.total_demand`` to convert.

    The ``(M, I)`` gain matrix is *maintained* rather than recomputed:
    caching (m, i) only changes column ``i`` (the users it newly serves
    stop counting toward every server that could reach them), so
    :meth:`mark_served` refreshes that one column instead of running the
    full ``O(M·K·I)`` einsum. Two refresh engines are available:

    ``engine="dense"`` (default)
        ``O(M·K)`` per refresh; runs the same einsum kernel on column
        *views* of the same arrays the full recompute would use
        (identical dtypes and stride patterns, hence identical
        accumulation order), which keeps the maintained matrix
        bit-identical to the seed's from-scratch recompute — greedy
        tie-breaking is unaffected. Enforced by the equivalence tests
        against :mod:`repro.core.reference`, which assert exact equality.

    ``engine="sparse"``
        ``O(nnz of the column)`` per refresh via the instance's CSR
        artifact (a bincount over the column's feasible entries). The
        ``served``/``unserved_demand`` state stays *exactly* equal to the
        dense engine's (boolean updates and exact zeroing only), but the
        gain sums reduce fewer terms than the einsum and may differ from
        it in final ulps — so greedy placements are pinned to the seed at
        the placement level (empirically identical on the equivalence
        grids) rather than bit-by-bit through the gains.

    ``engine="compiled"``
        The same refresh routed through :mod:`repro.core.kernels`:
        Numba-jitted loops when numba is installed, the engines' own
        numpy expressions otherwise. The state layout follows what the
        instance would pick anyway (CSR fold for sparse-primary, column
        kernel otherwise). The jitted sparse fold is bit-identical to
        the bincount; the jitted dense kernel may differ from the
        einsum in final ulps, so compiled placements are pinned at the
        placement level exactly like the sparse engine's.

    ``engine="auto"`` picks ``"compiled"`` when numba is importable,
    otherwise ``"sparse"`` for sparse-primary instances and ``"dense"``
    for the rest.
    """

    def __init__(self, instance: PlacementInstance, engine: str = "dense") -> None:
        if engine == "auto":
            if kernels.HAVE_NUMBA:
                engine = "compiled"
            else:
                engine = "sparse" if instance.is_sparse_primary else "dense"
        if engine not in ("dense", "sparse", "compiled"):
            raise PlacementError(
                f"engine must be dense|sparse|compiled|auto, got {engine!r}"
            )
        self.instance = instance
        self.engine = engine
        self._compiled = engine == "compiled"
        sparse_state = engine == "sparse" or (
            self._compiled and instance.is_sparse_primary
        )
        self.served = np.zeros(
            (instance.num_users, instance.num_models), dtype=bool
        )
        #: ``(K, I)`` demand mass not yet served, maintained per column.
        self._weighted = instance.demand * ~self.served
        if sparse_state:
            sparse = instance.sparse_feasible
            self._sparse = sparse
            num_servers = instance.num_servers
            self._gains = np.zeros(
                (num_servers, instance.num_models), dtype=float
            )
            for model_index in range(instance.num_models):
                servers, users = sparse.column_entries(model_index)
                self._gains[:, model_index] = np.bincount(
                    servers,
                    weights=self._weighted[users, model_index],
                    minlength=num_servers,
                )
        else:
            self._sparse = None
            self._gains = np.einsum(
                "mki,ki->mi", instance.feasible, self._weighted
            )

    def unserved_demand(self) -> np.ndarray:
        """``(K, I)`` demand mass not yet served."""
        return self._weighted.copy()

    def gain(self, server: int, model_index: int) -> float:
        """Marginal mass served by caching ``model_index`` on ``server``."""
        return float(self._gains[server, model_index])

    def gain_matrix(self) -> np.ndarray:
        """``(M, I)`` marginal masses for every (server, model) pair."""
        return self._gains.copy()

    def gain_matrix_view(self) -> np.ndarray:
        """The maintained ``(M, I)`` gain matrix itself (do not mutate)."""
        return self._gains

    def server_gains(self, server: int) -> np.ndarray:
        """``(I,)`` marginal masses for one server (the Spec sub-problem's
        ``u(m, i)`` values of eq. (14), with ``I2`` implicit in
        ``self.served``)."""
        return self._gains[server].copy()

    def mark_served(self, server: int, model_index: int) -> None:
        """Record that (server, model) is now cached."""
        if self._sparse is not None:
            self._mark_served_sparse(server, model_index)
            return
        feas = self.instance.feasible[server, :, model_index]
        served_col = self.served[:, model_index]
        newly = feas > served_col  # feasible and not yet served
        if not newly.any():
            return
        served_col |= feas
        # Still-unserved entries keep their exact bits; newly served ones
        # become exactly 0.0 — identical to recomputing demand * ~served.
        self._weighted[:, model_index][newly] = 0.0
        if self._compiled:
            kernels.dense_column_gains(
                self.instance.feasible[:, :, model_index],
                self._weighted[:, model_index],
                self._gains[:, model_index],
            )
            return
        # Column views of the same arrays the full einsum would reduce:
        # same kernel, same accumulation order, same bits.
        self._gains[:, model_index] = np.einsum(
            "mk,k->m",
            self.instance.feasible[:, :, model_index],
            self._weighted[:, model_index],
        )

    def _mark_served_sparse(self, server: int, model_index: int) -> None:
        """O(column nnz) refresh over the CSR artifact."""
        sparse = self._sparse
        pair_users = sparse.pair_users(server, model_index)
        served_col = self.served[:, model_index]
        if pair_users.size == 0 or served_col[pair_users].all():
            return
        served_col[pair_users] = True
        # Same exact zeroing as the dense engine: newly served users'
        # remaining mass becomes exactly 0.0.
        self._weighted[pair_users, model_index] = 0.0
        servers, users = sparse.column_entries(model_index)
        if self._compiled:
            kernels.sparse_column_gains(
                servers,
                users,
                self._weighted[:, model_index],
                self._gains[:, model_index],
            )
            return
        self._gains[:, model_index] = np.bincount(
            servers,
            weights=self._weighted[users, model_index],
            minlength=self.instance.num_servers,
        )

    def mark_server_models(self, server: int, model_indices: Iterable[int]) -> None:
        """Record a whole per-server caching decision at once."""
        for model_index in model_indices:
            self.mark_served(server, model_index)

    def covered_mass(self) -> float:
        """Total demand mass currently served."""
        return float((self.instance.demand * self.served).sum())

    def hit_ratio(self) -> float:
        """Current hit ratio implied by the tracker state."""
        return self.covered_mass() / self.instance.total_demand
