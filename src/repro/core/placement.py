"""Problem instances and placement decisions for P1.1.

:class:`PlacementInstance` is the solver-facing view of one snapshot:
demand ``p_{k,i}``, feasibility ``I1[m,k,i]``, server capacities ``Q_m``
and the model library. Solvers work in *dense model indices* ``0..I-1``
(column positions), which the instance maps to library model ids — library
ids need not be contiguous (e.g. after :meth:`ModelLibrary.subset`).

Feasibility may be supplied either as the dense ``(M, K, I)`` boolean
tensor or as a :class:`~repro.core.sparse.SparseFeasibility` CSR artifact
(what :func:`~repro.sim.scenario.build_scenario` now produces). Whichever
form arrives is the primary representation; the other is derived lazily
and cached, so dense-only consumers (the frozen seed reference solvers,
Monte-Carlo evaluation under faded rates) and O(nnz) sparse consumers
(the sparse coverage engine, ``served_matrix`` walks) share one instance.
The two representations encode bit-identical indicator tensors.

:class:`Placement` is the decision ``X``: a boolean ``(M, I)`` matrix with
set-style helpers. It is cheap to copy and hashable once frozen.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import weakref

import numpy as np

from repro.core.blockmask import BlockMaskIndex
from repro.core.sparse import SparseFeasibility
from repro.errors import PlacementError
from repro.models.library import ModelLibrary

#: Per-library memo of the block bitmask index. The index is pure library
#: structure (model -> block membership, block sizes), libraries are
#: logically immutable, and every instance of one library (each sweep
#: topology) needs the identical index — so build it once, weakly keyed.
_BLOCK_INDEX_CACHE: "weakref.WeakKeyDictionary[ModelLibrary, BlockMaskIndex]" = (
    weakref.WeakKeyDictionary()
)


class PlacementInstance:
    """One placement problem (paper P1.1).

    Parameters
    ----------
    library:
        The parameter-sharing model library.
    demand:
        ``(K, I)`` request probabilities ``p_{k,i}``; column ``i``
        corresponds to ``library.model_ids[i]``.
    feasible:
        ``I1[m,k,i]`` — can server ``m`` serve the (k, i) request within
        its deadline? Either the dense ``(M, K, I)`` boolean tensor or a
        :class:`~repro.core.sparse.SparseFeasibility`.
    capacities:
        ``(M,)`` storage capacities ``Q_m`` in bytes.
    """

    def __init__(
        self,
        library: ModelLibrary,
        demand: np.ndarray,
        feasible: Union[np.ndarray, SparseFeasibility],
        capacities: Sequence[int],
    ) -> None:
        demand = np.asarray(demand, dtype=float)
        self._sparse_primary = isinstance(feasible, SparseFeasibility)
        if isinstance(feasible, SparseFeasibility):
            self._feasible_sparse: Optional[SparseFeasibility] = feasible
            self._feasible_dense: Optional[np.ndarray] = None
            feasible_shape = feasible.shape
        else:
            feasible = np.asarray(feasible, dtype=bool)
            if feasible.ndim != 3:
                raise PlacementError("feasible must be a (M, K, I) tensor")
            self._feasible_sparse = None
            self._feasible_dense = feasible
            feasible_shape = feasible.shape
        capacities_arr = np.asarray(capacities, dtype=np.int64)

        if demand.ndim != 2:
            raise PlacementError("demand must be a (K, I) matrix")
        num_users, num_models = demand.shape
        num_servers = feasible_shape[0]
        if feasible_shape != (num_servers, num_users, num_models):
            raise PlacementError(
                f"feasible shape {feasible_shape} does not match demand {demand.shape}"
            )
        if capacities_arr.ndim != 1 or capacities_arr.shape[0] != num_servers:
            raise PlacementError("capacities must have one entry per server")
        if np.any(capacities_arr < 0):
            raise PlacementError("capacities must be non-negative")
        if np.any(demand < 0):
            raise PlacementError("demand probabilities must be non-negative")
        if num_models != library.num_models:
            raise PlacementError(
                f"demand has {num_models} models but library has {library.num_models}"
            )
        total = demand.sum()
        if total <= 0:
            raise PlacementError("total demand must be positive")

        self.library = library
        self.demand = demand
        #: ``(M, K, I)`` shape of the feasibility indicator.
        self.feasible_shape: Tuple[int, int, int] = (
            num_servers,
            num_users,
            num_models,
        )
        self.capacities = capacities_arr
        self.total_demand = float(total)
        #: dense index -> library model id (ascending id order).
        self.index_to_model_id: Tuple[int, ...] = tuple(library.model_ids)
        self._model_id_to_index: Dict[int, int] = {
            model_id: index for index, model_id in enumerate(self.index_to_model_id)
        }
        #: dense index -> the model's block-id frozenset.
        self.model_blocks: Tuple[FrozenSet[int], ...] = tuple(
            library.model(model_id).block_set for model_id in self.index_to_model_id
        )
        #: dense index -> full model size D_i in bytes.
        self.model_sizes: np.ndarray = np.array(
            [library.model_size(model_id) for model_id in self.index_to_model_id],
            dtype=np.int64,
        )
        #: block id -> size in bytes (plain dict for the hot greedy loop).
        self.block_sizes: Dict[int, int] = {
            block_id: library.block_size(block_id) for block_id in library.block_ids
        }
        self._block_index: Optional[BlockMaskIndex] = None

    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """``M``."""
        return self.feasible_shape[0]

    @property
    def num_users(self) -> int:
        """``K``."""
        return int(self.demand.shape[0])

    @property
    def num_models(self) -> int:
        """``I``."""
        return int(self.demand.shape[1])

    # ------------------------------------------------------------------
    @property
    def feasible(self) -> np.ndarray:
        """The dense ``(M, K, I)`` indicator (derived lazily, cached).

        When the instance was built sparse-primary, the first access
        scatters the CSR back to the identical dense tensor — existing
        dense consumers keep working unchanged.
        """
        if self._feasible_dense is None:
            assert self._feasible_sparse is not None
            self._feasible_dense = self._feasible_sparse.to_dense()
        return self._feasible_dense

    @property
    def sparse_feasible(self) -> SparseFeasibility:
        """The CSR feasibility artifact (derived lazily, cached)."""
        if self._feasible_sparse is None:
            assert self._feasible_dense is not None
            self._feasible_sparse = SparseFeasibility.from_dense(
                self._feasible_dense
            )
        return self._feasible_sparse

    @property
    def is_sparse_primary(self) -> bool:
        """Was this instance built from a CSR artifact?

        ``engine="auto"`` consumers use this to pick the O(nnz) walks
        without forcing densification.
        """
        return self._sparse_primary

    @property
    def has_sparse(self) -> bool:
        """Is the CSR representation already materialised?"""
        return self._feasible_sparse is not None

    @property
    def feasibility_density(self) -> float:
        """``nnz / (M·K·I)`` of the indicator."""
        return self.sparse_feasible.density

    def index_of(self, model_id: int) -> int:
        """Dense index of a library model id."""
        try:
            return self._model_id_to_index[model_id]
        except KeyError:
            raise PlacementError(f"model id {model_id} not in instance") from None

    def blocks_of(self, model_index: int) -> FrozenSet[int]:
        """Block ids of the model at dense index ``model_index``."""
        return self.model_blocks[model_index]

    def marginal_storage(
        self, model_index: int, cached_blocks: AbstractSet[int]
    ) -> int:
        """Bytes needed to add this model on top of ``cached_blocks``."""
        return sum(
            self.block_sizes[b]
            for b in self.model_blocks[model_index]
            if b not in cached_blocks
        )

    def dedup_storage(self, model_indices: Iterable[int]) -> int:
        """Deduplicated footprint ``g_m`` of a set of dense indices."""
        blocks: Set[int] = set()
        for index in model_indices:
            blocks |= self.model_blocks[index]
        return sum(self.block_sizes[b] for b in blocks)

    @property
    def block_index(self) -> BlockMaskIndex:
        """Dense block-membership bitmask index (built lazily, cached).

        Backs the vectorised storage accounting used by the solver
        engines; :meth:`marginal_storage`/:meth:`dedup_storage` above are
        the equivalent set-based reference paths. The index depends only
        on the library, so it is memoised per library object — instances
        sharing a library (every topology of a sweep point) share it.
        """
        if self._block_index is None:
            cached = _BLOCK_INDEX_CACHE.get(self.library)
            if cached is None:
                cached = BlockMaskIndex(self.model_blocks, self.block_sizes)
                _BLOCK_INDEX_CACHE[self.library] = cached
            self._block_index = cached
        return self._block_index

    def new_placement(self) -> "Placement":
        """An empty placement with this instance's shape."""
        return Placement(np.zeros((self.num_servers, self.num_models), dtype=bool))

    # ------------------------------------------------------------------
    # In-place mutation (the serving layer's event stream). These are the
    # single source of mutation arithmetic: both the resident service and
    # the from-scratch reference path apply events through them, so the
    # mutated demand/capacity arrays are bit-identical on both sides.
    #
    # NOTE: the constructor does NOT copy float/int64 input arrays
    # (``np.asarray`` shares them). Callers that mutate an instance must
    # build it from explicit ``.copy()``s or accept shared-array updates.

    def _recompute_total(self, restore: "Optional[Tuple[int, np.ndarray]]") -> None:
        total = self.demand.sum()
        if total <= 0:
            if restore is not None:
                user, previous = restore
                self.demand[user] = previous
            raise PlacementError("total demand must be positive")
        # Same expression as the constructor: float(demand.sum()).
        self.total_demand = float(total)

    def set_demand_row(self, user: int, demand_row: np.ndarray) -> np.ndarray:
        """Replace one user's demand row in place.

        Returns the dense model indices whose column actually changed
        (entries where old != new) — the columns a maintained gain matrix
        must refresh. Raises :class:`PlacementError` (leaving the row
        unchanged) if the update would make total demand non-positive.
        """
        if not 0 <= user < self.num_users:
            raise PlacementError(f"user {user} out of range [0, {self.num_users})")
        row = np.asarray(demand_row, dtype=float)
        if row.shape != (self.num_models,):
            raise PlacementError(
                f"demand row must have shape ({self.num_models},), got {row.shape}"
            )
        if np.any(row < 0):
            raise PlacementError("demand probabilities must be non-negative")
        previous = self.demand[user].copy()
        changed = np.flatnonzero(previous != row)
        self.demand[user] = row
        self._recompute_total((user, previous))
        return changed

    def scale_demand_column(self, model_index: int, factor: float) -> np.ndarray:
        """Scale one model's demand column by ``factor`` (popularity drift).

        Returns the changed column indices (``[model_index]`` when any
        entry moved, empty otherwise).
        """
        if not 0 <= model_index < self.num_models:
            raise PlacementError(
                f"model index {model_index} out of range [0, {self.num_models})"
            )
        factor = float(factor)
        if not np.isfinite(factor) or factor < 0:
            raise PlacementError("popularity factor must be finite and non-negative")
        column = self.demand[:, model_index]
        scaled = column * factor
        if np.array_equal(column, scaled):
            return np.empty(0, dtype=np.intp)
        previous = column.copy()
        self.demand[:, model_index] = scaled
        total = self.demand.sum()
        if total <= 0:
            self.demand[:, model_index] = previous
            raise PlacementError("total demand must be positive")
        self.total_demand = float(total)
        return np.array([model_index], dtype=np.intp)

    def set_capacity(self, server: int, capacity_bytes: int) -> None:
        """Set one server's storage capacity ``Q_m`` in bytes."""
        if not 0 <= server < self.num_servers:
            raise PlacementError(
                f"server {server} out of range [0, {self.num_servers})"
            )
        capacity = int(capacity_bytes)
        if capacity < 0:
            raise PlacementError("capacities must be non-negative")
        self.capacities[server] = capacity


class Placement:
    """The decision matrix ``X`` (servers x models, boolean)."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise PlacementError("placement matrix must be 2-D (servers x models)")
        self.matrix = matrix

    # ------------------------------------------------------------------
    @classmethod
    def from_server_sets(
        cls, num_servers: int, num_models: int, server_sets: Dict[int, Iterable[int]]
    ) -> "Placement":
        """Build from ``{server: model indices}``."""
        matrix = np.zeros((num_servers, num_models), dtype=bool)
        for server, indices in server_sets.items():
            for index in indices:
                matrix[server, index] = True
        return cls(matrix)

    @property
    def num_servers(self) -> int:
        """Number of servers in the decision."""
        return int(self.matrix.shape[0])

    @property
    def num_models(self) -> int:
        """Number of models in the decision."""
        return int(self.matrix.shape[1])

    def models_on(self, server: int) -> List[int]:
        """Dense model indices cached on ``server``."""
        return np.flatnonzero(self.matrix[server]).tolist()

    def servers_with(self, model_index: int) -> List[int]:
        """Servers caching the model at ``model_index``."""
        return np.flatnonzero(self.matrix[:, model_index]).tolist()

    def add(self, server: int, model_index: int) -> None:
        """Cache one model on one server (idempotent)."""
        self.matrix[server, model_index] = True

    def remove(self, server: int, model_index: int) -> None:
        """Evict one model from one server (idempotent)."""
        self.matrix[server, model_index] = False

    def contains(self, server: int, model_index: int) -> bool:
        """Is the model cached on the server?"""
        return bool(self.matrix[server, model_index])

    def total_placements(self) -> int:
        """``|X|``: number of (server, model) placements."""
        return int(self.matrix.sum())

    def copy(self) -> "Placement":
        """An independent copy."""
        return Placement(self.matrix.copy())

    def frozen(self) -> Tuple[FrozenSet[int], ...]:
        """Hashable canonical form (one frozenset per server)."""
        return tuple(
            frozenset(np.flatnonzero(row).tolist()) for row in self.matrix
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self.matrix.shape == other.matrix.shape and bool(
            (self.matrix == other.matrix).all()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Placement({self.total_placements()} placements on "
            f"{self.num_servers} servers)"
        )
