"""Frozen seed implementations of the solver hot paths.

When the vectorised engine (blockmask tables, incremental coverage
tracking, slice-shift DP) replaced the original pure-Python inner loops,
the originals were moved here *verbatim* so that

* the equivalence test suite can assert the new paths produce
  **bit-identical placements** (same tie-breaking) on randomized
  instances, and
* ``benchmarks/bench_perf.py`` can record seed-vs-new timings.

Nothing here should be "improved": this module is the behavioural
baseline. Production code lives in :mod:`repro.core.objective`,
:mod:`repro.core.gen`, :mod:`repro.core.spec` and :mod:`repro.core.dp`.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.dp import (
    KNAPSACK_BACKENDS,
    SharedCombination,
    enumerate_shared_combinations,
    knapsack_branch_and_bound,
    knapsack_weight_dp,
)
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import SolverError


class ReferenceCoverageTracker:
    """The seed :class:`~repro.core.objective.CoverageTracker`.

    Recomputes the full ``O(M·K·I)`` einsum on every ``gain_matrix`` call
    instead of maintaining it incrementally.
    """

    def __init__(self, instance: PlacementInstance) -> None:
        self.instance = instance
        self.served = np.zeros(
            (instance.num_users, instance.num_models), dtype=bool
        )

    def unserved_demand(self) -> np.ndarray:
        return self.instance.demand * ~self.served

    def gain(self, server: int, model_index: int) -> float:
        feas = self.instance.feasible[server, :, model_index]
        unserved = ~self.served[:, model_index]
        return float(
            (self.instance.demand[:, model_index] * feas * unserved).sum()
        )

    def gain_matrix(self) -> np.ndarray:
        weighted = self.unserved_demand()
        return np.einsum("mki,ki->mi", self.instance.feasible, weighted)

    def server_gains(self, server: int) -> np.ndarray:
        weighted = self.unserved_demand()
        return (self.instance.feasible[server] * weighted).sum(axis=0)

    def mark_served(self, server: int, model_index: int) -> None:
        feas = self.instance.feasible[server, :, model_index]
        self.served[:, model_index] |= feas

    def mark_server_models(self, server, model_indices) -> None:
        for model_index in model_indices:
            self.mark_served(server, model_index)


class ReferenceGen:
    """The seed TrimCaching Gen: set-walk storage, einsum gains."""

    name = "TrimCaching Gen (reference)"

    def __init__(self, accelerated: bool = True) -> None:
        self.accelerated = accelerated

    def solve(self, instance: PlacementInstance) -> SolverResult:
        start = time.perf_counter()
        if self.accelerated:
            placement, steps = self._solve_lazy(instance)
        else:
            placement, steps = self._solve_naive(instance)
        from repro.core.objective import hit_ratio

        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps, "accelerated": self.accelerated},
        )

    def _solve_naive(self, instance: PlacementInstance) -> Tuple[Placement, int]:
        placement = instance.new_placement()
        tracker = ReferenceCoverageTracker(instance)
        cached_blocks: List[Set[int]] = [set() for _ in range(instance.num_servers)]
        used = np.zeros(instance.num_servers, dtype=np.int64)
        steps = 0
        while True:
            gains = tracker.gain_matrix()
            gains[placement.matrix] = -1.0  # already placed
            best_gain = -1.0
            best_pair = None
            for server in range(instance.num_servers):
                remaining = int(instance.capacities[server] - used[server])
                if remaining < 0:
                    continue
                order = np.argsort(-gains[server], kind="stable")
                for model_index in order:
                    gain = gains[server, model_index]
                    if gain <= best_gain or gain <= 0.0:
                        break
                    extra = instance.marginal_storage(
                        int(model_index), cached_blocks[server]
                    )
                    if extra <= remaining:
                        best_gain = gain
                        best_pair = (server, int(model_index))
                        break
            if best_pair is None:
                break
            server, model_index = best_pair
            self._apply(
                instance, placement, tracker, cached_blocks, used, server, model_index
            )
            steps += 1
        return placement, steps

    def _solve_lazy(self, instance: PlacementInstance) -> Tuple[Placement, int]:
        placement = instance.new_placement()
        tracker = ReferenceCoverageTracker(instance)
        cached_blocks: List[Set[int]] = [set() for _ in range(instance.num_servers)]
        used = np.zeros(instance.num_servers, dtype=np.int64)

        initial = tracker.gain_matrix()
        heap: List[Tuple[float, int, int]] = []
        for server in range(instance.num_servers):
            for model_index in range(instance.num_models):
                gain = initial[server, model_index]
                if gain > 0.0:
                    heap.append((-gain, server, model_index))
        heapq.heapify(heap)
        parked: Dict[int, List[Tuple[float, int, int]]] = {
            m: [] for m in range(instance.num_servers)
        }
        steps = 0
        while heap:
            neg_gain, server, model_index = heapq.heappop(heap)
            if placement.contains(server, model_index):
                continue
            fresh = tracker.gain(server, model_index)
            if fresh <= 0.0:
                continue
            candidate = (-fresh, server, model_index)
            if heap and heap[0] < candidate:
                heapq.heappush(heap, candidate)
                continue
            extra = instance.marginal_storage(model_index, cached_blocks[server])
            if extra > instance.capacities[server] - used[server]:
                parked[server].append((-fresh, server, model_index))
                continue
            self._apply(
                instance, placement, tracker, cached_blocks, used, server, model_index
            )
            steps += 1
            if parked[server]:
                for entry in parked[server]:
                    heapq.heappush(heap, entry)
                parked[server] = []
        return placement, steps

    @staticmethod
    def _apply(
        instance: PlacementInstance,
        placement: Placement,
        tracker: ReferenceCoverageTracker,
        cached_blocks: List[Set[int]],
        used: np.ndarray,
        server: int,
        model_index: int,
    ) -> None:
        extra = instance.marginal_storage(model_index, cached_blocks[server])
        placement.add(server, model_index)
        cached_blocks[server] |= instance.model_blocks[model_index]
        used[server] += extra
        tracker.mark_served(server, model_index)


class ReferenceIndependent:
    """The seed Independent Caching: per-step gain-matrix copy + rescan.

    Verbatim the pre-port greedy loop (full-size knapsack storage, masked
    copy of the gain matrix each step), driven by
    :class:`ReferenceCoverageTracker` — whose recomputed gains are pinned
    bit-identical to the maintained tracker the seed used, so the
    placements are the seed's exactly.
    """

    name = "Independent Caching (reference)"

    def solve(self, instance: PlacementInstance) -> SolverResult:
        start = time.perf_counter()
        placement = instance.new_placement()
        tracker = ReferenceCoverageTracker(instance)
        remaining = instance.capacities.astype(np.int64).copy()
        steps = 0
        while True:
            gains = tracker.gain_matrix()
            gains[placement.matrix] = -1.0
            # A model fits iff its full size fits the remaining capacity.
            fits = instance.model_sizes[None, :] <= remaining[:, None]
            gains[~fits] = -1.0
            flat = int(np.argmax(gains))
            server, model_index = divmod(flat, instance.num_models)
            if gains[server, model_index] <= 0.0:
                break
            placement.add(server, model_index)
            remaining[server] -= int(instance.model_sizes[model_index])
            tracker.mark_served(server, model_index)
            steps += 1
        from repro.core.objective import hit_ratio

        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={"greedy_steps": steps},
        )


def reference_knapsack_value_dp(
    values: Sequence[float],
    weights: Sequence[int],
    capacity: int,
    epsilon: float = 0.1,
    max_states: int = 5_000_000,
) -> Tuple[float, List[int]]:
    """The seed rounded value-dimension DP (Python state loop)."""
    if len(values) != len(weights):
        raise SolverError("values and weights must have equal length")
    if capacity < 0:
        raise SolverError(f"capacity must be non-negative, got {capacity}")
    if any(v < 0 for v in values):
        raise SolverError("knapsack values must be non-negative")
    if any(w < 0 for w in weights):
        raise SolverError("knapsack weights must be non-negative")
    if epsilon <= 0:
        raise SolverError("knapsack_value_dp requires epsilon > 0")
    items = [
        (index, float(values[index]), int(weights[index]))
        for index in range(len(values))
        if values[index] > 0 and weights[index] <= capacity
    ]
    if not items:
        return 0.0, []
    v_min = min(value for _, value, _ in items)
    unit = epsilon * v_min
    rounded = [max(1, int(math.floor(value / unit))) for _, value, _ in items]
    total_rounded = sum(rounded)
    if (total_rounded + 1) * len(items) > max_states:
        raise SolverError(
            f"value DP needs {(total_rounded + 1) * len(items)} states "
            f"(> {max_states}); increase epsilon or use another backend"
        )

    inf = float("inf")
    min_weight = [inf] * (total_rounded + 1)
    min_weight[0] = 0.0
    take = np.zeros((len(items), total_rounded + 1), dtype=bool)
    reachable = 0
    for item_pos, ((_, _, weight), value_units) in enumerate(zip(items, rounded)):
        reachable = min(reachable + value_units, total_rounded)
        for units in range(reachable, value_units - 1, -1):
            candidate = min_weight[units - value_units] + weight
            if candidate < min_weight[units]:
                min_weight[units] = candidate
                take[item_pos, units] = True

    best_units = 0
    for units in range(total_rounded, -1, -1):
        if min_weight[units] <= capacity:
            best_units = units
            break
    selected: List[int] = []
    units = best_units
    for item_pos in range(len(items) - 1, -1, -1):
        if take[item_pos, units]:
            selected.append(items[item_pos][0])
            units -= rounded[item_pos]
    if units != 0:
        raise SolverError("value DP backtrack failed (internal error)")
    selected.reverse()
    true_value = float(sum(values[index] for index in selected))
    return true_value, selected


class ReferenceSpec:
    """The seed TrimCaching Spec: per-server Python candidate loops."""

    name = "TrimCaching Spec (reference)"

    def __init__(
        self,
        epsilon: float = 0.1,
        backend: str = "value_dp",
        combinations: str = "auto",
        max_combinations: int = 200_000,
    ) -> None:
        self.epsilon = epsilon
        self.backend = backend
        self.combinations = combinations
        self.max_combinations = max_combinations

    def _run_knapsack(
        self, values: Sequence[float], weights: Sequence[int], capacity: int
    ) -> Tuple[float, List[int]]:
        if self.backend == "value_dp":
            try:
                return reference_knapsack_value_dp(
                    values, weights, capacity, epsilon=self.epsilon
                )
            except SolverError:
                try:
                    quantum = max(1, capacity // 800)
                    return knapsack_weight_dp(
                        values, weights, capacity, quantum=quantum
                    )
                except SolverError:
                    return knapsack_branch_and_bound(values, weights, capacity)
        if self.backend == "weight_dp":
            return knapsack_weight_dp(values, weights, capacity)
        return knapsack_branch_and_bound(values, weights, capacity)

    def solve_subproblem(
        self,
        instance: PlacementInstance,
        server: int,
        utilities: np.ndarray,
        combos: Sequence[SharedCombination],
    ) -> Tuple[float, List[int]]:
        capacity = int(instance.capacities[server])
        shared_of = [
            frozenset(blocks & instance.library.shared_block_ids)
            for blocks in instance.model_blocks
        ]
        specific_weight = [
            int(
                instance.model_sizes[index]
                - instance.library.blocks_size(shared_of[index])
            )
            for index in range(instance.num_models)
        ]

        candidates = []
        for combo in combos:
            if combo.size_bytes > capacity:
                continue
            eligible = [
                index
                for index in range(instance.num_models)
                if utilities[index] > 0.0 and shared_of[index] <= combo.blocks
            ]
            if not eligible:
                continue
            bound = float(sum(utilities[index] for index in eligible))
            candidates.append((bound, combo, eligible))
        candidates.sort(key=lambda entry: -entry[0])

        best_mass = 0.0
        best_selection: List[int] = []
        for bound, combo, eligible in candidates:
            if bound <= best_mass:
                break
            values = [float(utilities[index]) for index in eligible]
            weights = [specific_weight[index] for index in eligible]
            mass, chosen = self._run_knapsack(
                values, weights, capacity - combo.size_bytes
            )
            if mass > best_mass:
                best_mass = mass
                best_selection = [eligible[pos] for pos in chosen]
        return best_mass, best_selection

    def solve(self, instance: PlacementInstance) -> SolverResult:
        from repro.core.objective import hit_ratio

        start = time.perf_counter()
        if not instance.library.specific_blocks_are_exclusive():
            raise SolverError(
                "Spec requires specific blocks to be model-exclusive "
                "(additive DP weights); this library violates that"
            )
        combos = enumerate_shared_combinations(
            instance.library,
            self.combinations,
            self.max_combinations,
            # The frozen baseline must keep paying the seed's per-solve
            # enumeration cost — never the new per-library memo.
            cache=False,
        )
        placement = instance.new_placement()
        tracker = ReferenceCoverageTracker(instance)
        per_server_mass: List[float] = []
        for server in range(instance.num_servers):
            utilities = tracker.server_gains(server)
            mass, selection = self.solve_subproblem(
                instance, server, utilities, combos
            )
            for model_index in selection:
                placement.add(server, model_index)
            tracker.mark_server_models(server, selection)
            per_server_mass.append(mass)
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={
                "num_combinations": len(combos),
                "epsilon": self.epsilon,
                "backend": self.backend,
                "per_server_mass": per_server_mass,
            },
        )


@dataclass(frozen=True)
class ReferenceGenConfig:
    """Typed constructor knobs of :class:`ReferenceGen` (seed Gen).

    Registered in :data:`repro.api.SOLVERS` under ``"reference-gen"``.
    """

    accelerated: bool = True

    def build(self) -> "ReferenceGen":
        """Construct the solver."""
        return ReferenceGen(accelerated=self.accelerated)


@dataclass(frozen=True)
class ReferenceIndependentConfig:
    """Typed constructor knobs of :class:`ReferenceIndependent`.

    Registered in :data:`repro.api.SOLVERS` under
    ``"reference-independent"``.
    """

    def build(self) -> "ReferenceIndependent":
        """Construct the solver."""
        return ReferenceIndependent()


@dataclass(frozen=True)
class ReferenceSpecConfig:
    """Typed constructor knobs of :class:`ReferenceSpec` (seed Spec).

    Registered in :data:`repro.api.SOLVERS` under ``"reference-spec"``.
    """

    epsilon: float = 0.1
    backend: str = "value_dp"
    combinations: str = "auto"
    max_combinations: int = 200_000

    def build(self) -> "ReferenceSpec":
        """Construct the solver."""
        return ReferenceSpec(
            epsilon=self.epsilon,
            backend=self.backend,
            combinations=self.combinations,
            max_combinations=self.max_combinations,
        )
