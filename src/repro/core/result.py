"""Common result type returned by every placement solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.placement import Placement


@dataclass
class SolverResult:
    """Outcome of one solver run.

    Attributes
    ----------
    placement:
        The decision ``X``.
    hit_ratio:
        Objective value ``U(X)`` under the instance's expected rates.
    runtime_s:
        Wall-clock solve time.
    solver:
        Name of the producing algorithm.
    stats:
        Solver-specific counters (greedy steps, DP states, ...).
    """

    placement: Placement
    hit_ratio: float
    runtime_s: float
    solver: str
    stats: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SolverResult(solver={self.solver!r}, hit_ratio={self.hit_ratio:.4f}, "
            f"runtime={self.runtime_s:.4f}s)"
        )
