"""Sparse CSR representation of the feasibility indicator ``I1``.

At paper scale the (server, user, model) feasibility tensor is well under
15% dense — tight deadlines and shared access bandwidth leave most
requests unreachable — yet the seed pipeline materialised the full
``(M, K, I)`` tensor (and, worse, the float latency tensor behind it) for
every topology of every sweep point. :class:`SparseFeasibility` is the
shared sparse artifact: one immutable CSR bundle built once per scenario
and consumed by every layer (placement instance, coverage tracking,
objective evaluation, benchmarks).

Layout
------
The nonzeros are stored as one flat COO/CSR hybrid sorted by
``(model, server, user)`` — "column major" from the solvers' point of
view, because every hot operation touches one model column at a time:

* ``pair_indptr`` — ``(I * M + 1,)`` int64; the entries of pair
  ``(m, i)`` live at ``entries[pair_indptr[i * M + m] :
  pair_indptr[i * M + m + 1]]``;
* ``entry_users`` — ``(nnz,)`` int32 user index of every entry;
* ``entry_servers`` — ``(nnz,)`` int32 server index of every entry
  (the expansion of ``pair_indptr``, precomputed for bincount reduces).

A per-user view (``user_indptr`` / ``user_servers`` / ``user_models``,
sorted by ``(user, model, server)``) is derived lazily for consumers that
iterate requests instead of placements.

Exactness
---------
All boolean/integer queries (``to_dense``, ``served_matrix`` walks,
coverage counts) are *exactly* equal to their dense counterparts — there
is no floating-point accumulation in this module. Float reductions over
the sparse structure (the sparse :class:`~repro.core.objective.
CoverageTracker` engine) sum fewer terms than the dense einsum and may
therefore differ from it in final ulps; that trade-off is documented and
tested where it is made, not here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import PlacementError


class SparseFeasibility:
    """Immutable CSR bundle over the ``I1[m, k, i]`` nonzeros.

    Build via :meth:`from_dense` or from a prepared COO triple via
    :meth:`from_coo` (the latency layer does the latter without ever
    materialising the dense tensor).
    """

    def __init__(
        self,
        shape: Tuple[int, int, int],
        pair_indptr: np.ndarray,
        entry_users: np.ndarray,
        entry_servers: np.ndarray,
    ) -> None:
        num_servers, num_users, num_models = (int(x) for x in shape)
        if num_servers < 0 or num_users < 0 or num_models < 0:
            raise PlacementError("feasibility shape must be non-negative")
        self.shape: Tuple[int, int, int] = (num_servers, num_users, num_models)
        #: ``(I*M + 1,)`` segment bounds; pair (m, i) is row ``i*M + m``.
        self.pair_indptr = pair_indptr
        #: ``(nnz,)`` user of every entry, (model, server, user)-sorted.
        self.entry_users = entry_users
        #: ``(nnz,)`` server of every entry (aligned with ``entry_users``).
        self.entry_servers = entry_servers
        self._user_view: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._coverage_counts: Optional[np.ndarray] = None
        self._entry_flat: Optional[np.ndarray] = None
        self._entry_pair: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, feasible: np.ndarray) -> "SparseFeasibility":
        """Compress a dense ``(M, K, I)`` boolean tensor (exact)."""
        feasible = np.asarray(feasible, dtype=bool)
        if feasible.ndim != 3:
            raise PlacementError("feasible must be a (M, K, I) tensor")
        num_servers, num_users, num_models = feasible.shape
        # nonzero on the (I, M, K) view yields entries already sorted by
        # (model, server, user) — the canonical layout.
        models, servers, users = np.nonzero(feasible.transpose(2, 0, 1))
        return cls.from_coo(
            feasible.shape, models=models, servers=servers, users=users
        )

    @classmethod
    def from_coo(
        cls,
        shape: Tuple[int, int, int],
        models: np.ndarray,
        servers: np.ndarray,
        users: np.ndarray,
    ) -> "SparseFeasibility":
        """Build from COO index arrays sorted by ``(model, server, user)``."""
        num_servers, num_users, num_models = (int(x) for x in shape)
        pair_codes = np.asarray(models, dtype=np.int64) * num_servers + np.asarray(
            servers, dtype=np.int64
        )
        counts = np.bincount(pair_codes, minlength=num_models * num_servers)
        pair_indptr = np.zeros(num_models * num_servers + 1, dtype=np.int64)
        np.cumsum(counts, out=pair_indptr[1:])
        return cls(
            (num_servers, num_users, num_models),
            pair_indptr=pair_indptr,
            entry_users=np.asarray(users, dtype=np.int32),
            entry_servers=np.asarray(servers, dtype=np.int32),
        )

    @classmethod
    def from_user_blocks(
        cls,
        shape: Tuple[int, int, int],
        blocks: "list[Tuple[np.ndarray, np.ndarray, np.ndarray]]",
    ) -> "SparseFeasibility":
        """Merge per-user-block COO fragments into one global bundle.

        ``blocks`` lists ``(models, servers, users)`` triples covering
        consecutive, disjoint, ascending user ranges, each sorted by
        ``(model, server, user)`` with *global* user indices — exactly
        what the chunked feasibility build emits. Because every user of
        block ``b`` precedes every user of block ``b+1``, scattering each
        block's entries into its pairs' running offsets reproduces the
        global ``(model, server, user)`` order without any global sort:
        the result equals :meth:`from_coo` on the concatenated, fully
        sorted COO bit for bit, in O(nnz).
        """
        num_servers, num_users, num_models = (int(x) for x in shape)
        rows = num_models * num_servers
        block_codes = []
        block_counts = []
        for models, servers, users in blocks:
            codes = np.asarray(models, dtype=np.int64) * num_servers + np.asarray(
                servers, dtype=np.int64
            )
            block_codes.append(codes)
            block_counts.append(np.bincount(codes, minlength=rows))
        pair_indptr = np.zeros(rows + 1, dtype=np.int64)
        if block_counts:
            np.cumsum(np.sum(block_counts, axis=0), out=pair_indptr[1:])
        nnz = int(pair_indptr[-1])
        entry_users = np.empty(nnz, dtype=np.int32)
        entry_servers = np.empty(nnz, dtype=np.int32)
        offsets = pair_indptr[:-1].copy()
        for (models, servers, users), codes, counts in zip(
            blocks, block_codes, block_counts
        ):
            if codes.size:
                # Rank of each entry within its pair's run inside this
                # (code-sorted) block: position minus the run's start.
                run_starts = np.concatenate(
                    ([0], np.cumsum(counts)[:-1])
                )
                dest = offsets[codes] + (
                    np.arange(codes.size, dtype=np.int64) - run_starts[codes]
                )
                entry_users[dest] = users
                entry_servers[dest] = servers
            offsets += counts
        return cls(
            (num_servers, num_users, num_models),
            pair_indptr=pair_indptr,
            entry_users=entry_users,
            entry_servers=entry_servers,
        )

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Exact structural equality: shape and every index array.

        The chunked-build contract (`chunked == unchunked for any chunk
        size`) is stated in terms of this comparison.
        """
        if not isinstance(other, SparseFeasibility):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.pair_indptr, other.pair_indptr)
            and np.array_equal(self.entry_users, other.entry_users)
            and np.array_equal(self.entry_servers, other.entry_servers)
        )

    #: Identity hash retained deliberately: bundles are used as cache
    #: keys by identity (e.g. weak memos) and are never deduplicated by
    #: value in a hash container, so value-equality must not change
    #: their hashing behaviour.
    __hash__ = object.__hash__

    # ------------------------------------------------------------------
    # Shape and density
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """``M``."""
        return self.shape[0]

    @property
    def num_users(self) -> int:
        """``K``."""
        return self.shape[1]

    @property
    def num_models(self) -> int:
        """``I``."""
        return self.shape[2]

    @property
    def nnz(self) -> int:
        """Number of feasible ``(m, k, i)`` triples."""
        return int(self.entry_users.shape[0])

    @property
    def density(self) -> float:
        """``nnz / (M·K·I)`` (0.0 for an empty tensor)."""
        total = self.shape[0] * self.shape[1] * self.shape[2]
        return self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def pair_users(self, server: int, model_index: int) -> np.ndarray:
        """Users feasibly served by ``(server, model)`` (a sorted view)."""
        row = model_index * self.shape[0] + server
        return self.entry_users[self.pair_indptr[row] : self.pair_indptr[row + 1]]

    def column_entries(self, model_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(servers, users)`` of every nonzero in one model column."""
        num_servers = self.shape[0]
        start = self.pair_indptr[model_index * num_servers]
        stop = self.pair_indptr[(model_index + 1) * num_servers]
        return self.entry_servers[start:stop], self.entry_users[start:stop]

    def entry_flat_index(self) -> np.ndarray:
        """``(nnz,)`` int64 flat index of every entry into a C-contiguous
        ``(K, I)`` user-by-model matrix (``user * I + model``).

        Lets the objective layer gather per-entry weights from the
        unserved-mass matrix with a single 1-D take instead of 2-D fancy
        indexing. Built lazily and cached (the bundle is immutable).
        """
        if self._entry_flat is None:
            num_servers, _, num_models = self.shape
            models = np.repeat(
                np.arange(num_models * num_servers, dtype=np.int64) // num_servers,
                np.diff(self.pair_indptr),
            )
            self._entry_flat = (
                self.entry_users.astype(np.int64) * num_models + models
            )
        return self._entry_flat

    def entry_pair_index(self) -> np.ndarray:
        """``(nnz,)`` int64 pair row (``model * M + server``) of every
        entry — the expansion of ``pair_indptr``. Lazily cached.
        """
        if self._entry_pair is None:
            num_servers, _, num_models = self.shape
            self._entry_pair = np.repeat(
                np.arange(num_models * num_servers, dtype=np.int64),
                np.diff(self.pair_indptr),
            )
        return self._entry_pair

    def to_dense(self) -> np.ndarray:
        """Scatter back to the dense ``(M, K, I)`` boolean tensor (exact)."""
        num_servers, num_users, num_models = self.shape
        dense = np.zeros((num_models, num_servers, num_users), dtype=bool)
        models = np.repeat(
            np.arange(num_models * num_servers, dtype=np.int64) // num_servers,
            np.diff(self.pair_indptr),
        )
        dense[models, self.entry_servers, self.entry_users] = True
        return np.ascontiguousarray(dense.transpose(1, 2, 0))

    def user_view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-user CSR: ``(user_indptr, user_models, user_servers)``.

        Entries are sorted by ``(user, model, server)``;
        user ``k``'s feasible (model, server) pairs live at positions
        ``user_indptr[k] : user_indptr[k + 1]``. Built lazily and cached.
        """
        if self._user_view is None:
            num_servers, num_users, num_models = self.shape
            models = np.repeat(
                np.arange(num_models * num_servers, dtype=np.int64) // num_servers,
                np.diff(self.pair_indptr),
            )
            order = np.lexsort(
                (self.entry_servers, models, self.entry_users)
            )
            counts = np.bincount(self.entry_users, minlength=num_users)
            user_indptr = np.zeros(num_users + 1, dtype=np.int64)
            np.cumsum(counts, out=user_indptr[1:])
            self._user_view = (
                user_indptr,
                models[order].astype(np.int32),
                self.entry_servers[order].copy(),
            )
        return self._user_view

    def server_coverage_counts(self) -> np.ndarray:
        """Per server, how many users it can feasibly serve *some* model.

        The sparse equivalent of ``feasible.any(axis=2).sum(axis=1)``
        (exact — integer counting). Cached.
        """
        if self._coverage_counts is None:
            num_servers, num_users, _ = self.shape
            codes = (
                self.entry_servers.astype(np.int64) * num_users
                + self.entry_users
            )
            unique_pairs = np.unique(codes)
            self._coverage_counts = np.bincount(
                (unique_pairs // num_users).astype(np.int64),
                minlength=num_servers,
            )
        return self._coverage_counts

    # ------------------------------------------------------------------
    # Objective-layer walks
    # ------------------------------------------------------------------
    def served_matrix(self, placement_matrix: np.ndarray) -> np.ndarray:
        """``(K, I)`` bool: is request (k, i) served under the placement?

        Walks only the placed pairs' user lists — ``O(nnz of placed
        columns)`` instead of the dense ``O(M·K·I)`` einsum — and returns
        exactly the same boolean matrix.
        """
        num_servers, num_users, num_models = self.shape
        if placement_matrix.shape != (num_servers, num_models):
            raise PlacementError(
                f"placement shape {placement_matrix.shape} does not match "
                f"feasibility {(num_servers, num_models)}"
            )
        served = np.zeros((num_users, num_models), dtype=bool)
        placed_servers, placed_models = np.nonzero(placement_matrix)
        for server, model_index in zip(placed_servers, placed_models):
            served[self.pair_users(int(server), int(model_index)), model_index] = True
        return served

    def served_matrix_block(
        self, placement_matrix: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Rows ``start:stop`` of :meth:`served_matrix`, exactly.

        Each pair's user list is sorted ascending, so the users inside
        ``[start, stop)`` form one contiguous run found by two binary
        searches — the block walk touches only those entries, keeping the
        served scratch ``(stop - start, I)`` instead of ``(K, I)``. The
        streaming evaluator folds these blocks one at a time.
        """
        num_servers, num_users, num_models = self.shape
        if placement_matrix.shape != (num_servers, num_models):
            raise PlacementError(
                f"placement shape {placement_matrix.shape} does not match "
                f"feasibility {(num_servers, num_models)}"
            )
        if not 0 <= start <= stop <= num_users:
            raise PlacementError(
                f"user block [{start}, {stop}) out of range for K={num_users}"
            )
        served = np.zeros((stop - start, num_models), dtype=bool)
        placed_servers, placed_models = np.nonzero(placement_matrix)
        for server, model_index in zip(placed_servers, placed_models):
            users = self.pair_users(int(server), int(model_index))
            lo, hi = np.searchsorted(users, (start, stop))
            served[users[lo:hi] - start, model_index] = True
        return served

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SparseFeasibility(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )
