"""TrimCaching Spec — the paper's Algorithm 1 + Algorithm 2.

The special case assumes a small, scale-independent number of shared
parameter blocks (models fine-tuned from a few pre-trained roots).
Algorithm 1 decomposes P1.1 into one sub-problem **P2.1m** per server,
solved *successively*: the indicator ``I2`` removes requests already served
by earlier servers, so per-server hit masses add up exactly (eq. 12).
Algorithm 2 solves each sub-problem by traversing shared-block
combinations ``N ∈ A`` and running a knapsack over the eligible models'
specific blocks within ``Q_m - d_N``.

Guarantees (Propositions 3-4, Theorems 1-2): with each sub-problem solved
(1-ε)-optimally the overall solution is within ``(1-ε)/2`` of optimal, in
time polynomial in ``M`` and ``I`` for fixed shared-block structure.

Two pipeline-level accelerations ride on top of the algorithms without
changing a single output bit:

* the combination set ``A`` and the per-library sub-problem context
  (eligibility matrix, specific weights) are memoised per library object,
  so a sweep that fixes the library across topologies pays for them once;
* ``workers=N`` fans each sub-problem's knapsack batch over a thread
  pool. Every knapsack is deterministic given its (values, weights,
  capacity), cross-worker pruning uses a strictly-weaker bound than the
  serial incumbent, and the reduction replays the serial first-strict-
  improvement rule in combination order — so the selected models are
  byte-identical to the serial traversal (asserted by the equivalence
  tests), merely computed concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dp import (
    KNAPSACK_BACKENDS,
    SharedCombination,
    ValueDpTables,
    enumerate_shared_combinations,
)
from repro.core.objective import CoverageTracker, hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import ConfigurationError, SolverError

# Utility masses are sums of non-negative products: exact zeros, no dust.


class _SubproblemContext:
    """Per-solve precomputation shared by all per-server sub-problems.

    The seed implementation rebuilt, *per server*, each model's shared
    block set, its specific-block weight and — per combination — the
    eligible model list via Python subset checks (``O(M · |A| · I)`` set
    walks overall). All of that is server-independent, so it is built
    once per solve here, with eligibility as a dense ``(|A|, I)`` matrix.
    """

    #: Combination chunk size for the eligibility matmul (bounds the
    #: float32 temporaries to a few MB even at the |A| guard limit).
    CHUNK = 4096

    def __init__(
        self, instance: PlacementInstance, combos: Sequence[SharedCombination]
    ) -> None:
        index = instance.block_index
        shared_ids = sorted(instance.library.shared_block_ids)
        shared_pos = {block_id: pos for pos, block_id in enumerate(shared_ids)}
        num_shared = len(shared_ids)

        # (I, B_shared) bool: each model's shared blocks.
        shared_cols = (
            [index.block_pos[b] for b in shared_ids] if shared_ids else []
        )
        shared_member = index.member[:, shared_cols]
        shared_sizes = index.sizes[shared_cols]
        #: ``D_N(i) = D_i - d_{N,i}`` — the specific-block footprint,
        #: independent of N because a model is only eligible when ALL its
        #: shared blocks are in N.
        self.specific_weight = index.model_sizes - shared_member @ shared_sizes

        #: ``d_N`` per combination.
        self.combo_sizes = np.array(
            [combo.size_bytes for combo in combos], dtype=np.int64
        )
        combo_mask = np.zeros((len(combos), num_shared), dtype=bool)
        for row, combo in enumerate(combos):
            if combo.blocks:
                combo_mask[row, [shared_pos[b] for b in combo.blocks]] = True

        #: ``(|A|, I)`` bool: are ALL of model i's shared blocks in N?
        self.eligible = np.zeros((len(combos), instance.num_models), dtype=bool)
        shared_f = shared_member.astype(np.float32)
        for start in range(0, len(combos), self.CHUNK):
            stop = min(start + self.CHUNK, len(combos))
            # Count of model-shared blocks *missing* from each combo;
            # exact in float32 (counts are far below 2**24).
            missing = (~combo_mask[start:stop]).astype(np.float32) @ shared_f.T
            self.eligible[start:stop] = missing == 0.0


#: Per-library memo of sub-problem contexts, keyed by the combination
#: settings. The context depends only on library structure (block
#: membership, sizes) and the combination set — both fixed per library —
#: so instances sharing a library (every sweep topology) reuse it.
_CONTEXT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class TrimCachingSpec:
    """Algorithms 1+2: successive greedy with combination-indexed DP.

    Parameters
    ----------
    epsilon:
        Rounding parameter of Algorithm 2 (paper default 0.1). ``0``
        requests exact per-sub-problem solutions (branch-and-bound
        backend, as in the paper's Fig. 6 study).
    backend:
        Knapsack backend: ``"value_dp"`` (the paper's rounded DP),
        ``"weight_dp"``, or ``"exact"``. Defaults to ``"value_dp"`` for
        ``epsilon > 0`` and ``"exact"`` for ``epsilon == 0``.
    combinations:
        Combination-set mode passed to
        :func:`~repro.core.dp.enumerate_shared_combinations`.
    max_combinations:
        Abort threshold for ``|A|`` (the general case blows this up —
        exactly why Algorithm 3 exists).
    server_order:
        Order in which sub-problems are solved: ``"index"`` (the paper),
        ``"capacity"`` (largest first) or ``"coverage"`` (most associated
        users first) — exposed for the ablation study.
    workers:
        Fan each sub-problem's knapsack batch across this many threads.
        ``None``/``1`` keeps the serial traversal; any value produces
        byte-identical selections (see the module docstring).
    engine:
        Coverage engine for the successive ``I2`` bookkeeping:
        ``"dense"`` (bit-pinned to the seed), ``"sparse"`` (O(nnz) CSR
        walks), ``"compiled"`` (Numba kernels when available, numpy
        otherwise) or ``"auto"``.
    fallback:
        What ``value_dp`` falls back to when its rounded table blows up:
        ``"weight_dp"`` keeps the legacy quantised-DP → branch-and-bound
        chain (the default — that chain's output is part of the pinned
        seed series), ``"best_first"`` tries the exact best-first
        branch-and-bound first and only drops to the legacy rungs if its
        node budget overruns.
    knapsack_cache:
        Memoise the rounded value-DP tables per filtered sub-instance
        across combinations and servers (byte-identical selections;
        disable only to benchmark the uncached traversal).
    prefix_prune:
        Skip knapsacks whose density-ordered LP prefix bound — a
        conservative upper bound on the combo's optimum — cannot
        strictly beat the incumbent mass. Selection-transparent;
        disable only for benchmarking.
    reuse_library_cache:
        Memoise the combination set and sub-problem context per library
        (identical outputs; disable only to benchmark the uncached
        pipeline).
    """

    name = "TrimCaching Spec"

    def __init__(
        self,
        epsilon: float = 0.1,
        backend: Optional[str] = None,
        combinations: str = "auto",
        max_combinations: int = 200_000,
        server_order: str = "index",
        workers: Optional[int] = None,
        engine: str = "dense",
        fallback: str = "weight_dp",
        knapsack_cache: bool = True,
        prefix_prune: bool = True,
        reuse_library_cache: bool = True,
    ) -> None:
        if epsilon < 0 or epsilon > 1:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
        if backend is None:
            backend = "exact" if epsilon == 0 else "value_dp"
        if backend not in KNAPSACK_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {sorted(KNAPSACK_BACKENDS)}, got {backend!r}"
            )
        if backend == "value_dp" and epsilon == 0:
            raise ConfigurationError(
                "value_dp requires epsilon > 0; use backend='exact' for ε=0"
            )
        if server_order not in ("index", "capacity", "coverage"):
            raise ConfigurationError(
                f"server_order must be index|capacity|coverage, got {server_order!r}"
            )
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if engine not in ("dense", "sparse", "compiled", "auto"):
            raise ConfigurationError(
                f"engine must be dense|sparse|compiled|auto, got {engine!r}"
            )
        if fallback not in ("weight_dp", "best_first"):
            raise ConfigurationError(
                f"fallback must be weight_dp|best_first, got {fallback!r}"
            )
        self.epsilon = epsilon
        self.backend = backend
        self.combinations = combinations
        self.max_combinations = max_combinations
        self.server_order = server_order
        self.workers = workers
        self.engine = engine
        self.fallback = fallback
        self.knapsack_cache = knapsack_cache
        self.prefix_prune = prefix_prune
        self.reuse_library_cache = reuse_library_cache

    # ------------------------------------------------------------------
    def _ordered_servers(self, instance: PlacementInstance) -> List[int]:
        servers = list(range(instance.num_servers))
        if self.server_order == "capacity":
            servers.sort(key=lambda m: -int(instance.capacities[m]))
        elif self.server_order == "coverage":
            if instance.has_sparse or instance.is_sparse_primary:
                # Integer counting over the CSR — exactly the dense
                # any/sum, without densifying the tensor.
                coverage = instance.sparse_feasible.server_coverage_counts()
            else:
                coverage = instance.feasible.any(axis=2).sum(axis=1)
            servers.sort(key=lambda m: -int(coverage[m]))
        return servers

    def _context_for(
        self, instance: PlacementInstance, combos: Sequence[SharedCombination]
    ) -> _SubproblemContext:
        """The sub-problem context, memoised per library when enabled."""
        if not self.reuse_library_cache:
            return _SubproblemContext(instance, combos)
        per_library: Dict = _CONTEXT_CACHE.setdefault(instance.library, {})
        key = (self.combinations, self.max_combinations)
        context = per_library.get(key)
        if context is None:
            context = _SubproblemContext(instance, combos)
            per_library[key] = context
        return context

    def _run_knapsack(
        self,
        values: Sequence[float],
        weights: Sequence[int],
        capacity: int,
        tables: Optional[ValueDpTables] = None,
    ) -> Tuple[float, List[int]]:
        solver = KNAPSACK_BACKENDS[self.backend]
        if self.backend == "value_dp":
            try:
                if tables is not None:
                    return tables.solve(values, weights, capacity)
                return solver(values, weights, capacity, epsilon=self.epsilon)
            except SolverError:
                # The rounded value table blew up (wide demand spread at a
                # small ε, typical for Zipf demand).
                if self.fallback == "best_first":
                    # Best-first expands only nodes whose LP bound beats
                    # the incumbent — exact, and usually far cheaper than
                    # the quantised DP on exactly these instances. Its
                    # node budget bails out to the legacy rungs.
                    try:
                        return KNAPSACK_BACKENDS["best_first"](
                            values, weights, capacity
                        )
                    except SolverError:
                        pass
                # Legacy chain: the weight-quantised DP at ~800 capacity
                # units — exact up to <=1.25% capacity slack — and
                # finally branch-and-bound.
                try:
                    quantum = max(1, capacity // 800)
                    return KNAPSACK_BACKENDS["weight_dp"](
                        values, weights, capacity, quantum=quantum
                    )
                except SolverError:
                    return KNAPSACK_BACKENDS["exact"](values, weights, capacity)
        return solver(values, weights, capacity)

    # ------------------------------------------------------------------
    def solve_subproblem(
        self,
        instance: PlacementInstance,
        server: int,
        utilities: np.ndarray,
        combos: Sequence[SharedCombination],
        context: Optional[_SubproblemContext] = None,
        pool: Optional[ThreadPoolExecutor] = None,
        tables: Optional[ValueDpTables] = None,
    ) -> Tuple[float, List[int]]:
        """Algorithm 2 on sub-problem P2.1m.

        Parameters
        ----------
        utilities:
            ``u(m, i)`` of eq. (14) for this server — demand mass served
            per model, already excluding requests earlier servers covered.
        combos:
            The combination set ``A``.
        context:
            Server-independent precomputation (eligibility matrix,
            specific weights). Built on the fly when absent; ``solve``
            builds it once and shares it across all servers.
        pool:
            Thread pool for the knapsack batch; ``None`` runs the serial
            traversal. ``solve`` owns one pool per call when
            ``workers > 1``. Both paths select identical models.
        tables:
            Memoised value-DP tables shared across combinations and
            servers; ``solve`` owns one per call when
            ``knapsack_cache`` is enabled. ``None`` solves uncached.

        Returns
        -------
        (best_mass, selected_model_indices)
        """
        if context is None:
            context = _SubproblemContext(instance, combos)
        capacity = int(instance.capacities[server])

        # Candidate combos: fit the capacity and can serve some positive
        # utility. Each candidate's utility sum over its eligible models
        # is an upper bound on what its knapsack can achieve; traversing
        # high-potential combos first lets the bound prune the rest. This
        # changes nothing about which combo wins — only how many
        # knapsacks actually run.
        positive = utilities > 0.0
        eligible_pos = context.eligible & positive[None, :]
        candidate_rows = np.flatnonzero(
            (context.combo_sizes <= capacity) & eligible_pos.any(axis=1)
        )
        if len(candidate_rows) == 0:
            return 0.0, []
        # One row-major nonzero pass instead of one flatnonzero per row;
        # np.nonzero yields each row's columns in ascending order, so the
        # per-row arrays are exactly the former per-row flatnonzero.
        candidate_eligible = eligible_pos[candidate_rows]
        nz_rows, nz_cols = np.nonzero(candidate_eligible)
        eligible_per_row = np.split(
            nz_cols, np.searchsorted(nz_rows, np.arange(1, len(candidate_rows)))
        )
        # Bounds via Python float sums in ascending-index order — the
        # seed's exact accumulation, so sort order and pruning cannot
        # drift from it by a rounding ulp (a BLAS matvec here can).
        bounds = [
            float(sum(utilities[index] for index in eligible))
            for eligible in eligible_per_row
        ]
        # Stable sort: ties keep combination enumeration order, exactly
        # like the seed's stable list sort.
        order = np.argsort(-np.asarray(bounds, dtype=float), kind="stable")
        lp_guard = None
        if self.prefix_prune and len(candidate_rows) > 1:
            lp_guard = self._prefix_guards(
                utilities, context, candidate_eligible, candidate_rows, capacity
            )

        def run_rank(rank: int) -> Tuple[float, List[int]]:
            pos = order[rank]
            eligible = eligible_per_row[pos]
            combo_capacity = capacity - int(
                context.combo_sizes[candidate_rows[pos]]
            )
            if tables is not None and self.backend == "value_dp":
                mass, chosen = self._run_knapsack(
                    utilities[eligible],
                    context.specific_weight[eligible],
                    combo_capacity,
                    tables=tables,
                )
            else:
                values = [float(utilities[index]) for index in eligible]
                weights = [
                    int(context.specific_weight[index]) for index in eligible
                ]
                mass, chosen = self._run_knapsack(values, weights, combo_capacity)
            return mass, [int(eligible[p]) for p in chosen]

        if pool is not None and len(order) > 1:
            return self._traverse_parallel(bounds, order, run_rank, pool, lp_guard)

        best_mass = 0.0
        best_selection: List[int] = []
        for rank in range(len(order)):
            pos = order[rank]
            if bounds[pos] <= best_mass:
                break  # sorted: no later combo can beat the incumbent
            if lp_guard is not None and lp_guard[pos] <= best_mass:
                # The combo's knapsack optimum is at most its LP prefix
                # bound: it cannot strictly improve, and only strict
                # improvements ever change the selection. Skip it.
                continue
            mass, selection = run_rank(rank)
            if mass > best_mass:
                best_mass = mass
                best_selection = selection
        return best_mass, best_selection

    # ------------------------------------------------------------------
    @staticmethod
    def _prefix_guards(
        utilities: np.ndarray,
        context: _SubproblemContext,
        candidate_eligible: np.ndarray,
        candidate_rows: np.ndarray,
        capacity: int,
    ) -> np.ndarray:
        """Per-candidate LP prefix bounds on the knapsack optimum.

        For each candidate combo, greedily fill its residual capacity
        with eligible items in decreasing value density and add the
        *full* value of the first item that no longer fits — the
        classical LP-relaxation upper bound, rounded up. Computed as one
        masked cumulative sum over the density-sorted item axis for all
        candidates at once. A relative safety margin covers the float
        reduction error, so a combo is only skipped when its true
        achievable mass provably cannot exceed the incumbent — pruning
        with these bounds is selection-transparent.
        """
        specific = context.specific_weight.astype(float)
        density = utilities / np.maximum(specific, 1e-12)
        perm = np.argsort(-density, kind="stable")
        sorted_weights = specific[perm]
        sorted_values = utilities[perm]
        eligible_sorted = candidate_eligible[:, perm]
        cum_weight = np.cumsum(eligible_sorted * sorted_weights, axis=1)
        cum_value = np.cumsum(eligible_sorted * sorted_values, axis=1)
        residual = (capacity - context.combo_sizes[candidate_rows]).astype(float)
        # cum_weight is non-decreasing along the item axis, so the fits
        # mask is a prefix and its sum is the prefix length.
        prefix_len = (cum_weight <= residual[:, None]).sum(axis=1)
        rows = np.arange(len(candidate_rows))
        prefix_value = np.where(
            prefix_len > 0, cum_value[rows, np.maximum(prefix_len - 1, 0)], 0.0
        )
        # The first position past the prefix is where cum_weight jumped
        # above the residual — necessarily an eligible item (ineligible
        # positions leave cum_weight flat), the LP break item.
        num_items = sorted_values.shape[0]
        break_value = np.where(
            prefix_len < num_items,
            sorted_values[np.minimum(prefix_len, num_items - 1)],
            0.0,
        )
        return (prefix_value + break_value) * (1.0 + 1e-9)

    # ------------------------------------------------------------------
    def _traverse_parallel(
        self,
        bounds: Sequence[float],
        order: np.ndarray,
        run_rank,
        pool: ThreadPoolExecutor,
        lp_guard: Optional[np.ndarray] = None,
    ) -> Tuple[float, List[int]]:
        """Fan the knapsack batch over ``pool``, byte-identical reduce.

        Ranks are dealt round-robin so every worker sees a descending
        subsequence of bounds. Pruning is provably conservative:

        * within a chunk, ``bound <= local incumbent`` prunes — the
          incumbent was achieved by an *earlier* rank, exactly the serial
          stopping rule restricted to a subsequence;
        * across chunks, only the strict ``bound < shared incumbent``
          prunes, because an equal-bound combo could still tie the final
          mass at an earlier rank and serial keeps the earliest winner.

        The LP prefix guards are applied per rank with the same two
        rules (``<=`` local, strict ``<`` shared) but *skip* instead of
        break — they are not sorted along the traversal. A skipped combo
        either cannot strictly beat an earlier-rank incumbent or cannot
        be the maximal mass at all, so the replay below is unaffected.

        The earliest rank achieving the maximal mass is therefore always
        computed, and the in-order first-strict-improvement scan below
        returns exactly the serial traversal's selection.
        """
        # Chunk count only shapes the work split — any value reduces to
        # the same selection — so a private-attr fallback is harmless.
        num_workers = max(
            self.workers or getattr(pool, "_max_workers", 0) or 1, 1
        )
        # Plain cell, racy check-then-set: a stale or lost update can only
        # LOWER the observed incumbent, which weakens pruning (extra
        # knapsacks run) but can never prune a combo the serial traversal
        # would have computed — correctness needs no atomicity here.
        shared_best = [0.0]

        def run_chunk(start: int) -> List[Tuple[int, float, List[int]]]:
            results: List[Tuple[int, float, List[int]]] = []
            local_best = 0.0
            for rank in range(start, len(order), num_workers):
                pos = order[rank]
                bound = bounds[pos]
                if bound <= local_best or bound < shared_best[0]:
                    break  # bounds descend within the chunk
                if lp_guard is not None and (
                    lp_guard[pos] <= local_best or lp_guard[pos] < shared_best[0]
                ):
                    continue
                mass, selection = run_rank(rank)
                results.append((rank, mass, selection))
                if mass > local_best:
                    local_best = mass
                if mass > shared_best[0]:
                    shared_best[0] = mass
            return results

        futures = [
            pool.submit(run_chunk, start) for start in range(num_workers)
        ]
        merged: List[Tuple[int, float, List[int]]] = []
        for future in futures:
            merged.extend(future.result())
        merged.sort(key=lambda entry: entry[0])
        best_mass = 0.0
        best_selection: List[int] = []
        for _, mass, selection in merged:
            if mass > best_mass:
                best_mass = mass
                best_selection = selection
        return best_mass, best_selection

    # ------------------------------------------------------------------
    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Run Algorithm 1 over all servers."""
        from repro import obs

        start = time.perf_counter()
        if not instance.library.specific_blocks_are_exclusive():
            raise SolverError(
                "Spec requires specific blocks to be model-exclusive "
                "(additive DP weights); this library violates that"
            )
        combos = enumerate_shared_combinations(
            instance.library,
            self.combinations,
            self.max_combinations,
            cache=self.reuse_library_cache,
        )
        context = self._context_for(instance, combos)
        placement = instance.new_placement()
        tracker = CoverageTracker(instance, engine=self.engine)
        per_server_mass: List[float] = []
        tables: Optional[ValueDpTables] = None
        if self.knapsack_cache and self.backend == "value_dp":
            tables = ValueDpTables(self.epsilon)
        pool: Optional[ThreadPoolExecutor] = None
        if self.workers is not None and self.workers > 1:
            pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            with obs.span(
                "solve.spec", backend=self.backend, engine=self.engine
            ):
                for server in self._ordered_servers(instance):
                    utilities = tracker.server_gains(server)  # I2 applied
                    mass, selection = self.solve_subproblem(
                        instance,
                        server,
                        utilities,
                        combos,
                        context,
                        pool=pool,
                        tables=tables,
                    )
                    for model_index in selection:
                        placement.add(server, model_index)
                    tracker.mark_server_models(server, selection)
                    per_server_mass.append(mass)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        stats = {
            "num_combinations": len(combos),
            "epsilon": self.epsilon,
            "backend": self.backend,
            "workers": self.workers or 1,
            "per_server_mass": per_server_mass,
        }
        if tables is not None:
            stats["knapsack_cache_hits"] = tables.hits
            stats["knapsack_cache_misses"] = tables.misses
            obs.count("repro_solver_knapsack_dp_hits_total", tables.hits)
            obs.count("repro_solver_knapsack_dp_misses_total", tables.misses)
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats=stats,
        )


@dataclass(frozen=True)
class SpecConfig:
    """Typed constructor knobs of :class:`TrimCachingSpec`.

    Registered in :data:`repro.api.SOLVERS` under ``"spec"``; declarative
    plans carry this dataclass instead of a constructed solver so they
    stay JSON-serialisable.
    """

    epsilon: float = 0.1
    backend: Optional[str] = None
    combinations: str = "auto"
    max_combinations: int = 200_000
    server_order: str = "index"
    workers: Optional[int] = None
    engine: str = "dense"
    fallback: str = "weight_dp"
    knapsack_cache: bool = True
    prefix_prune: bool = True
    reuse_library_cache: bool = True

    def build(self) -> "TrimCachingSpec":
        """Construct the solver (constructor performs validation)."""
        return TrimCachingSpec(
            epsilon=self.epsilon,
            backend=self.backend,
            combinations=self.combinations,
            max_combinations=self.max_combinations,
            server_order=self.server_order,
            workers=self.workers,
            engine=self.engine,
            fallback=self.fallback,
            knapsack_cache=self.knapsack_cache,
            prefix_prune=self.prefix_prune,
            reuse_library_cache=self.reuse_library_cache,
        )
