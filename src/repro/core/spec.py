"""TrimCaching Spec — the paper's Algorithm 1 + Algorithm 2.

The special case assumes a small, scale-independent number of shared
parameter blocks (models fine-tuned from a few pre-trained roots).
Algorithm 1 decomposes P1.1 into one sub-problem **P2.1m** per server,
solved *successively*: the indicator ``I2`` removes requests already served
by earlier servers, so per-server hit masses add up exactly (eq. 12).
Algorithm 2 solves each sub-problem by traversing shared-block
combinations ``N ∈ A`` and running a knapsack over the eligible models'
specific blocks within ``Q_m - d_N``.

Guarantees (Propositions 3-4, Theorems 1-2): with each sub-problem solved
(1-ε)-optimally the overall solution is within ``(1-ε)/2`` of optimal, in
time polynomial in ``M`` and ``I`` for fixed shared-block structure.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dp import (
    KNAPSACK_BACKENDS,
    SharedCombination,
    enumerate_shared_combinations,
)
from repro.core.objective import CoverageTracker, hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.core.result import SolverResult
from repro.errors import ConfigurationError, SolverError

# Utility masses are sums of non-negative products: exact zeros, no dust.


class _SubproblemContext:
    """Per-solve precomputation shared by all per-server sub-problems.

    The seed implementation rebuilt, *per server*, each model's shared
    block set, its specific-block weight and — per combination — the
    eligible model list via Python subset checks (``O(M · |A| · I)`` set
    walks overall). All of that is server-independent, so it is built
    once per solve here, with eligibility as a dense ``(|A|, I)`` matrix.
    """

    #: Combination chunk size for the eligibility matmul (bounds the
    #: float32 temporaries to a few MB even at the |A| guard limit).
    CHUNK = 4096

    def __init__(
        self, instance: PlacementInstance, combos: Sequence[SharedCombination]
    ) -> None:
        index = instance.block_index
        shared_ids = sorted(instance.library.shared_block_ids)
        shared_pos = {block_id: pos for pos, block_id in enumerate(shared_ids)}
        num_shared = len(shared_ids)

        # (I, B_shared) bool: each model's shared blocks.
        shared_cols = (
            [index.block_pos[b] for b in shared_ids] if shared_ids else []
        )
        shared_member = index.member[:, shared_cols]
        shared_sizes = index.sizes[shared_cols]
        #: ``D_N(i) = D_i - d_{N,i}`` — the specific-block footprint,
        #: independent of N because a model is only eligible when ALL its
        #: shared blocks are in N.
        self.specific_weight = index.model_sizes - shared_member @ shared_sizes

        #: ``d_N`` per combination.
        self.combo_sizes = np.array(
            [combo.size_bytes for combo in combos], dtype=np.int64
        )
        combo_mask = np.zeros((len(combos), num_shared), dtype=bool)
        for row, combo in enumerate(combos):
            if combo.blocks:
                combo_mask[row, [shared_pos[b] for b in combo.blocks]] = True

        #: ``(|A|, I)`` bool: are ALL of model i's shared blocks in N?
        self.eligible = np.zeros((len(combos), instance.num_models), dtype=bool)
        shared_f = shared_member.astype(np.float32)
        for start in range(0, len(combos), self.CHUNK):
            stop = min(start + self.CHUNK, len(combos))
            # Count of model-shared blocks *missing* from each combo;
            # exact in float32 (counts are far below 2**24).
            missing = (~combo_mask[start:stop]).astype(np.float32) @ shared_f.T
            self.eligible[start:stop] = missing == 0.0


class TrimCachingSpec:
    """Algorithms 1+2: successive greedy with combination-indexed DP.

    Parameters
    ----------
    epsilon:
        Rounding parameter of Algorithm 2 (paper default 0.1). ``0``
        requests exact per-sub-problem solutions (branch-and-bound
        backend, as in the paper's Fig. 6 study).
    backend:
        Knapsack backend: ``"value_dp"`` (the paper's rounded DP),
        ``"weight_dp"``, or ``"exact"``. Defaults to ``"value_dp"`` for
        ``epsilon > 0`` and ``"exact"`` for ``epsilon == 0``.
    combinations:
        Combination-set mode passed to
        :func:`~repro.core.dp.enumerate_shared_combinations`.
    max_combinations:
        Abort threshold for ``|A|`` (the general case blows this up —
        exactly why Algorithm 3 exists).
    server_order:
        Order in which sub-problems are solved: ``"index"`` (the paper),
        ``"capacity"`` (largest first) or ``"coverage"`` (most associated
        users first) — exposed for the ablation study.
    """

    name = "TrimCaching Spec"

    def __init__(
        self,
        epsilon: float = 0.1,
        backend: Optional[str] = None,
        combinations: str = "auto",
        max_combinations: int = 200_000,
        server_order: str = "index",
    ) -> None:
        if epsilon < 0 or epsilon > 1:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
        if backend is None:
            backend = "exact" if epsilon == 0 else "value_dp"
        if backend not in KNAPSACK_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {sorted(KNAPSACK_BACKENDS)}, got {backend!r}"
            )
        if backend == "value_dp" and epsilon == 0:
            raise ConfigurationError(
                "value_dp requires epsilon > 0; use backend='exact' for ε=0"
            )
        if server_order not in ("index", "capacity", "coverage"):
            raise ConfigurationError(
                f"server_order must be index|capacity|coverage, got {server_order!r}"
            )
        self.epsilon = epsilon
        self.backend = backend
        self.combinations = combinations
        self.max_combinations = max_combinations
        self.server_order = server_order

    # ------------------------------------------------------------------
    def _ordered_servers(self, instance: PlacementInstance) -> List[int]:
        servers = list(range(instance.num_servers))
        if self.server_order == "capacity":
            servers.sort(key=lambda m: -int(instance.capacities[m]))
        elif self.server_order == "coverage":
            coverage = instance.feasible.any(axis=2).sum(axis=1)
            servers.sort(key=lambda m: -int(coverage[m]))
        return servers

    def _run_knapsack(
        self, values: Sequence[float], weights: Sequence[int], capacity: int
    ) -> Tuple[float, List[int]]:
        solver = KNAPSACK_BACKENDS[self.backend]
        if self.backend == "value_dp":
            try:
                return solver(values, weights, capacity, epsilon=self.epsilon)
            except SolverError:
                # The rounded value table blew up (wide demand spread at a
                # small ε, typical for Zipf demand). Fall back to the
                # weight-quantised DP at ~800 capacity units — exact up to
                # <=1.25% capacity slack — and finally to branch-and-bound.
                try:
                    quantum = max(1, capacity // 800)
                    return KNAPSACK_BACKENDS["weight_dp"](
                        values, weights, capacity, quantum=quantum
                    )
                except SolverError:
                    return KNAPSACK_BACKENDS["exact"](values, weights, capacity)
        return solver(values, weights, capacity)

    # ------------------------------------------------------------------
    def solve_subproblem(
        self,
        instance: PlacementInstance,
        server: int,
        utilities: np.ndarray,
        combos: Sequence[SharedCombination],
        context: Optional[_SubproblemContext] = None,
    ) -> Tuple[float, List[int]]:
        """Algorithm 2 on sub-problem P2.1m.

        Parameters
        ----------
        utilities:
            ``u(m, i)`` of eq. (14) for this server — demand mass served
            per model, already excluding requests earlier servers covered.
        combos:
            The combination set ``A``.
        context:
            Server-independent precomputation (eligibility matrix,
            specific weights). Built on the fly when absent; ``solve``
            builds it once and shares it across all servers.

        Returns
        -------
        (best_mass, selected_model_indices)
        """
        if context is None:
            context = _SubproblemContext(instance, combos)
        capacity = int(instance.capacities[server])

        # Candidate combos: fit the capacity and can serve some positive
        # utility. Each candidate's utility sum over its eligible models
        # is an upper bound on what its knapsack can achieve; traversing
        # high-potential combos first lets the bound prune the rest. This
        # changes nothing about which combo wins — only how many
        # knapsacks actually run.
        positive = utilities > 0.0
        eligible_pos = context.eligible & positive[None, :]
        candidate_rows = np.flatnonzero(
            (context.combo_sizes <= capacity) & eligible_pos.any(axis=1)
        )
        # Bounds via Python float sums in ascending-index order — the
        # seed's exact accumulation, so sort order and pruning cannot
        # drift from it by a rounding ulp (a BLAS matvec here can).
        eligible_per_row = [
            np.flatnonzero(eligible_pos[row]) for row in candidate_rows
        ]
        bounds = [
            float(sum(utilities[index] for index in eligible))
            for eligible in eligible_per_row
        ]
        # Stable sort: ties keep combination enumeration order, exactly
        # like the seed's stable list sort.
        order = np.argsort(-np.asarray(bounds, dtype=float), kind="stable")

        best_mass = 0.0
        best_selection: List[int] = []
        for pos in order:
            row = candidate_rows[pos]
            if bounds[pos] <= best_mass:
                break  # sorted: no later combo can beat the incumbent
            eligible = eligible_per_row[pos]
            values = [float(utilities[index]) for index in eligible]
            weights = [int(context.specific_weight[index]) for index in eligible]
            mass, chosen = self._run_knapsack(
                values, weights, capacity - int(context.combo_sizes[row])
            )
            if mass > best_mass:
                best_mass = mass
                best_selection = [int(eligible[p]) for p in chosen]
        return best_mass, best_selection

    # ------------------------------------------------------------------
    def solve(self, instance: PlacementInstance) -> SolverResult:
        """Run Algorithm 1 over all servers."""
        start = time.perf_counter()
        if not instance.library.specific_blocks_are_exclusive():
            raise SolverError(
                "Spec requires specific blocks to be model-exclusive "
                "(additive DP weights); this library violates that"
            )
        combos = enumerate_shared_combinations(
            instance.library, self.combinations, self.max_combinations
        )
        context = _SubproblemContext(instance, combos)
        placement = instance.new_placement()
        tracker = CoverageTracker(instance)
        per_server_mass: List[float] = []
        for server in self._ordered_servers(instance):
            utilities = tracker.server_gains(server)  # u(m, i) with I2 applied
            mass, selection = self.solve_subproblem(
                instance, server, utilities, combos, context
            )
            for model_index in selection:
                placement.add(server, model_index)
            tracker.mark_server_models(server, selection)
            per_server_mass.append(mass)
        return SolverResult(
            placement=placement,
            hit_ratio=hit_ratio(instance, placement),
            runtime_s=time.perf_counter() - start,
            solver=self.name,
            stats={
                "num_combinations": len(combos),
                "epsilon": self.epsilon,
                "backend": self.backend,
                "per_server_mass": per_server_mass,
            },
        )
