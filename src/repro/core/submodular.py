"""Empirical submodularity checkers (Propositions 1-2 verification).

The paper proves that the objective ``U`` is submodular and the storage
constraints ``g_m`` are submodular over placement ground sets. These
helpers verify the defining inequality

    f(S ∪ {x}) - f(S)  >=  f(T ∪ {x}) - f(T)   for S ⊆ T, x ∉ T

either exhaustively (tiny ground sets) or by random sampling, and are used
by the property-based test suite. They work on arbitrary set functions so
they can also *refute* submodularity for functions that should fail.
"""

from __future__ import annotations

import itertools
from typing import Callable, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.objective import hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.utils.rng import SeedLike, as_generator

SetFunction = Callable[[FrozenSet], float]

#: Numerical slack for float comparisons.
_TOL = 1e-9


def marginal(f: SetFunction, base: FrozenSet, element) -> float:
    """``f(base ∪ {element}) - f(base)``."""
    return f(base | {element}) - f(base)


def is_submodular_exhaustive(
    f: SetFunction, ground_set: Sequence
) -> Tuple[bool, List[Tuple[FrozenSet, FrozenSet, object]]]:
    """Check every (S ⊆ T, x) triple; returns (ok, violations).

    Exponential — intended for ground sets of at most ~12 elements.
    """
    elements = list(ground_set)
    violations: List[Tuple[FrozenSet, FrozenSet, object]] = []
    for t_size in range(len(elements) + 1):
        for t_tuple in itertools.combinations(elements, t_size):
            t_set = frozenset(t_tuple)
            rest = [x for x in elements if x not in t_set]
            for s_size in range(t_size + 1):
                for s_tuple in itertools.combinations(t_tuple, s_size):
                    s_set = frozenset(s_tuple)
                    for x in rest:
                        if (
                            marginal(f, s_set, x)
                            < marginal(f, t_set, x) - _TOL
                        ):
                            violations.append((s_set, t_set, x))
    return not violations, violations


def is_submodular_sampled(
    f: SetFunction,
    ground_set: Sequence,
    trials: int = 200,
    seed: SeedLike = 0,
) -> bool:
    """Randomised submodularity check (no false negatives on failures found)."""
    elements = list(ground_set)
    if len(elements) < 2:
        return True
    rng = as_generator(seed)
    for _ in range(trials):
        x = elements[int(rng.integers(len(elements)))]
        others = [e for e in elements if e != x]
        t_size = int(rng.integers(0, len(others) + 1))
        t_list = [others[i] for i in rng.permutation(len(others))[:t_size]]
        t_set = frozenset(t_list)
        s_size = int(rng.integers(0, len(t_list) + 1))
        s_set = frozenset(t_list[:s_size])
        if marginal(f, s_set, x) < marginal(f, t_set, x) - _TOL:
            return False
    return True


def is_monotone_sampled(
    f: SetFunction,
    ground_set: Sequence,
    trials: int = 200,
    seed: SeedLike = 0,
) -> bool:
    """Randomised check that ``f`` never decreases when adding elements."""
    elements = list(ground_set)
    if not elements:
        return True
    rng = as_generator(seed)
    for _ in range(trials):
        size = int(rng.integers(0, len(elements)))
        base = frozenset(
            elements[i] for i in rng.permutation(len(elements))[:size]
        )
        x = elements[int(rng.integers(len(elements)))]
        if x in base:
            continue
        if marginal(f, base, x) < -_TOL:
            return False
    return True


# ----------------------------------------------------------------------
# Paper-specific set functions over the placement ground set
# ----------------------------------------------------------------------
def objective_set_function(instance: PlacementInstance) -> SetFunction:
    """``U`` as a set function over (server, model-index) pairs."""

    def evaluate(pairs: FrozenSet) -> float:
        placement = instance.new_placement()
        for server, model_index in pairs:
            placement.add(server, model_index)
        return hit_ratio(instance, placement)

    return evaluate


def storage_set_function(instance: PlacementInstance, server: int) -> SetFunction:
    """``g_m`` (eq. 7) as a set function over model indices."""

    def evaluate(model_indices: FrozenSet) -> float:
        return float(instance.dedup_storage(model_indices))

    return evaluate


def placement_ground_set(instance: PlacementInstance) -> List[Tuple[int, int]]:
    """All (server, model-index) pairs of an instance."""
    return [
        (server, model_index)
        for server in range(instance.num_servers)
        for model_index in range(instance.num_models)
    ]
