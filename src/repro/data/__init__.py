"""Static substrate data: dataset taxonomy and architecture size tables."""

from repro.data.cifar100 import (
    CIFAR100_TAXONOMY,
    all_classes,
    classes_of,
    superclass_of,
    superclasses,
)
from repro.data.resnet import (
    RESNET18,
    RESNET34,
    RESNET50,
    LayerSpec,
    ResNetSpec,
    resnet_layer_table,
)
from repro.data.transformer import TransformerSpec, transformer_layer_table

__all__ = [
    "CIFAR100_TAXONOMY",
    "all_classes",
    "classes_of",
    "superclass_of",
    "superclasses",
    "RESNET18",
    "RESNET34",
    "RESNET50",
    "LayerSpec",
    "ResNetSpec",
    "resnet_layer_table",
    "TransformerSpec",
    "transformer_layer_table",
]
