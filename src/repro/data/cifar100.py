"""CIFAR-100 superclass taxonomy.

The paper builds its model library from CIFAR-100: 20 superclasses of 5
classes each, one downstream classifier per class (100 per pre-trained
root). Table I additionally groups superclasses for the two-round
fine-tuning that creates the general-case library. This module carries the
standard taxonomy so generated models get meaningful names and Table I can
be reproduced verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Superclass -> its five member classes, per the CIFAR-100 definition.
CIFAR100_TAXONOMY: Dict[str, Tuple[str, str, str, str, str]] = {
    "aquatic mammals": ("beaver", "dolphin", "otter", "seal", "whale"),
    "fish": ("aquarium fish", "flatfish", "ray", "shark", "trout"),
    "flowers": ("orchid", "poppy", "rose", "sunflower", "tulip"),
    "food containers": ("bottle", "bowl", "can", "cup", "plate"),
    "fruit and vegetables": ("apple", "mushroom", "orange", "pear", "sweet pepper"),
    "household electrical devices": (
        "clock",
        "keyboard",
        "lamp",
        "telephone",
        "television",
    ),
    "household furniture": ("bed", "chair", "couch", "table", "wardrobe"),
    "insects": ("bee", "beetle", "butterfly", "caterpillar", "cockroach"),
    "large carnivores": ("bear", "leopard", "lion", "tiger", "wolf"),
    "large man-made outdoor things": (
        "bridge",
        "castle",
        "house",
        "road",
        "skyscraper",
    ),
    "large natural outdoor scenes": ("cloud", "forest", "mountain", "plain", "sea"),
    "large omnivores and herbivores": (
        "camel",
        "cattle",
        "chimpanzee",
        "elephant",
        "kangaroo",
    ),
    "medium-sized mammals": ("fox", "porcupine", "possum", "raccoon", "skunk"),
    "non-insect invertebrates": ("crab", "lobster", "snail", "spider", "worm"),
    "people": ("baby", "boy", "girl", "man", "woman"),
    "reptiles": ("crocodile", "dinosaur", "lizard", "snake", "turtle"),
    "small mammals": ("hamster", "mouse", "rabbit", "shrew", "squirrel"),
    "trees": ("maple tree", "oak tree", "palm tree", "pine tree", "willow tree"),
    "vehicles 1": ("bicycle", "bus", "motorcycle", "pickup truck", "train"),
    "vehicles 2": ("lawn mower", "rocket", "streetcar", "tank", "tractor"),
}

#: Table I of the paper: first-round fine-tuning superclass -> the
#: superclasses whose second-round models reuse its parameter blocks.
TABLE1_FINETUNE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "fruit and vegetables": ("flowers", "trees"),
    "medium-sized mammals": (
        "large carnivores",
        "large omnivores and herbivores",
        "people",
        "reptiles",
        "small mammals",
    ),
    "vehicles 2": ("large man-made outdoor things", "vehicles 1"),
}


def superclasses() -> List[str]:
    """All 20 superclass names in deterministic (alphabetical) order."""
    return sorted(CIFAR100_TAXONOMY)


def classes_of(superclass: str) -> List[str]:
    """The five classes of ``superclass``.

    Raises
    ------
    KeyError
        If ``superclass`` is not a CIFAR-100 superclass.
    """
    if superclass not in CIFAR100_TAXONOMY:
        raise KeyError(f"unknown CIFAR-100 superclass: {superclass!r}")
    return list(CIFAR100_TAXONOMY[superclass])


def all_classes() -> List[str]:
    """All 100 class names, ordered by superclass then class."""
    return [
        cls for superclass in superclasses() for cls in CIFAR100_TAXONOMY[superclass]
    ]


def superclass_of(cls: str) -> str:
    """Return the superclass containing class ``cls``.

    Raises
    ------
    KeyError
        If ``cls`` is not a CIFAR-100 class.
    """
    for superclass, members in CIFAR100_TAXONOMY.items():
        if cls in members:
            return superclass
    raise KeyError(f"unknown CIFAR-100 class: {cls!r}")
