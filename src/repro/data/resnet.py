"""Per-weight-tensor parameter tables for the ResNet family.

The paper's model library is built from ResNet-18/34/50 fine-tuned with
bottom-layer freezing, where one *parameter block* corresponds to one weight
tensor (conv weight, batch-norm affine pair, or the classifier head). The
paper's frozen-layer ranges imply the following tensor counts, which this
module reproduces exactly from the architecture definition:

====== ======= =====================
model  tensors paper's frozen range
====== ======= =====================
RN-18  41      [29, 40]
RN-34  73      [49, 72]
RN-50  107     [87, 106]
====== ======= =====================

We never materialise weights — only names and parameter counts — because
the placement problem consumes sizes and sharing structure alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LayerSpec:
    """One weight tensor of a network, in forward (bottom-up) order.

    Attributes
    ----------
    name:
        Dotted path mimicking the usual checkpoint naming.
    params:
        Number of scalar parameters in the tensor (incl. bias for the head).
    """

    name: str
    params: int

    def size_bytes(self, bytes_per_param: int = 4) -> int:
        """Storage footprint of this tensor (fp32 by default)."""
        if bytes_per_param <= 0:
            raise ValueError("bytes_per_param must be positive")
        return self.params * bytes_per_param


@dataclass(frozen=True)
class ResNetSpec:
    """Architecture hyper-parameters of one ResNet variant."""

    name: str
    stage_blocks: Tuple[int, int, int, int]
    bottleneck: bool
    feature_dim: int

    @property
    def expansion(self) -> int:
        """Output-channel expansion of a residual block (4 for bottleneck)."""
        return 4 if self.bottleneck else 1


RESNET18 = ResNetSpec("resnet18", (2, 2, 2, 2), bottleneck=False, feature_dim=512)
RESNET34 = ResNetSpec("resnet34", (3, 4, 6, 3), bottleneck=False, feature_dim=512)
RESNET50 = ResNetSpec("resnet50", (3, 4, 6, 3), bottleneck=True, feature_dim=2048)

#: Channel width of each of the four residual stages (pre-expansion).
_STAGE_WIDTHS = (64, 128, 256, 512)


def _conv(name: str, in_ch: int, out_ch: int, kernel: int) -> LayerSpec:
    return LayerSpec(name, kernel * kernel * in_ch * out_ch)


def _bn(name: str, channels: int) -> LayerSpec:
    return LayerSpec(name, 2 * channels)


def _basic_block(
    prefix: str, in_ch: int, out_ch: int, downsample: bool
) -> List[LayerSpec]:
    layers = [
        _conv(f"{prefix}.conv1", in_ch, out_ch, 3),
        _bn(f"{prefix}.bn1", out_ch),
        _conv(f"{prefix}.conv2", out_ch, out_ch, 3),
        _bn(f"{prefix}.bn2", out_ch),
    ]
    if downsample:
        layers.append(_conv(f"{prefix}.downsample.conv", in_ch, out_ch, 1))
        layers.append(_bn(f"{prefix}.downsample.bn", out_ch))
    return layers


def _bottleneck_block(
    prefix: str, in_ch: int, mid_ch: int, downsample: bool
) -> List[LayerSpec]:
    out_ch = mid_ch * 4
    layers = [
        _conv(f"{prefix}.conv1", in_ch, mid_ch, 1),
        _bn(f"{prefix}.bn1", mid_ch),
        _conv(f"{prefix}.conv2", mid_ch, mid_ch, 3),
        _bn(f"{prefix}.bn2", mid_ch),
        _conv(f"{prefix}.conv3", mid_ch, out_ch, 1),
        _bn(f"{prefix}.bn3", out_ch),
    ]
    if downsample:
        layers.append(_conv(f"{prefix}.downsample.conv", in_ch, out_ch, 1))
        layers.append(_bn(f"{prefix}.downsample.bn", out_ch))
    return layers


def resnet_layer_table(spec: ResNetSpec, num_classes: int = 100) -> List[LayerSpec]:
    """Enumerate every weight tensor of ``spec`` in forward order.

    The final entry is the classifier head (weight and bias folded into a
    single tensor entry), which is what a downstream fine-tune always
    replaces.

    Parameters
    ----------
    spec:
        One of :data:`RESNET18`, :data:`RESNET34`, :data:`RESNET50` (or a
        custom :class:`ResNetSpec`).
    num_classes:
        Output dimension of the classifier head (CIFAR-100 default).
    """
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    layers: List[LayerSpec] = [
        _conv("conv1", 3, 64, 7),
        _bn("bn1", 64),
    ]
    in_ch = 64
    for stage_index, (width, n_blocks) in enumerate(
        zip(_STAGE_WIDTHS, spec.stage_blocks), start=1
    ):
        for block_index in range(n_blocks):
            prefix = f"layer{stage_index}.{block_index}"
            out_ch = width * spec.expansion
            downsample = block_index == 0 and in_ch != out_ch
            if spec.bottleneck:
                layers.extend(_bottleneck_block(prefix, in_ch, width, downsample))
            else:
                layers.extend(_basic_block(prefix, in_ch, width, downsample))
            in_ch = out_ch
    layers.append(
        LayerSpec("fc", spec.feature_dim * num_classes + num_classes)
    )
    return layers


def total_params(spec: ResNetSpec, num_classes: int = 100) -> int:
    """Total scalar parameter count of the network."""
    return sum(layer.params for layer in resnet_layer_table(spec, num_classes))
