"""Synthetic decoder-only transformer layer table.

The paper motivates TrimCaching with LLMs fine-tuned through PEFT (LoRA),
where >99% of parameters are frozen and shared across downstream models.
This module provides a parameter table for a small decoder-only transformer
so the LoRA example and tests can build parameter-sharing libraries with an
LLM-shaped sharing profile (one huge shared backbone, tiny specific
adapters) without any ML framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data.resnet import LayerSpec


@dataclass(frozen=True)
class TransformerSpec:
    """Hyper-parameters of a decoder-only transformer.

    Attributes
    ----------
    name:
        Human-readable identifier.
    num_layers:
        Number of decoder blocks.
    hidden_dim:
        Model (residual stream) width.
    ffn_dim:
        Feed-forward inner width (usually ``4 * hidden_dim``).
    vocab_size:
        Token vocabulary size (drives the embedding/unembedding size).
    """

    name: str
    num_layers: int
    hidden_dim: int
    ffn_dim: int
    vocab_size: int

    def __post_init__(self) -> None:
        for field_name in ("num_layers", "hidden_dim", "ffn_dim", "vocab_size"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: A ~120M-parameter model: big enough that adapters are negligibly small.
TINY_LLM = TransformerSpec(
    "tiny-llm", num_layers=12, hidden_dim=768, ffn_dim=3072, vocab_size=32_000
)

#: A ~1.2B-parameter model in the Gemini-Nano size class the paper cites.
NANO_LLM = TransformerSpec(
    "nano-llm", num_layers=24, hidden_dim=2048, ffn_dim=8192, vocab_size=32_000
)


def transformer_layer_table(spec: TransformerSpec) -> List[LayerSpec]:
    """Enumerate the weight tensors of ``spec`` in forward order.

    Per decoder block: fused QKV projection, attention output projection,
    and the two feed-forward matrices. Embedding first, unembedding last
    (untied). Biases and layer norms are folded into the matrices they
    precede — block granularity, not exact checkpoint layout, is what the
    caching problem consumes.
    """
    layers: List[LayerSpec] = [
        LayerSpec("embed", spec.vocab_size * spec.hidden_dim)
    ]
    d, f = spec.hidden_dim, spec.ffn_dim
    for index in range(spec.num_layers):
        prefix = f"block{index}"
        layers.append(LayerSpec(f"{prefix}.attn.qkv", 3 * d * d))
        layers.append(LayerSpec(f"{prefix}.attn.out", d * d))
        layers.append(LayerSpec(f"{prefix}.ffn.up", d * f))
        layers.append(LayerSpec(f"{prefix}.ffn.down", f * d))
    layers.append(LayerSpec("unembed", spec.hidden_dim * spec.vocab_size))
    return layers


def lora_adapter_params(spec: TransformerSpec, rank: int) -> int:
    """Parameter count of a LoRA adapter applied to every projection.

    Each adapted matrix of shape ``(out, in)`` gains ``rank * (out + in)``
    parameters. We adapt the QKV, attention-output and both FFN matrices of
    every block, the common "all linear layers" recipe.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    d, f = spec.hidden_dim, spec.ffn_dim
    per_block = (
        rank * (3 * d + d)  # qkv
        + rank * (d + d)  # attn out
        + rank * (f + d)  # ffn up
        + rank * (d + f)  # ffn down
    )
    return spec.num_layers * per_block
