"""Exception hierarchy for the TrimCaching reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure. Sub-classes are
grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class LibraryError(ReproError, ValueError):
    """The model library is malformed (unknown blocks, duplicate ids, ...)."""


class TopologyError(ReproError, ValueError):
    """The network topology is malformed or a query refers to unknown nodes."""


class PlacementError(ReproError, ValueError):
    """A placement decision is inconsistent with its problem instance."""


class InfeasibleError(ReproError, RuntimeError):
    """A solver could not produce any feasible placement."""


class SolverError(ReproError, RuntimeError):
    """A solver failed for an internal reason (state blow-up, bad inputs)."""


class ServeError(ReproError, RuntimeError):
    """The serving layer was asked something it cannot satisfy
    (unsupported solver/engine, malformed event, bad route query)."""
