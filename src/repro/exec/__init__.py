"""Execution & artifact-store subsystem.

The layer between a declarative :class:`~repro.api.plan.ExperimentPlan`
and the solvers: *where* its task grid runs
(:mod:`repro.exec.backends` — serial, process pool, local cluster
shards, fault-tolerant remote socket workers, all bit-identical),
*whether it needs to run at all* (:mod:`repro.exec.store` — a
content-addressed cache of full results and per-task partials, keyed on
the canonical serialised plan plus a code-version salt), and *what
happens when the substrate fails* (:mod:`repro.exec.faults` +
:mod:`repro.exec.retry` — a deterministic/transient failure taxonomy,
bounded retries with deterministic backoff jitter, straggler
re-dispatch and graceful in-process degradation, plus a seeded
:class:`ChaosPolicy` fault-injection harness).

Entry points:

* :func:`execute_plan` — run a plan on a backend with optional caching,
  returning ``(ResultSet, ExecutionReport)``;
* ``repro.api.run_plan(plan, backend=..., store=...)`` — the same,
  report-less;
* ``python -m repro sweep --plan plan.json --backend remote
  --retries 3 --cache-dir .cache`` — the CLI front end (resumable,
  cache-hitting, crash-surviving).
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    LocalClusterBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)
from repro.exec.executor import (
    ExecutionReport,
    SweepTask,
    build_sweep_tasks,
    default_backend,
    execute_plan,
)
from repro.exec.faults import (
    ArtifactChaos,
    ChaosPolicy,
    ExecutionError,
    FaultStats,
    TaskError,
    TaskTimeout,
    WorkerLost,
    is_transient,
)
from repro.exec.remote import REMOTE_DEFAULT_RETRY, RemoteClusterBackend
from repro.exec.retry import NO_RETRY, RetryPolicy, default_retry_policy
from repro.exec.store import (
    CODE_VERSION_SALT,
    ArtifactStore,
    canonical_plan_payload,
    plan_cache_key,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "LocalClusterBackend",
    "RemoteClusterBackend",
    "make_backend",
    "ArtifactStore",
    "plan_cache_key",
    "canonical_plan_payload",
    "CODE_VERSION_SALT",
    "execute_plan",
    "ExecutionReport",
    "SweepTask",
    "build_sweep_tasks",
    "default_backend",
    "ExecutionError",
    "TaskError",
    "WorkerLost",
    "TaskTimeout",
    "is_transient",
    "FaultStats",
    "ChaosPolicy",
    "ArtifactChaos",
    "RetryPolicy",
    "NO_RETRY",
    "REMOTE_DEFAULT_RETRY",
    "default_retry_policy",
]
