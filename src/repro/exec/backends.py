"""Pluggable execution backends: *where* a task grid runs.

An :class:`ExecutionBackend` maps a pure, picklable task function over a
list of payloads and yields the results **in submission order**. That
contract is all the executors need: every task's inputs (including its
scenario seed) are fixed in the parent before submission, the task
function is deterministic, and results are folded in submission order —
so any backend produces results bit-identical to
:class:`SerialBackend`'s, whatever the placement of tasks on processes.

Three backends ship:

* :class:`SerialBackend` — in-process, lazily, one task at a time.
* :class:`ProcessBackend` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` fan-out (the generalisation of the former
  ``SweepRunner(workers=N)`` inline pool).
* :class:`LocalClusterBackend` — shards the task grid round-robin into
  ``shards`` groups, runs each shard as one long-lived worker-process
  job, and re-interleaves the shard outputs back into submission order —
  the shape of a cluster dispatcher, runnable on one machine.

Backends are deliberately ignorant of plans, scenarios and stores; they
see only ``(fn, payloads)``. New substrates (a queue consumer, an RPC
fan-out) plug in by implementing :meth:`ExecutionBackend.map`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.errors import ConfigurationError

#: CLI-facing backend names, in help-text order.
BACKEND_NAMES = ("serial", "process", "cluster")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution-substrate contract.

    ``map(fn, payloads)`` yields ``fn(payload)`` for every payload **in
    submission order**, lazily where the substrate allows it (the
    executors persist each task's result as soon as it is yielded, so a
    killed run resumes from the completed prefix).
    """

    #: Short stable name (``"serial"``, ``"process"``, ...).
    name: str

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield ``fn(payload)`` per payload, in submission order."""
        ...  # pragma: no cover - protocol body


class SerialBackend:
    """Run every task in-process, one at a time (the reference order)."""

    name = "serial"

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Lazily evaluate ``fn`` over ``payloads`` in order."""
        return (fn(payload) for payload in payloads)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "SerialBackend()"


class ProcessBackend:
    """Fan tasks over a local process pool, results in submission order.

    Parameters
    ----------
    workers:
        Pool width. ``chunksize`` batches consecutive payloads per
        round-trip (larger chunks amortise pickling of shared payload
        parts, e.g. a sweep point's model library).
    """

    name = "process"

    def __init__(self, workers: int = 2, chunksize: int = 1) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be at least 1, got {chunksize}"
            )
        self.workers = workers
        self.chunksize = chunksize

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield pool results lazily; order follows submission."""
        payloads = list(payloads)

        def _iterate() -> Iterator[Any]:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                try:
                    yield from pool.map(
                        fn, payloads, chunksize=self.chunksize
                    )
                except BaseException:
                    # A task failed or the consumer abandoned the
                    # iteration (GeneratorExit); cancel queued work so
                    # the pool shutdown in __exit__ doesn't grind
                    # through the whole remaining grid before the error
                    # can surface.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise

        return _iterate()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProcessBackend(workers={self.workers})"


def _run_shard(fn: Callable[[Any], Any], payloads: List[Any]) -> List[Any]:
    """Run one shard's payloads sequentially (module-level: picklable)."""
    return [fn(payload) for payload in payloads]


class LocalClusterBackend:
    """Shard the task grid across long-lived worker-process jobs.

    The grid is dealt round-robin into ``shards`` groups; each group runs
    as a single sequential job in the pool (one "node" of the pretend
    cluster), and the outputs are re-interleaved into submission order.
    Because every task's seed travels in its payload and the fold order
    is reconstructed exactly, the results are bit-identical to
    :class:`SerialBackend` — only the placement of work differs.

    Trade-off versus :class:`ProcessBackend`: a shard's outputs become
    available only when the whole shard job completes, so results reach
    the consumer — and therefore the artifact store's per-task
    persistence — at **shard granularity**. A killed cluster-backend
    sweep resumes from completed shards, not completed tasks; prefer
    ``process`` when fine-grained resume matters more than long-lived
    shard jobs.

    Parameters
    ----------
    shards:
        Number of shard jobs to cut the grid into.
    workers:
        Pool width (defaults to ``shards``: every shard gets a process).
    """

    name = "cluster"

    def __init__(self, shards: int = 2, workers: Optional[int] = None) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be at least 1, got {shards}")
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}"
            )
        self.shards = shards
        self.workers = workers if workers is not None else shards

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield shard-job results re-interleaved into submission order."""
        payloads = list(payloads)
        if not payloads:
            return iter(())
        shards = min(self.shards, len(payloads))
        assignment = [index % shards for index in range(len(payloads))]
        shard_payloads: List[List[Any]] = [[] for _ in range(shards)]
        for index, payload in enumerate(payloads):
            shard_payloads[assignment[index]].append(payload)

        def _iterate() -> Iterator[Any]:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_run_shard, fn, shard)
                    for shard in shard_payloads
                ]
                try:
                    cursors = [0] * shards
                    for index in range(len(payloads)):
                        shard = assignment[index]
                        shard_results = futures[shard].result()
                        yield shard_results[cursors[shard]]
                        cursors[shard] += 1
                except BaseException:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise

        return _iterate()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LocalClusterBackend(shards={self.shards}, "
            f"workers={self.workers})"
        )


def make_backend(name: str, workers: int = 1) -> ExecutionBackend:
    """Construct a backend from its CLI name.

    ``workers`` is the parallelism knob: pool width for ``process``,
    shard/pool count for ``cluster``; ``serial`` ignores it.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers=max(1, workers))
    if name == "cluster":
        return LocalClusterBackend(shards=max(1, workers))
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
