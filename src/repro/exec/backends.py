"""Pluggable execution backends: *where* a task grid runs.

An :class:`ExecutionBackend` maps a pure, picklable task function over a
list of payloads and yields the results **in submission order**. That
contract is all the executors need: every task's inputs (including its
scenario seed) are fixed in the parent before submission, the task
function is deterministic, and results are folded in submission order —
so any backend produces results bit-identical to
:class:`SerialBackend`'s, whatever the placement of tasks on processes.

Four backends ship:

* :class:`SerialBackend` — in-process, lazily, one task at a time.
* :class:`ProcessBackend` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` fan-out (the generalisation of the former
  ``SweepRunner(workers=N)`` inline pool).
* :class:`LocalClusterBackend` — shards the task grid round-robin into
  ``shards`` groups, runs each shard as one long-lived worker-process
  job, and re-interleaves the shard outputs back into submission order —
  the shape of a cluster dispatcher, runnable on one machine.
* :class:`~repro.exec.remote.RemoteClusterBackend` — long-lived socket
  workers with heartbeats, liveness monitoring and straggler
  re-dispatch (see :mod:`repro.exec.remote`).

All of them speak the fault taxonomy of :mod:`repro.exec.faults`: a
worker death surfaces as a typed
:class:`~repro.exec.faults.ExecutionError` naming the failing task
index (never an opaque ``BrokenProcessPool``), a
:class:`~repro.exec.retry.RetryPolicy` governs transient-failure
retries (pool recreation + resubmission here), and when retries are
exhausted the policy's ``degrade_in_process`` rung can finish the work
in the parent instead of failing the sweep. Task-function exceptions
are deterministic and always fail fast as
:class:`~repro.exec.faults.TaskError`.

Backends are deliberately ignorant of plans, scenarios and stores; they
see only ``(fn, payloads)``. New substrates (a queue consumer, an RPC
fan-out) plug in by implementing :meth:`ExecutionBackend.map`.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro import obs
from repro.errors import ConfigurationError
from repro.exec.faults import FaultStats, TaskError, TaskFailure, WorkerLost
from repro.exec.retry import NO_RETRY, RetryPolicy

#: CLI-facing backend names, in help-text order.
BACKEND_NAMES = ("serial", "process", "cluster", "remote")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution-substrate contract.

    ``map(fn, payloads)`` yields ``fn(payload)`` for every payload **in
    submission order**, lazily where the substrate allows it (the
    executors persist each task's result as soon as it is yielded, so a
    killed run resumes from the completed prefix).
    """

    #: Short stable name (``"serial"``, ``"process"``, ...).
    name: str

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield ``fn(payload)`` per payload, in submission order."""
        ...  # pragma: no cover - protocol body


class SerialBackend:
    """Run every task in-process, one at a time (the reference order)."""

    name = "serial"

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Lazily evaluate ``fn`` over ``payloads`` in order."""
        if obs.active():
            wrapped = obs.wrap_task(fn)

            def _instrumented() -> Iterator[Any]:
                for payload in payloads:
                    submitted = time.time()
                    yield obs.absorb(wrapped(payload), submitted)

            return _instrumented()
        return (fn(payload) for payload in payloads)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "SerialBackend()"


def _run_indexed_chunk(
    fn: Callable[[Any], Any], start_index: int, payloads: List[Any]
) -> List[Any]:
    """Run consecutive payloads in a worker (module-level: picklable).

    A task-function exception is re-raised as a picklable
    :class:`~repro.exec.faults.TaskFailure` carrying the exact grid
    index, so the parent can fail fast naming the right task even when
    several tasks share one submission.
    """
    results = []
    for offset, payload in enumerate(payloads):
        try:
            results.append(fn(payload))
        except TaskFailure:
            raise
        except BaseException as exc:
            raise TaskFailure(
                start_index + offset, f"{type(exc).__name__}: {exc}"
            ) from None
    return results


def _future_is_broken(future) -> bool:
    """Does this future need resubmission after a pool breakage?"""
    if not future.done() or future.cancelled():
        return True
    return future.exception() is not None


class ProcessBackend:
    """Fan tasks over a local process pool, results in submission order.

    Parameters
    ----------
    workers:
        Pool width. ``chunksize`` batches consecutive payloads per
        round-trip (larger chunks amortise pickling of shared payload
        parts, e.g. a sweep point's model library).
    retry:
        :class:`~repro.exec.retry.RetryPolicy` for pool breakage (a
        worker process died). Default :data:`~repro.exec.retry.NO_RETRY`
        fails fast with a typed :class:`~repro.exec.faults.WorkerLost`
        naming the failing task index; with retries the pool is
        recreated and unfinished submissions re-dispatched, and the
        policy's ``degrade_in_process`` rung finishes stubborn chunks in
        the parent. Attempt accounting is per awaited chunk.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        chunksize: int = 1,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be at least 1, got {chunksize}"
            )
        self.workers = workers
        self.chunksize = chunksize
        self.retry = retry if retry is not None else NO_RETRY
        self.stats = FaultStats()

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield pool results lazily; order follows submission."""
        payloads = list(payloads)
        self.stats = stats = FaultStats()
        retry = self.retry
        if not payloads:
            return iter(())
        # When observability is on, workers run the wrapped fn (per-task
        # envelopes) and the parent absorbs each envelope at yield time;
        # when off, fn is untouched and the path below is unchanged.
        fn = obs.wrap_task(fn)
        chunks: List[Tuple[int, List[Any]]] = [
            (start, payloads[start : start + self.chunksize])
            for start in range(0, len(payloads), self.chunksize)
        ]
        submitted_at: List[float] = [0.0] * len(chunks)

        def _iterate() -> Iterator[Any]:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            futures: dict = {}

            def submit(to_pool, indices) -> None:
                for ci in indices:
                    start, chunk = chunks[ci]
                    submitted_at[ci] = time.time()
                    futures[ci] = to_pool.submit(
                        _run_indexed_chunk, fn, start, chunk
                    )

            def degrade(ci: int) -> List[Any]:
                stats.degraded += len(chunks[ci][1])
                obs.instant("exec.degraded", task=chunks[ci][0])
                submitted_at[ci] = time.time()
                try:
                    return _run_indexed_chunk(fn, chunks[ci][0], chunks[ci][1])
                except TaskFailure as failure:
                    raise TaskError(
                        "task function raised during in-process "
                        f"degradation: {failure.description}",
                        task_index=failure.task_index,
                    ) from failure

            submit(pool, range(len(chunks)))
            attempts = [0] * len(chunks)
            try:
                for ci in range(len(chunks)):
                    while True:
                        try:
                            results = futures[ci].result()
                            break
                        except TaskFailure as failure:
                            raise TaskError(
                                "task function raised in worker: "
                                f"{failure.description}",
                                task_index=failure.task_index,
                            ) from failure
                        except BrokenExecutor as exc:
                            start = chunks[ci][0]
                            stats.workers_lost += 1
                            obs.instant("exec.worker_lost", task=start)
                            attempts[ci] += 1
                            if retry.exhausted(attempts[ci]):
                                if retry.degrade_in_process:
                                    results = degrade(ci)
                                    break
                                raise WorkerLost(
                                    "worker pool broke while running "
                                    f"task {start} (attempt "
                                    f"{attempts[ci]}/{retry.max_attempts})",
                                    task_index=start,
                                ) from exc
                            stats.retries += 1
                            obs.instant(
                                "exec.retry",
                                task=start,
                                attempt=attempts[ci],
                            )
                            time.sleep(retry.delay_s(attempts[ci], start))
                            # The breakage poisoned every unfinished
                            # future: recreate the pool and re-dispatch.
                            pool.shutdown(wait=False, cancel_futures=True)
                            pool = ProcessPoolExecutor(
                                max_workers=self.workers
                            )
                            submit(
                                pool,
                                [
                                    index
                                    for index in range(ci, len(chunks))
                                    if _future_is_broken(futures[index])
                                ],
                            )
                    for value in results:
                        yield obs.absorb(value, submitted_at[ci])
            finally:
                # Normal completion, an error, or the consumer
                # abandoning the iteration (GeneratorExit): cancel
                # queued work so shutdown doesn't grind through the
                # whole remaining grid.
                pool.shutdown(wait=False, cancel_futures=True)

        return _iterate()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProcessBackend(workers={self.workers})"


def _run_indexed_shard(
    fn: Callable[[Any], Any], indexed_payloads: List[Tuple[int, Any]]
) -> List[Any]:
    """Run one shard's (index, payload) pairs sequentially (picklable)."""
    results = []
    for index, payload in indexed_payloads:
        try:
            results.append(fn(payload))
        except TaskFailure:
            raise
        except BaseException as exc:
            raise TaskFailure(
                index, f"{type(exc).__name__}: {exc}"
            ) from None
    return results


class LocalClusterBackend:
    """Shard the task grid across long-lived worker-process jobs.

    The grid is dealt round-robin into ``shards`` groups; each group runs
    as a single sequential job in the pool (one "node" of the pretend
    cluster), and the outputs are re-interleaved into submission order.
    Because every task's seed travels in its payload and the fold order
    is reconstructed exactly, the results are bit-identical to
    :class:`SerialBackend` — only the placement of work differs.

    Trade-off versus :class:`ProcessBackend`: a shard's outputs become
    available only when the whole shard job completes, so results reach
    the consumer — and therefore the artifact store's per-task
    persistence — at **shard granularity**. A killed cluster-backend
    sweep resumes from completed shards, not completed tasks; prefer
    ``process`` when fine-grained resume matters more than long-lived
    shard jobs.

    Parameters
    ----------
    shards:
        Number of shard jobs to cut the grid into.
    workers:
        Pool width (defaults to ``shards``: every shard gets a process).
    retry:
        :class:`~repro.exec.retry.RetryPolicy` applied at **shard**
        granularity: a shard job that dies with the pool is resubmitted
        whole (its tasks are deterministic, so the re-run folds the same
        bits), and the ``degrade_in_process`` rung runs a stubborn shard
        in the parent. Default: fail fast with a typed
        :class:`~repro.exec.faults.WorkerLost` naming the shard's first
        task index.
    """

    name = "cluster"

    def __init__(
        self,
        shards: int = 2,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be at least 1, got {shards}")
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}"
            )
        self.shards = shards
        self.workers = workers if workers is not None else shards
        self.retry = retry if retry is not None else NO_RETRY
        self.stats = FaultStats()

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield shard-job results re-interleaved into submission order."""
        payloads = list(payloads)
        self.stats = stats = FaultStats()
        retry = self.retry
        if not payloads:
            return iter(())
        fn = obs.wrap_task(fn)
        shards = min(self.shards, len(payloads))
        assignment = [index % shards for index in range(len(payloads))]
        indexed_shards: List[List[Tuple[int, Any]]] = [
            [] for _ in range(shards)
        ]
        for index, payload in enumerate(payloads):
            indexed_shards[assignment[index]].append((index, payload))
        submitted_at: List[float] = [0.0] * shards

        def _iterate() -> Iterator[Any]:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            futures: dict = {}
            resolved: dict = {}

            def submit(to_pool, shard_ids) -> None:
                for shard in shard_ids:
                    submitted_at[shard] = time.time()
                    futures[shard] = to_pool.submit(
                        _run_indexed_shard, fn, indexed_shards[shard]
                    )

            def resolve(shard: int) -> None:
                nonlocal pool
                attempts = 0
                while shard not in resolved:
                    try:
                        resolved[shard] = futures[shard].result()
                    except TaskFailure as failure:
                        raise TaskError(
                            "task function raised in shard worker: "
                            f"{failure.description}",
                            task_index=failure.task_index,
                        ) from failure
                    except BrokenExecutor as exc:
                        first_index = indexed_shards[shard][0][0]
                        stats.workers_lost += 1
                        obs.instant("exec.worker_lost", task=first_index)
                        attempts += 1
                        if retry.exhausted(attempts):
                            if retry.degrade_in_process:
                                stats.degraded += len(indexed_shards[shard])
                                obs.instant(
                                    "exec.degraded", task=first_index
                                )
                                submitted_at[shard] = time.time()
                                try:
                                    resolved[shard] = _run_indexed_shard(
                                        fn, indexed_shards[shard]
                                    )
                                except TaskFailure as failure:
                                    raise TaskError(
                                        "task function raised during "
                                        "in-process degradation: "
                                        f"{failure.description}",
                                        task_index=failure.task_index,
                                    ) from failure
                                return
                            raise WorkerLost(
                                f"shard job {shard} lost its worker while "
                                f"running task {first_index} (attempt "
                                f"{attempts}/{retry.max_attempts})",
                                task_index=first_index,
                            ) from exc
                        stats.retries += 1
                        obs.instant(
                            "exec.retry", task=first_index, attempt=attempts
                        )
                        time.sleep(retry.delay_s(attempts, first_index))
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                        submit(
                            pool,
                            [
                                other
                                for other in range(shards)
                                if other not in resolved
                                and _future_is_broken(futures[other])
                            ],
                        )

            submit(pool, range(shards))
            try:
                cursors = [0] * shards
                for index in range(len(payloads)):
                    shard = assignment[index]
                    resolve(shard)
                    yield obs.absorb(
                        resolved[shard][cursors[shard]], submitted_at[shard]
                    )
                    cursors[shard] += 1
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        return _iterate()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LocalClusterBackend(shards={self.shards}, "
            f"workers={self.workers})"
        )


def make_backend(
    name: str,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    heartbeat_interval: Optional[float] = None,
    task_timeout: Optional[float] = None,
    chaos=None,
) -> ExecutionBackend:
    """Construct a backend from its CLI name.

    ``workers`` is the parallelism knob: pool width for ``process``,
    shard/pool count for ``cluster``, worker count for ``remote``;
    ``serial`` ignores it. The fault knobs apply where they mean
    something — ``retry`` to every failure-capable backend,
    ``heartbeat_interval``/``task_timeout``/``chaos`` to ``remote``
    only (passing them elsewhere is a configuration error, not a
    silent no-op).
    """
    workers = max(1, workers)
    if name != "remote":
        offending = [
            flag
            for flag, value in (
                ("--heartbeat", heartbeat_interval),
                ("--task-timeout", task_timeout),
                ("--chaos", chaos),
            )
            if value is not None
        ]
        if offending:
            raise ConfigurationError(
                f"{', '.join(offending)} require(s) the remote backend, "
                f"not {name!r}"
            )
    if name == "serial":
        if retry is not None:
            raise ConfigurationError(
                "the serial backend has no failure domain; --retries "
                "requires process, cluster or remote"
            )
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers=workers, retry=retry)
    if name == "cluster":
        return LocalClusterBackend(shards=workers, retry=retry)
    if name == "remote":
        from repro.exec.remote import RemoteClusterBackend

        kwargs = {}
        if heartbeat_interval is not None:
            kwargs["heartbeat_interval"] = heartbeat_interval
        return RemoteClusterBackend(
            workers=workers,
            retry=retry,
            task_timeout=task_timeout,
            chaos=chaos,
            **kwargs,
        )
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
