"""The plan executor: task grid × backend × artifact store.

:func:`execute_plan` is the cache-and-backend-aware counterpart of
:func:`repro.api.run.run_plan`. For a sweep plan it expands the
(sweep point × topology) task grid **in the parent** — every task
carries its scenario seed (the same ``hash((seed, x_index, t))``
derivation the serial :class:`~repro.sim.runner.SweepRunner` uses) and
its sweep point's shared model library — then maps the grid over an
:class:`~repro.exec.backends.ExecutionBackend` and folds the outcomes in
serial order. Because the task function is the very
:func:`~repro.sim.runner._run_sweep_slice` the serial loop runs and the
fold replays the serial nesting, every backend's series are
bit-identical to :class:`~repro.exec.backends.SerialBackend`'s.

With an :class:`~repro.exec.store.ArtifactStore` attached:

* an unchanged re-run returns the cached full result without running a
  single task (a pure cache hit);
* each task's outcome is persisted the moment the backend yields it, so
  a killed sweep resumes from its completed tasks — the resumed result
  is identical to an uninterrupted run because restored scores fold in
  the same order with the same bits (JSON floats round-trip exactly);
* the cache key excludes ``workers`` (and the backend), so artifacts are
  shared across execution substrates.

Study kinds (comparison / mobility / replacement) have no task grid;
they execute in-process and participate in full-result caching only.

Granularity trade-off: one task per (point, topology) is what makes
per-task caching and fine-grained resume possible, but it means
:class:`~repro.exec.backends.ProcessBackend` pickles a point's shared
model library once per topology (the ``SweepRunner(workers=N)`` slice
path pickles it once per slice). Pickle memoises within a submission,
so :class:`~repro.exec.backends.LocalClusterBackend` — whose shard jobs
carry many tasks in one submit — amortises the library the way slices
do; pick it (or the plain ``--workers`` path) when pickling overhead
outweighs resume granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.api.plan import ExperimentPlan, resolve_axis
from repro.api.registry import SOLVERS, SolverRegistry
from repro.exec.backends import ExecutionBackend, ProcessBackend, SerialBackend
from repro.exec.store import ArtifactStore, plan_cache_key
from repro.utils.stats import SeriesStats


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid: a (sweep point, topology) pair.

    ``task_id`` addresses the cached partial; ``scenario_seed`` is fixed
    at grid-build time in the parent. The executable payload (config +
    shared library + solvers) is materialised lazily, only for tasks the
    cache cannot serve — so a resume never rebuilds a fully-cached
    point's model library.
    """

    task_id: str
    x_index: int
    topology_index: int
    scenario_seed: int


@dataclass
class ExecutionReport:
    """How a plan execution was served (for operators, not results).

    Deliberately kept **out** of the :class:`~repro.api.run.ResultSet`:
    cache status and backend choice must not perturb the result bytes,
    or warm re-runs would stop being byte-identical to cold ones.
    """

    backend: str
    cache: str  #: ``"off"`` | ``"hit"`` | ``"partial"`` | ``"miss"``
    plan_key: Optional[str] = None
    tasks_total: int = 0
    tasks_cached: int = 0
    tasks_run: int = 0
    # Fault-layer counters (folded from the backend's FaultStats; all
    # zero on a failure-free run). Results stay bit-identical whatever
    # these say — they describe *how* the run survived, never *what* it
    # computed.
    retries: int = 0
    workers_lost: int = 0
    re_dispatched: int = 0
    degraded: int = 0
    # Per-phase wall-clock breakdown from repro.obs span totals — empty
    # unless tracing was enabled for the run. Like the fault counters,
    # purely descriptive: never part of result bytes or cache keys.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def record_phases(self) -> None:
        """Capture the live tracer's span totals (no-op if tracing off)."""
        if obs.tracing_enabled():
            self.phases = obs.phase_totals()

    def phase_breakdown(self) -> str:
        """Multi-line ``name  seconds  count`` table (empty if no phases).

        Durations are summed across processes and threads: a phase that
        ran on N workers in parallel can report up to N× the elapsed
        time — the table says where the work went, not how long the
        wall waited.
        """
        if not self.phases:
            return ""
        width = max(len(name) for name in self.phases)
        rows = [
            f"  {name.ljust(width)}  {entry['seconds']:>10.3f}s"
            f"  ×{int(entry['count'])}"
            for name, entry in sorted(
                self.phases.items(),
                key=lambda item: item[1]["seconds"],
                reverse=True,
            )
        ]
        return "phases (seconds are summed across workers):\n" + "\n".join(
            rows
        )

    def record_faults(self, stats) -> None:
        """Fold a backend's :class:`~repro.exec.faults.FaultStats` in."""
        if stats is None:
            return
        self.retries += stats.retries
        self.workers_lost += stats.workers_lost
        self.re_dispatched += stats.re_dispatched
        self.degraded += stats.degraded

    def _fault_suffix(self) -> str:
        """The ``, N retried, ...`` tail (empty on a failure-free run)."""
        pieces = [
            f"{count} {label}"
            for count, label in (
                (self.retries, "retried"),
                (self.workers_lost, "worker(s) lost"),
                (self.re_dispatched, "re-dispatched"),
                (self.degraded, "degraded in-process"),
            )
            if count
        ]
        return ", " + ", ".join(pieces) if pieces else ""

    def summary(self) -> str:
        """One human line for the CLI footer."""
        faults = self._fault_suffix()
        if self.cache == "off":
            return (
                f"backend {self.backend}: ran {self.tasks_run} task(s), "
                f"cache off{faults}"
            )
        key = (self.plan_key or "")[:12]
        if self.cache == "hit":
            return (
                f"cache hit — plan {key}, 0/{self.tasks_total} tasks run "
                f"(backend {self.backend}){faults}"
            )
        return (
            f"cache {self.cache} — plan {key}, {self.tasks_run}/"
            f"{self.tasks_total} tasks run, {self.tasks_cached} restored "
            f"(backend {self.backend}){faults}"
        )


def default_backend(plan: ExperimentPlan) -> ExecutionBackend:
    """The backend a plan implies on its own: ``workers`` decides."""
    if plan.workers > 1:
        return ProcessBackend(workers=plan.workers)
    return SerialBackend()


def build_sweep_tasks(plan: ExperimentPlan) -> List[SweepTask]:
    """Expand a sweep plan into its per-(point, topology) task grid.

    Seeds come from :func:`repro.sim.runner.scenario_seed` — the same
    derivation the runner's serial loop uses — so grid execution is
    bit-identical to the runner path.
    """
    from repro.sim.runner import scenario_seed

    tasks: List[SweepTask] = []
    for x_index in range(len(plan.sweep.points)):
        for topology_index in range(plan.num_topologies):
            tasks.append(
                SweepTask(
                    task_id=f"x{x_index}-t{topology_index}",
                    x_index=x_index,
                    topology_index=topology_index,
                    scenario_seed=scenario_seed(
                        plan.seed, x_index, topology_index
                    ),
                )
            )
    return tasks


class _PayloadBuilder:
    """Materialise executable task payloads, one shared library per point.

    Per-point configs and libraries are built on first use only — the
    same ``library-x{i}`` RNG children as
    :meth:`~repro.sim.runner.SweepRunner._build_tasks`, so solvers see
    identical libraries — and points whose every task comes from the
    cache never pay the library build.
    """

    def __init__(self, plan: ExperimentPlan, registry: SolverRegistry) -> None:
        self._plan = plan
        self._axis = resolve_axis(plan.sweep.axis)
        self._base = plan.base_config()
        self._algorithms = plan.algorithms(registry)
        self._per_point: Dict[int, Tuple[Any, Any]] = {}

    def _point(self, x_index: int):
        if x_index not in self._per_point:
            from repro.sim.runner import library_rng_tag
            from repro.sim.scenario import build_library
            from repro.utils.rng import RngFactory

            plan = self._plan
            config = self._axis.apply(
                self._base, plan.sweep.points[x_index], plan.scale
            )
            factory = RngFactory(plan.seed)
            library = build_library(
                config, factory.child(library_rng_tag(x_index))
            )
            self._per_point[x_index] = (config, library)
        return self._per_point[x_index]

    def payload(self, task: SweepTask) -> Tuple:
        """A :func:`~repro.sim.runner._run_sweep_slice` argument."""
        config, library = self._point(task.x_index)
        plan = self._plan
        return (
            config,
            [task.scenario_seed],
            self._algorithms,
            plan.evaluation,
            plan.num_realizations,
            library,
            plan.feasibility,
            plan.sample_users,
            plan.sample_strata,
        )


def _grid_size(plan: ExperimentPlan) -> int:
    """Task count of a plan (1 for the study kinds — no grid)."""
    if plan.kind == "sweep":
        return len(plan.sweep.points) * plan.num_topologies
    return 1


def _execute_sweep_grid(
    plan: ExperimentPlan,
    registry: SolverRegistry,
    backend: ExecutionBackend,
    store: Optional[ArtifactStore],
    key: Optional[str],
    report: ExecutionReport,
):
    """Run (or resume) a sweep plan's grid and fold the uniform result."""
    from repro.api.run import ResultSet
    from repro.sim.runner import _run_sweep_slice

    with obs.span("exec.grid_build"):
        tasks = build_sweep_tasks(plan)
    outcomes: Dict[str, List[Dict[str, Tuple[float, float]]]] = {}
    if store is not None and key is not None:
        with obs.span("exec.cache_probe"):
            for task in tasks:
                cached = store.load_task(key, task.task_id)
                if cached is not None:
                    outcomes[task.task_id] = cached
    report.tasks_total = len(tasks)
    report.tasks_cached = len(outcomes)
    report.cache = (
        "off"
        if store is None
        else ("partial" if outcomes else "miss")
    )

    pending = [task for task in tasks if task.task_id not in outcomes]
    builder = _PayloadBuilder(plan, registry)
    with obs.span("exec.payload_build"):
        payloads = [builder.payload(task) for task in pending]
    results = backend.map(_run_sweep_slice, payloads)
    # Persist every outcome as soon as the backend yields it: a killed
    # run leaves its completed prefix behind for the next run to resume.
    try:
        with obs.span("exec.run", backend=backend.name):
            for task, outcome in zip(pending, results):
                if store is not None and key is not None:
                    store.save_task(key, task.task_id, outcome)
                outcomes[task.task_id] = outcome
                report.tasks_run += 1
    finally:
        # Whatever happened — success, a typed ExecutionError, a kill —
        # fold the backend's fault counters into the report so partial
        # runs still account their retries and lost workers.
        report.record_faults(getattr(backend, "stats", None))

    # Fold in grid order — exactly the serial loop's nesting, so the
    # accumulated series are bit-identical for any backend.
    x_values = list(plan.sweep.points)
    algorithms = plan.labels(registry)
    series = {algo: SeriesStats(x_values) for algo in algorithms}
    runtimes = {algo: SeriesStats(x_values) for algo in algorithms}
    with obs.span("exec.fold"):
        for task in tasks:
            for per_algo in outcomes[task.task_id]:
                for algo in algorithms:
                    score, runtime_s = per_algo[algo]
                    series[algo].add(task.x_index, score)
                    runtimes[algo].add(task.x_index, runtime_s)
    axis = resolve_axis(plan.sweep.axis)
    from repro.sim.runner import sweep_metadata

    return ResultSet(
        name=plan.name,
        x_label=axis.x_label,
        x_values=x_values,
        series=series,
        runtimes=runtimes,
        # Identical metadata to the SweepRunner path (workers from the
        # plan, not the backend): result bytes stay backend-independent.
        metadata=sweep_metadata(
            plan.num_topologies, plan.evaluation, plan.seed, plan.workers
        ),
        plan=plan,
    )


def execute_plan(
    plan: ExperimentPlan,
    registry: SolverRegistry = SOLVERS,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[ArtifactStore] = None,
):
    """Execute a plan on a backend with optional artifact caching.

    Returns ``(result, report)``: the uniform
    :class:`~repro.api.run.ResultSet` plus an :class:`ExecutionReport`
    describing how it was served (cache hit/partial/miss, task counts).
    ``repro.api.run_plan(plan, backend=..., store=...)`` is the
    report-less convenience wrapper.
    """
    from repro.api.run import (
        _run_comparison,
        _run_mobility,
        _run_replacement,
    )

    if backend is None:
        backend = default_backend(plan)
    report = ExecutionReport(
        backend=backend.name, cache="off" if store is None else "miss"
    )

    key: Optional[str] = None
    if store is not None:
        key = plan_cache_key(plan)
        report.plan_key = key
        cached = store.load_result(key, registry)
        if cached is not None:
            # JSON serialisation keeps only scalar metadata; the study
            # executors also record the base ScenarioConfig, which is
            # derivable from the plan — re-attach it so a warm result is
            # indistinguishable from a cold one to metadata consumers.
            if plan.kind != "sweep" and "config" not in cached.metadata:
                cached.metadata["config"] = plan.base_config()
            report.cache = "hit"
            report.tasks_total = _grid_size(plan)
            report.record_phases()
            return cached, report

    if plan.kind == "sweep":
        result = _execute_sweep_grid(
            plan, registry, backend, store, key, report
        )
    else:
        # Study kinds have no task grid: run in-process (the executors
        # replay the legacy seed loops exactly) and cache whole results.
        # The report says so rather than naming a backend that never ran.
        report.backend = "in-process"
        report.tasks_total = 1
        report.tasks_run = 1
        if plan.kind == "mobility":
            result = _run_mobility(plan, registry)
        elif plan.kind == "replacement":
            result = _run_replacement(plan, registry)
        else:
            result = _run_comparison(plan, registry)

    if store is not None and key is not None:
        store.save_result(key, result)
        # The full result supersedes the per-task partials; dropping
        # them keeps a long-lived cache directory from accumulating one
        # dead file per (point, topology) per completed plan.
        store.clear_tasks(key)
    report.record_phases()
    return result, report
