"""Failure taxonomy and deterministic fault injection for ``repro.exec``.

The execution layer distinguishes two failure classes:

* **Deterministic** — the task function itself raised. Re-running the
  same pure task yields the same exception, so these fail fast:
  :class:`TaskError` surfaces immediately with the failing task's grid
  index, whatever the retry policy says.
* **Transient** — the substrate failed underneath the task (a worker
  process died, a connection dropped, a heartbeat went silent, a task
  out-lived its deadline). The task's inputs are intact, so these are
  retryable: :class:`WorkerLost` and :class:`TaskTimeout` are raised
  only once a :class:`~repro.exec.retry.RetryPolicy` is exhausted and
  in-process degradation is off.

Because every task's seed is fixed in the parent and results fold in
submission order, a retried or re-dispatched task recomputes the exact
same bits — which is what lets the chaos suite assert byte-identical
result JSON under any crash schedule.

:class:`ChaosPolicy` is the deterministic fault-injection harness: a
seeded schedule of worker kills, dropped connections, delayed
heartbeats and stragglers that the remote workers execute on
themselves, plus :class:`ArtifactChaos` for seeded on-disk corruption
(truncate / garbage / zero) of artifact-store files. Chaos is a test
and CI instrument — it rides the same code paths real faults take, so
the equivalence suite exercises exactly the recovery machinery
production would.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError, ReproError


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
class ExecutionError(ReproError, RuntimeError):
    """A task grid failed to execute.

    Carries the failing task's grid index (and id, when the caller
    tracks one) so operators see *which* cell failed instead of an
    opaque ``BrokenProcessPool`` out of ``pool.map``.
    """

    #: Whether retrying can help (overridden per subclass).
    transient = False

    def __init__(
        self,
        message: str,
        *,
        task_index: Optional[int] = None,
        task_id: Optional[str] = None,
    ) -> None:
        detail = message
        if task_index is not None and "task" not in message.split(":")[0]:
            detail = f"{message} (task index {task_index})"
        super().__init__(detail)
        self.task_index = task_index
        self.task_id = task_id


class TaskError(ExecutionError):
    """The task function itself raised — deterministic, never retried."""

    transient = False


class WorkerLost(ExecutionError):
    """A worker died under a task (crash, kill, dropped connection,
    silent heartbeat) — transient, retryable."""

    transient = True


class TaskTimeout(WorkerLost):
    """A task out-lived its deadline on a live worker — transient; the
    straggler is treated like a lost worker and the task re-dispatched."""

    transient = True


def is_transient(exc: BaseException) -> bool:
    """Is ``exc`` a substrate failure worth retrying?"""
    if isinstance(exc, ExecutionError):
        return exc.transient
    # Pool breakage surfaces as concurrent.futures.process.BrokenProcessPool
    # (a BrokenExecutor); treat any executor breakage as transient.
    from concurrent.futures import BrokenExecutor

    return isinstance(exc, BrokenExecutor)


class TaskFailure(Exception):
    """Picklable carrier of a task-function exception across processes.

    Raised inside worker-side chunk runners so the parent learns the
    *exact* failing task index even when several tasks share one
    submission; the original traceback travels as formatted text (the
    original exception object may not pickle).
    """

    def __init__(self, task_index: int, description: str) -> None:
        super().__init__(task_index, description)
        self.task_index = task_index
        self.description = description

    def __str__(self) -> str:
        return f"task {self.task_index} raised: {self.description}"


# ----------------------------------------------------------------------
# Fault accounting
# ----------------------------------------------------------------------
@dataclass
class FaultStats:
    """What the fault layer did during one ``map`` call.

    Backends expose their latest ``map``'s stats as ``backend.stats``;
    the executor folds them into the :class:`~repro.exec.executor.
    ExecutionReport` so the CLI footer can print them.
    """

    retries: int = 0  #: transient failures recovered by re-running tasks
    workers_lost: int = 0  #: workers declared dead (crash/drop/heartbeat)
    re_dispatched: int = 0  #: straggler tasks speculatively re-dispatched
    degraded: int = 0  #: tasks that fell back to in-process execution

    def any(self) -> bool:
        """Did anything fault-related happen at all?"""
        return bool(
            self.retries or self.workers_lost
            or self.re_dispatched or self.degraded
        )

    def merge(self, other: "FaultStats") -> None:
        """Accumulate another map call's counters into this one."""
        self.retries += other.retries
        self.workers_lost += other.workers_lost
        self.re_dispatched += other.re_dispatched
        self.degraded += other.degraded

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports and JSON)."""
        return {
            "retries": self.retries,
            "workers_lost": self.workers_lost,
            "re_dispatched": self.re_dispatched,
            "degraded": self.degraded,
        }


# ----------------------------------------------------------------------
# Deterministic chaos
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, bounded fault-injection schedule for remote workers.

    Facets (each with a grant budget, so chaos terminates):

    * ``kill_after`` — an armed worker exits hard on *receiving* its
      ``kill_after + 1``-th task (after completing ``kill_after``), so
      exactly one in-flight task is lost per kill. ``kill_limit`` caps
      how many workers are armed.
    * ``drop_after`` — an armed worker closes its connection (and
      exits) after *completing* ``drop_after`` tasks; no task is lost,
      but the parent sees a dead connection.
    * ``heartbeat_delay_s`` — an armed worker sleeps this long before
      every heartbeat; set it beyond the liveness timeout and a healthy
      worker is declared dead mid-task.
    * ``straggle_every``/``straggle_s`` — an armed worker sleeps
      ``straggle_s`` before tasks whose index is a multiple of
      ``straggle_every``, exercising timeout re-dispatch.

    Workers are armed deterministically by worker id: ids below the
    facet's limit are armed, replacement workers (fresh, higher ids)
    never are — so a chaos run always converges.
    """

    kill_after: Optional[int] = None
    kill_limit: int = 1
    drop_after: Optional[int] = None
    drop_limit: int = 1
    heartbeat_delay_s: float = 0.0
    heartbeat_delay_limit: int = 1
    straggle_every: Optional[int] = None
    straggle_s: float = 0.0
    straggle_limit: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_after", "drop_after", "straggle_every"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.straggle_every == 0:
            raise ConfigurationError("straggle_every must be >= 1")
        for name in ("heartbeat_delay_s", "straggle_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        for name in (
            "kill_limit", "drop_limit",
            "heartbeat_delay_limit", "straggle_limit",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    # -- worker-side views ---------------------------------------------
    def armed_for(self, worker_id: int) -> "ChaosPolicy":
        """The facets worker ``worker_id`` should execute on itself."""
        return replace(
            self,
            kill_after=(
                self.kill_after if worker_id < self.kill_limit else None
            ),
            drop_after=(
                self.drop_after if worker_id < self.drop_limit else None
            ),
            heartbeat_delay_s=(
                self.heartbeat_delay_s
                if worker_id < self.heartbeat_delay_limit
                else 0.0
            ),
            straggle_every=(
                self.straggle_every
                if worker_id < self.straggle_limit
                else None
            ),
        )

    def straggles(self, task_index: int) -> bool:
        """Should this worker straggle on ``task_index``?"""
        if self.straggle_every is None or self.straggle_s <= 0:
            return False
        return (task_index + self.seed) % self.straggle_every == 0

    # -- CLI spec ------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Build a policy from a CLI spec string.

        Grammar: comma-separated facets —
        ``kill-worker:N[xLIMIT]``, ``drop-conn:N[xLIMIT]``,
        ``heartbeat-delay:SECONDS``, ``straggle:EVERYxSECONDS``,
        ``seed:S``. Example: ``kill-worker:2,straggle:3x0.5``.
        """
        kwargs: Dict[str, Any] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, arg = token.partition(":")
            try:
                if name == "kill-worker":
                    count, _, limit = arg.partition("x")
                    kwargs["kill_after"] = int(count)
                    if limit:
                        kwargs["kill_limit"] = int(limit)
                elif name == "drop-conn":
                    count, _, limit = arg.partition("x")
                    kwargs["drop_after"] = int(count)
                    if limit:
                        kwargs["drop_limit"] = int(limit)
                elif name == "heartbeat-delay":
                    kwargs["heartbeat_delay_s"] = float(arg)
                elif name == "straggle":
                    every, _, seconds = arg.partition("x")
                    kwargs["straggle_every"] = int(every)
                    kwargs["straggle_s"] = float(seconds) if seconds else 0.5
                elif name == "seed":
                    kwargs["seed"] = int(arg)
                else:
                    raise ConfigurationError(
                        f"unknown chaos facet {name!r} in {spec!r} "
                        "(choose from kill-worker, drop-conn, "
                        "heartbeat-delay, straggle, seed)"
                    )
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid chaos facet {token!r}: {exc}"
                ) from exc
        if not kwargs:
            raise ConfigurationError(f"empty chaos spec {spec!r}")
        return cls(**kwargs)


# ----------------------------------------------------------------------
# On-disk chaos (artifact-store crash consistency)
# ----------------------------------------------------------------------
@dataclass
class ArtifactChaos:
    """Seeded corruption of artifact files, for crash-consistency fuzz.

    Each method simulates one way a file ends up broken on disk — a
    write truncated mid-stream, a torn/garbage block, a created-but-
    empty file. The store contract under test: every one must read back
    as a cache miss (``None``), never an exception, so a corrupted
    cache degrades to recomputation.
    """

    seed: int = 0
    _calls: int = field(default=0, repr=False)

    def _fraction(self, tag: str) -> float:
        self._calls += 1
        digest = hashlib.sha256(
            f"{self.seed}:{self._calls}:{tag}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def truncate(self, path) -> int:
        """Cut the file mid-write; returns the bytes kept."""
        size = os.path.getsize(path)
        keep = int(size * self._fraction("truncate"))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        return keep

    def corrupt(self, path) -> None:
        """Overwrite a seeded slice of the file with garbage bytes."""
        size = os.path.getsize(path)
        if size == 0:
            return
        start = int((size - 1) * self._fraction("corrupt-start"))
        length = max(1, int((size - start) * self._fraction("corrupt-len")))
        junk = hashlib.sha256(
            f"{self.seed}:junk:{start}".encode()
        ).digest() * (length // 32 + 1)
        with open(path, "r+b") as handle:
            handle.seek(start)
            handle.write(junk[:length])

    def zero(self, path) -> None:
        """Replace the file with a zero-byte husk (created, never filled)."""
        with open(path, "wb"):
            pass
