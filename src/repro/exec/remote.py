"""Fault-tolerant remote execution: a socket worker pool with
heartbeats, liveness monitoring and work-stealing re-dispatch.

:class:`RemoteClusterBackend` is the shape of a real sweep-farm
dispatcher, runnable on one machine: tasks ship over a length-prefixed
pickle protocol (TCP on localhost) to long-lived worker *processes*
that connect back to the parent, heartbeat while they compute, and
stream results as they finish. The parent runs a liveness monitor and a
scheduler in the consuming thread:

* a worker whose heartbeat goes silent (or whose connection drops, or
  whose process dies) is declared **lost** — its in-flight task is
  re-queued and retried under the :class:`~repro.exec.retry.
  RetryPolicy`, with deterministic backoff jitter derived from the
  task's grid index;
* a task that out-lives ``task_timeout`` on a live worker is a
  **straggler** — it is speculatively re-dispatched to an idle worker
  (work stealing; first result wins, results are deterministic so
  either copy carries the same bits), and past twice the deadline the
  wedged owner is treated as lost;
* lost workers are **replaced** from a bounded restart budget; when the
  budget is gone and no worker is left, remaining tasks **degrade** to
  in-process execution — the sweep completes, slower, instead of
  hanging;
* a task function that *raises* is deterministic
  (:class:`~repro.exec.faults.TaskError`) and fails fast, whatever the
  retry policy.

Results fold in **submission order** keyed by task index, so any crash
schedule — including every :class:`~repro.exec.faults.ChaosPolicy` the
equivalence suite throws at it — yields series bit-identical to
:class:`~repro.exec.backends.SerialBackend`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Set

from repro import obs
from repro.errors import ConfigurationError
from repro.exec.faults import (
    ChaosPolicy,
    FaultStats,
    TaskError,
    TaskTimeout,
    WorkerLost,
)
from repro.exec.retry import RetryPolicy

#: Default policy for the remote backend: a fault-tolerant substrate
#: should tolerate faults out of the box (2 retries, then degrade).
REMOTE_DEFAULT_RETRY = RetryPolicy(max_attempts=3, degrade_in_process=True)

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# Wire protocol: 4-byte big-endian length + pickle payload
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: Any) -> None:
    """Serialise one protocol message onto ``sock``."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Read one protocol message from ``sock`` (``None`` on EOF)."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    payload = _recv_exact(sock, _LENGTH.unpack(header)[0])
    if payload is None:
        return None
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(host: str, port: int, worker_id: int) -> None:
    """Long-lived worker: connect back, heartbeat, run tasks forever.

    The first frame from the parent is ``("init", fn, chaos,
    heartbeat_interval)``; everything after is ``("task", index,
    payload)`` or ``("stop",)``. Chaos facets execute *here*, on the
    worker itself, so injected faults ride exactly the code paths real
    crashes take.
    """
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError:
        os._exit(11)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            send_frame(sock, message)

    try:
        send(("hello", worker_id))
        init = recv_frame(sock)
        if not init or init[0] != "init":
            os._exit(12)
        _, fn, chaos, heartbeat_interval = init
    except (OSError, pickle.PickleError):
        os._exit(12)

    def _heartbeat() -> None:
        while True:
            time.sleep(heartbeat_interval)
            if chaos is not None and chaos.heartbeat_delay_s > 0:
                time.sleep(chaos.heartbeat_delay_s)
            try:
                send(("heartbeat", worker_id))
            except OSError:
                return

    threading.Thread(target=_heartbeat, daemon=True).start()

    tasks_done = 0
    while True:
        try:
            message = recv_frame(sock)
        except OSError:
            break
        if message is None or message[0] == "stop":
            break
        if message[0] != "task":
            continue
        _, task_index, payload = message
        if chaos is not None:
            if chaos.kill_after is not None and tasks_done >= chaos.kill_after:
                # Die *on receipt*, before executing: exactly one
                # in-flight task is lost per granted kill.
                os._exit(17)
            if chaos.straggles(task_index):
                time.sleep(chaos.straggle_s)
        try:
            value = fn(payload)
        except BaseException:
            try:
                send(("task-error", task_index, traceback.format_exc()))
            except OSError:
                break
            continue
        try:
            send(("result", task_index, value))
        except OSError:
            break
        tasks_done += 1
        if (
            chaos is not None
            and chaos.drop_after is not None
            and tasks_done >= chaos.drop_after
        ):
            # Drop the connection after a completed task: nothing is
            # lost, but the parent sees a dead peer.
            try:
                sock.close()
            finally:
                os._exit(18)
    try:
        sock.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, worker_id: int, proc) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn: Optional[socket.socket] = None
        self.alive = True  #: not yet declared lost
        self.lost_reason: Optional[str] = None
        self.task: Optional[int] = None  #: index currently assigned here
        self.task_started_at: float = 0.0
        self.last_seen = time.monotonic()  #: any frame counts as life

    @property
    def connected(self) -> bool:
        return self.conn is not None

    @property
    def idle(self) -> bool:
        return self.alive and self.connected and self.task is None


class _RemoteRun:
    """State machine of one ``map`` call (scheduler + monitor + fold)."""

    def __init__(
        self,
        backend: "RemoteClusterBackend",
        fn: Callable[[Any], Any],
        payloads: List[Any],
    ) -> None:
        self.backend = backend
        self.fn = fn
        self.payloads = payloads
        self.stats = backend.stats
        self.retry = backend.retry
        self.chaos = backend.chaos

        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        n = len(payloads)
        #: Epoch stamp of each task's *first* dispatch (or degradation
        #: start): the parent half of the queue-wait measurement.
        self.assigned_epoch: Dict[int, float] = {}
        self.results: Dict[int, Any] = {}
        self.attempts = [0] * n
        self.pending: Deque[int] = deque(range(n))
        self.not_before = [0.0] * n
        self.redispatched: Set[int] = set()
        self.degrade_queue: Deque[int] = deque()
        self.error: Optional[BaseException] = None
        self.closing = False

        self.workers: Dict[int, _Worker] = {}
        self.next_worker_id = 0
        self.restarts_used = 0

        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(backend.workers + backend.max_restarts + 1)
        self.host, self.port = self.listener.getsockname()
        try:
            self.ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self.ctx = multiprocessing.get_context()

        self.acceptor = threading.Thread(target=self._accept_loop, daemon=True)

    # -- spawning & handshakes -----------------------------------------
    def _spawn_worker(self) -> None:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        proc = self.ctx.Process(
            target=_worker_main,
            args=(self.host, self.port, worker_id),
            daemon=True,
        )
        proc.start()
        worker = _Worker(worker_id, proc)
        worker.last_seen = time.monotonic()
        self.workers[worker_id] = worker

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return  # listener closed: run is over
            try:
                conn.settimeout(10.0)
                hello = recv_frame(conn)
                if not hello or hello[0] != "hello":
                    conn.close()
                    continue
                worker_id = hello[1]
                armed = (
                    self.chaos.armed_for(worker_id)
                    if self.chaos is not None
                    else None
                )
                send_frame(
                    conn,
                    ("init", self.fn, armed, self.backend.heartbeat_interval),
                )
                conn.settimeout(None)
            except (OSError, pickle.PickleError):
                conn.close()
                continue
            with self.cond:
                worker = self.workers.get(worker_id)
                if worker is None or self.closing:
                    conn.close()
                    continue
                worker.conn = conn
                worker.last_seen = time.monotonic()
                threading.Thread(
                    target=self._reader, args=(worker,), daemon=True
                ).start()
                self.cond.notify_all()

    # -- per-worker reader ---------------------------------------------
    def _reader(self, worker: _Worker) -> None:
        while True:
            try:
                message = recv_frame(worker.conn)
            except OSError:
                message = None
            if message is None:
                with self.cond:
                    self._declare_lost(worker, "connection lost")
                    self.cond.notify_all()
                return
            kind = message[0]
            with self.cond:
                now = time.monotonic()
                if kind == "heartbeat":
                    # The observed gap between consecutive signs of life
                    # is the liveness monitor's actual signal-to-noise:
                    # gaps approaching heartbeat_timeout mean lost
                    # workers are being declared on a hair trigger.
                    obs.observe(
                        "repro_exec_heartbeat_gap_seconds",
                        now - worker.last_seen,
                    )
                worker.last_seen = now
                if kind == "result":
                    _, index, value = message
                    if index not in self.results:
                        self.results[index] = value
                    if worker.task == index:
                        worker.task = None
                    self.cond.notify_all()
                elif kind == "task-error":
                    _, index, description = message
                    if self.error is None:
                        self.error = TaskError(
                            "task function raised on remote worker "
                            f"{worker.worker_id}:\n{description}",
                            task_index=index,
                        )
                    if worker.task == index:
                        worker.task = None
                    self.cond.notify_all()
                # heartbeats only refresh last_seen

    # -- failure handling (all called under the lock) ------------------
    def _declare_lost(self, worker: _Worker, reason: str) -> None:
        """Idempotently mark a worker dead and recover its task."""
        if not worker.alive:
            return
        worker.alive = False
        worker.lost_reason = reason
        if not self.closing:
            self.stats.workers_lost += 1
            obs.instant(
                "exec.worker_lost", worker=worker.worker_id, reason=reason
            )
        try:
            if worker.conn is not None:
                worker.conn.close()
        except OSError:
            pass
        try:
            worker.proc.terminate()
        except (OSError, ValueError):
            pass
        index, worker.task = worker.task, None
        if self.closing or index is None or index in self.results:
            return
        if any(
            other.alive and other.task == index
            for other in self.workers.values()
        ):
            return  # a re-dispatched copy is still running it
        self._requeue(index, reason)

    def _requeue(self, index: int, reason: str) -> None:
        self.attempts[index] += 1
        if self.retry.exhausted(self.attempts[index]):
            if self.retry.degrade_in_process:
                obs.instant("exec.degraded", task=index, reason=reason)
                self.degrade_queue.append(index)
                return
            if self.error is None:
                exc_type = (
                    TaskTimeout if "straggl" in reason else WorkerLost
                )
                self.error = exc_type(
                    f"task {index} failed {self.attempts[index]} time(s) "
                    f"({reason}); retry budget "
                    f"max_attempts={self.retry.max_attempts} exhausted",
                    task_index=index,
                )
            return
        self.stats.retries += 1
        obs.instant(
            "exec.retry",
            task=index,
            attempt=self.attempts[index],
            reason=reason,
        )
        self.not_before[index] = time.monotonic() + self.retry.delay_s(
            self.attempts[index], index
        )
        self.pending.appendleft(index)

    def _check_liveness(self, now: float) -> None:
        timeout = self.backend.heartbeat_timeout
        for worker in list(self.workers.values()):
            if not worker.alive:
                continue
            if not worker.connected:
                # Spawned but never handshook: give it a generous grace.
                if now - worker.last_seen > max(10.0, timeout):
                    self._declare_lost(worker, "never connected")
            elif now - worker.last_seen > timeout:
                self._declare_lost(worker, "heartbeat timeout")

    def _check_stragglers(self, now: float) -> None:
        timeout = self.backend.task_timeout
        if timeout is None:
            return
        for worker in list(self.workers.values()):
            if not worker.alive or worker.task is None:
                continue
            age = now - worker.task_started_at
            if age <= timeout:
                continue
            index = worker.task
            if index not in self.redispatched:
                idle = next(
                    (w for w in self.workers.values() if w.idle), None
                )
                if idle is not None:
                    self.redispatched.add(index)
                    self.stats.re_dispatched += 1
                    obs.instant(
                        "exec.redispatch",
                        task=index,
                        owner=worker.worker_id,
                        thief=idle.worker_id,
                    )
                    self._assign(idle, index, now)
                    continue
            if age > 2 * timeout:
                # Both hope and patience exhausted: the owner is wedged.
                self._declare_lost(worker, "straggler past hard deadline")

    def _respawn(self) -> None:
        unfinished = len(self.payloads) - len(self.results)
        live = sum(1 for w in self.workers.values() if w.alive)
        while (
            live < self.backend.workers
            and self.restarts_used < self.backend.max_restarts
            and live < unfinished
        ):
            self.restarts_used += 1
            self._spawn_worker()
            live += 1

    def _pool_exhausted(self) -> bool:
        return (
            not any(w.alive for w in self.workers.values())
            and self.restarts_used >= self.backend.max_restarts
        )

    # -- dispatch ------------------------------------------------------
    def _assign(self, worker: _Worker, index: int, now: float) -> None:
        """Mark + send one task to one worker (send failures = lost)."""
        worker.task = index
        worker.task_started_at = now
        self.assigned_epoch.setdefault(index, time.time())
        try:
            send_frame(worker.conn, ("task", index, self.payloads[index]))
        except OSError:
            self._declare_lost(worker, "send failed")

    def _dispatch(self, now: float) -> None:
        if not self.pending:
            return
        idle = [w for w in self.workers.values() if w.idle]
        if not idle:
            return
        ready: List[int] = []
        deferred: List[int] = []
        while self.pending and len(ready) < len(idle):
            index = self.pending.popleft()
            if index in self.results:
                continue  # a duplicate already finished it
            if self.not_before[index] > now:
                deferred.append(index)
            else:
                ready.append(index)
        for index in reversed(deferred):
            self.pending.appendleft(index)
        for worker, index in zip(idle, ready):
            self._assign(worker, index, now)

    # -- degradation ---------------------------------------------------
    def _collect_degraded(self) -> List[int]:
        """Indices that must now run in the parent (under the lock)."""
        indices = list(self.degrade_queue)
        self.degrade_queue.clear()
        if self._pool_exhausted():
            # The whole pool is gone: everything still pending comes home.
            while self.pending:
                index = self.pending.popleft()
                if index not in self.results:
                    indices.append(index)
        return indices

    def _run_degraded(self, indices: List[int]) -> None:
        """Execute fallen-back tasks in-process (outside the lock)."""
        for index in indices:
            self.assigned_epoch.setdefault(index, time.time())
            try:
                value = self.fn(self.payloads[index])
            except BaseException as exc:
                description = traceback.format_exc()
                with self.cond:
                    if self.error is None:
                        self.error = TaskError(
                            "task function raised during in-process "
                            f"degradation:\n{description}",
                            task_index=index,
                        )
                    self.cond.notify_all()
                return
            with self.cond:
                if index not in self.results:
                    self.results[index] = value
                self.stats.degraded += 1
                self.cond.notify_all()

    # -- lifecycle -----------------------------------------------------
    def _shutdown(self) -> None:
        with self.cond:
            self.closing = True
            workers = list(self.workers.values())
        try:
            self.listener.close()
        except OSError:
            pass
        for worker in workers:
            if worker.conn is not None:
                try:
                    send_frame(worker.conn, ("stop",))
                except OSError:
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass
            try:
                worker.proc.terminate()
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)

    def run(self) -> Iterator[Any]:
        """The generator body of :meth:`RemoteClusterBackend.map`."""
        total = len(self.payloads)
        for _ in range(min(self.backend.workers, total)):
            self._spawn_worker()
        self.acceptor.start()
        tick = self.backend._tick
        next_yield = 0
        try:
            while next_yield < total:
                to_yield: List[Any] = []
                with self.cond:
                    if self.error is not None:
                        raise self.error
                    now = time.monotonic()
                    self._check_liveness(now)
                    self._check_stragglers(now)
                    self._respawn()
                    self._dispatch(now)
                    degraded = self._collect_degraded()
                    while next_yield < total and next_yield in self.results:
                        to_yield.append((next_yield, self.results[next_yield]))
                        next_yield += 1
                    if not to_yield and not degraded:
                        self.cond.wait(tick)
                        if self.error is not None:
                            raise self.error
                if degraded:
                    self._run_degraded(degraded)
                for index, value in to_yield:
                    yield obs.absorb(value, self.assigned_epoch.get(index))
        finally:
            self._shutdown()


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class RemoteClusterBackend:
    """Ship tasks to long-lived socket workers; survive their deaths.

    Parameters
    ----------
    workers:
        Target worker-process count (lost workers are replaced from
        ``max_restarts``).
    retry:
        :class:`~repro.exec.retry.RetryPolicy` for transient failures;
        defaults to :data:`REMOTE_DEFAULT_RETRY` (2 retries, then
        in-process degradation).
    heartbeat_interval / heartbeat_timeout:
        Workers heartbeat every ``heartbeat_interval`` seconds; a
        worker silent for ``heartbeat_timeout`` (default: five
        intervals, at least 1 s) is declared lost.
    task_timeout:
        Straggler deadline in seconds: past it a task is re-dispatched
        to an idle worker, past twice it the wedged owner is lost.
        ``None`` (default) disables straggler handling.
    chaos:
        A :class:`~repro.exec.faults.ChaosPolicy` executed *by the
        workers on themselves* — deterministic fault injection for
        tests, CI and drills.
    max_restarts:
        Replacement-worker budget (default ``2 * workers + 2``); once
        spent, remaining tasks degrade to in-process execution.
    """

    name = "remote"

    def __init__(
        self,
        workers: int = 2,
        retry: Optional[RetryPolicy] = None,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: Optional[float] = None,
        task_timeout: Optional[float] = None,
        chaos: Optional[ChaosPolicy] = None,
        max_restarts: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}"
            )
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat_timeout must be > 0")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError("task_timeout must be > 0")
        if max_restarts is not None and max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        self.workers = workers
        self.retry = retry if retry is not None else REMOTE_DEFAULT_RETRY
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(1.0, 5.0 * heartbeat_interval)
        )
        self.task_timeout = task_timeout
        self.chaos = chaos
        self.max_restarts = (
            max_restarts if max_restarts is not None else 2 * workers + 2
        )
        #: Monitor wake-up cadence: fine enough to catch timeouts fast.
        self._tick = min(0.25, max(0.01, heartbeat_interval / 2.0))
        self.stats = FaultStats()

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> Iterator[Any]:
        """Yield ``fn(payload)`` per payload in submission order,
        surviving worker crashes per the retry policy."""
        self.stats = FaultStats()
        payloads = list(payloads)
        if not payloads:
            return iter(())
        # Workers receive the wrapped fn over the init frame and ship
        # envelopes (result + telemetry snapshot) back as task results;
        # the fold above absorbs them first-result-wins, so a killed
        # worker's partial telemetry never reaches the parent.
        return _RemoteRun(self, obs.wrap_task(fn), payloads).run()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RemoteClusterBackend(workers={self.workers}, "
            f"retry={self.retry!r}, chaos={self.chaos!r})"
        )
