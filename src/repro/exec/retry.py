"""Retry policy for transient execution failures.

One :class:`RetryPolicy` governs every backend's reaction to a
transient fault (:class:`~repro.exec.faults.WorkerLost`,
:class:`~repro.exec.faults.TaskTimeout`, a broken process pool):

* a task gets ``max_attempts`` executions in total — the first run plus
  ``max_attempts - 1`` retries;
* consecutive retries back off exponentially
  (``backoff_base_s * backoff_factor**(attempt-1)``, capped at
  ``backoff_max_s``) with **deterministic jitter** derived from the
  task's seed — retrying the same task at the same attempt always waits
  the same time, so fault-injection runs are reproducible while
  distinct tasks still de-synchronise;
* once attempts are exhausted, ``degrade_in_process`` decides the last
  rung of the ladder: run the task in the parent process (graceful
  degradation — the sweep completes, slower) or raise the typed error.

Deterministic task-function exceptions (:class:`~repro.exec.faults.
TaskError`) are never retried: a pure task that raised once will raise
again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _stable_fraction(*parts) -> float:
    """A process-stable pseudo-random fraction in ``[0, 1)`` of ``parts``."""
    digest = hashlib.sha256(
        ":".join(repr(part) for part in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, to re-run a failed task."""

    #: Total executions a task may get (1 = never retry).
    max_attempts: int = 1
    #: First-retry backoff, seconds.
    backoff_base_s: float = 0.05
    #: Exponential growth per further retry.
    backoff_factor: float = 2.0
    #: Backoff ceiling, seconds.
    backoff_max_s: float = 2.0
    #: Jitter amplitude as a fraction of the backoff (0 = none).
    jitter: float = 0.25
    #: After attempts are exhausted: run in the parent process instead
    #: of raising (the bottom rung of the degradation ladder).
    degrade_in_process: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def retries(self) -> int:
        """Retries on top of the first execution."""
        return self.max_attempts - 1

    def exhausted(self, attempts: int) -> bool:
        """Have ``attempts`` failed executions used up the budget?"""
        return attempts >= self.max_attempts

    def delay_s(self, attempt: int, jitter_seed: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of a task.

        The jitter fraction is a stable hash of ``(jitter_seed,
        attempt)`` — derive ``jitter_seed`` from the task (its grid
        index or scenario seed) and the whole retry timeline of a run
        is deterministic.
        """
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        return base * (1.0 + self.jitter * _stable_fraction(
            jitter_seed, attempt
        ))


#: The default for ``process``/``cluster`` backends: fail fast with a
#: typed error on the first transient fault (pre-fault-layer behaviour,
#: minus the opaque ``BrokenProcessPool``).
NO_RETRY = RetryPolicy()


def default_retry_policy(retries: int) -> RetryPolicy:
    """The policy a CLI ``--retries N`` means: N retries, then degrade
    to in-process execution rather than failing the sweep."""
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    return RetryPolicy(max_attempts=retries + 1, degrade_in_process=True)
