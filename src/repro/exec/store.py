"""Content-addressed artifact store for executed plans.

The cache key of a plan is a SHA-256 over its **canonical** serialised
form (sorted keys, compact separators) plus a code-version salt — so two
plans that mean the same experiment hash identically regardless of dict
insertion order, while any result-affecting edit (a sweep point, a
solver config field, the seed) produces a different key. Fields that
provably do not affect the result are excluded: ``workers`` only moves
work between processes (all backends are bit-identical), so a sweep
cached under ``workers=4`` is a hit for the same plan at ``workers=1``.
A hit always serves the **producing** run's bytes — including its
``workers`` value in the embedded plan/metadata provenance — which is
what keeps a warm re-run byte-identical to the cold run that filled the
cache; the series themselves are identical for every worker count.

Two artifact granularities live under one key:

* ``result.json`` — the full executed :class:`~repro.api.run.ResultSet`
  (series + plan provenance); an unchanged re-run is a pure cache hit.
* ``tasks/<task_id>.json`` — one per (sweep point, topology) task; a
  killed sweep resumes from the completed tasks instead of recomputing
  them.

All writes are atomic (same-directory temp file + ``os.replace``), so
concurrent workers — or two sweeps sharing a cache directory — never
expose a torn file; readers treat unreadable or foreign payloads as
cache misses rather than failures.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError

#: Format tag embedded in every per-task artifact.
TASK_FORMAT = "trimcaching-task-v1"

#: Code-version salt folded into every cache key. Bump this whenever a
#: change anywhere in the pipeline can alter executed results (solver
#: behaviour, seed derivation, serialisation layout): old cache entries
#: then miss instead of resurrecting stale numbers.
CODE_VERSION_SALT = "trimcaching-exec-v1"

#: Plan-payload fields excluded from the cache key because they cannot
#: affect the computed result (only how/where it is computed).
_KEY_IRRELEVANT_FIELDS = ("workers",)


def canonical_plan_payload(plan) -> Dict[str, Any]:
    """The plan's serialised form with result-irrelevant fields removed.

    Besides the plan-level ``workers``, any solver config field named
    ``workers`` is stripped too: by repo contract such knobs only widen
    a solver's internal fan-out (``SpecConfig.workers`` is pinned
    byte-identical across widths), so they are execution placement, not
    content.
    """
    from repro.api.plan import plan_to_dict

    payload = plan_to_dict(plan)
    for field in _KEY_IRRELEVANT_FIELDS:
        payload.pop(field, None)
    for solver in payload.get("solvers", ()):
        config = solver.get("config")
        if isinstance(config, dict):
            for field in _KEY_IRRELEVANT_FIELDS:
                config.pop(field, None)
    return payload


def plan_cache_key(plan) -> str:
    """Content address of a plan: SHA-256 hex of salt + canonical JSON."""
    canonical = json.dumps(
        canonical_plan_payload(plan), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256()
    digest.update(CODE_VERSION_SALT.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (visible all-or-nothing).

    The temp file lives in the target directory so ``os.replace`` is a
    same-filesystem rename; concurrent writers race benignly (last
    complete write wins, readers only ever see complete files).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Filesystem-backed, content-addressed result cache.

    Layout: ``<root>/<plan_key>/result.json`` for the full result,
    ``<root>/<plan_key>/plan.json`` for human-readable provenance, and
    ``<root>/<plan_key>/tasks/<task_id>.json`` for per-task partials.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def plan_dir(self, key: str) -> Path:
        """Directory holding every artifact of one plan key."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.root / key

    def result_path(self, key: str) -> Path:
        """Path of the full cached :class:`ResultSet` JSON."""
        return self.plan_dir(key) / "result.json"

    def task_path(self, key: str, task_id: str) -> Path:
        """Path of one task's partial-result JSON."""
        if not task_id or "/" in task_id or task_id.startswith("."):
            raise ConfigurationError(f"malformed task id {task_id!r}")
        return self.plan_dir(key) / "tasks" / f"{task_id}.json"

    # ------------------------------------------------------------------
    # Full results
    # ------------------------------------------------------------------
    def has_result(self, key: str) -> bool:
        """Is a full result cached under ``key``?"""
        return self.result_path(key).is_file()

    def load_result(self, key: str, registry=None):
        """The cached :class:`ResultSet`, or ``None`` on any miss.

        Corrupt or foreign files are treated as misses: a cache must
        degrade to recomputation, never block it.
        """
        from repro.errors import ReproError
        from repro.sim.serialization import result_set_from_json

        path = self.result_path(key)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError):
            # A torn write can leave invalid UTF-8 on disk; that file is
            # as much a miss as a missing one.
            return None
        try:
            return result_set_from_json(text, registry)
        except (ReproError, KeyError, TypeError, ValueError, AttributeError):
            # Foreign-but-parseable payloads (a JSON list, a bare format
            # stub) surface as attribute/key errors, not ReproError.
            return None

    def save_result(self, key: str, result) -> None:
        """Atomically cache a full result (and its plan provenance)."""
        from repro.sim.serialization import result_set_to_json

        _atomic_write_text(self.result_path(key), result_set_to_json(result))
        plan = getattr(result, "plan", None)
        if plan is not None:
            from repro.api.plan import plan_to_json

            _atomic_write_text(
                self.plan_dir(key) / "plan.json", plan_to_json(plan)
            )

    # ------------------------------------------------------------------
    # Per-task partials
    # ------------------------------------------------------------------
    def load_task(
        self, key: str, task_id: str
    ) -> Optional[List[Dict[str, Tuple[float, float]]]]:
        """One task's cached outcomes, or ``None`` on any miss.

        The payload shape mirrors what a sweep task computes: one
        ``{algorithm: (score, runtime_s)}`` dict per scenario seed.
        JSON floats round-trip exactly (``repr``-based), so restored
        scores fold into series bit-identical to freshly computed ones.
        """
        path = self.task_path(key, task_id)
        try:
            payload = json.loads(path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != TASK_FORMAT
        ):
            return None
        try:
            return [
                {
                    algo: (float(pair[0]), float(pair[1]))
                    for algo, pair in per_algo.items()
                }
                for per_algo in payload["outcomes"]
            ]
        except (KeyError, TypeError, ValueError, IndexError, AttributeError):
            return None

    def save_task(
        self,
        key: str,
        task_id: str,
        outcomes: List[Dict[str, Tuple[float, float]]],
    ) -> None:
        """Atomically cache one task's outcomes."""
        payload = {
            "format": TASK_FORMAT,
            "task_id": task_id,
            "outcomes": [
                {
                    algo: [float(score), float(runtime)]
                    for algo, (score, runtime) in per_algo.items()
                }
                for per_algo in outcomes
            ],
        }
        _atomic_write_text(
            self.task_path(key, task_id),
            json.dumps(payload, sort_keys=True),
        )

    def completed_tasks(self, key: str) -> Set[str]:
        """Ids of every task with a cached partial under ``key``."""
        tasks_dir = self.plan_dir(key) / "tasks"
        if not tasks_dir.is_dir():
            return set()
        return {path.stem for path in tasks_dir.glob("*.json")}

    def clear_tasks(self, key: str) -> None:
        """Drop the per-task partials (the full result supersedes them)."""
        tasks_dir = self.plan_dir(key) / "tasks"
        if not tasks_dir.is_dir():
            return
        for path in tasks_dir.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArtifactStore({str(self.root)!r})"
