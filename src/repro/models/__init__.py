"""Parameter-sharing AI model library substrate.

This package models what the paper calls the *model library* ``I``: a set
of AI models decomposed into *parameter blocks* ``J``, where a block shared
by several models is stored once per edge server. It also contains the
simulated fine-tuning operations that create sharing, the synthetic library
generators matching the paper's §VII-A construction, Zipf request
popularity, and the accuracy-vs-frozen-layers curve behind Fig. 1.
"""

from repro.models.accuracy import AccuracyCurve, accuracy_after_freezing
from repro.models.blocks import ParameterBlock
from repro.models.finetune import (
    FineTuner,
    PretrainedRoot,
    make_resnet_root,
    make_transformer_root,
)
from repro.models.generators import (
    GeneralCaseConfig,
    SpecialCaseConfig,
    build_general_case_library,
    build_special_case_library,
)
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.models.popularity import ZipfPopularity, uniform_popularity

__all__ = [
    "ParameterBlock",
    "Model",
    "ModelLibrary",
    "FineTuner",
    "PretrainedRoot",
    "make_resnet_root",
    "make_transformer_root",
    "SpecialCaseConfig",
    "GeneralCaseConfig",
    "build_special_case_library",
    "build_general_case_library",
    "ZipfPopularity",
    "uniform_popularity",
    "AccuracyCurve",
    "accuracy_after_freezing",
]
