"""Accuracy vs. number of frozen bottom layers (Fig. 1 substitution).

Paper Fig. 1 fine-tunes ResNet-50 for two CIFAR-10 super-tasks
("transportation" and "animal") at increasing frozen depths and reports
that accuracy stays nearly flat: even with the first 90% of trainable
layers frozen (up to layer 97), the average degradation is only ~4.7%,
with a worst case of 5.2% ("transportation") and ~4.05% ("animal").

We cannot train networks offline, so this module provides a calibrated
parametric curve with the same qualitative shape — flat for shallow
freezing, gently decreasing as the frozen prefix approaches the head —
anchored to the paper's reported endpoints. Fig. 1 is motivation only; no
algorithm consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AccuracyCurve:
    """Parametric accuracy-degradation curve for bottom-layer freezing.

    The degradation grows like a power of the frozen fraction, which keeps
    the curve nearly flat at shallow depth and steepening near the head:

    ``acc(n) = base_accuracy - max_drop * (n / total_layers) ** sharpness``

    Attributes
    ----------
    base_accuracy:
        Accuracy with zero frozen layers (full fine-tuning).
    max_drop:
        Degradation when every trainable layer is frozen.
    sharpness:
        Power-law exponent (> 1 keeps the curve flat early).
    total_layers:
        Number of freezable layers of the backbone.
    """

    base_accuracy: float
    max_drop: float
    sharpness: float
    total_layers: int

    def __post_init__(self) -> None:
        if not 0 < self.base_accuracy <= 1:
            raise ConfigurationError("base_accuracy must be in (0, 1]")
        if not 0 <= self.max_drop <= self.base_accuracy:
            raise ConfigurationError("max_drop must be in [0, base_accuracy]")
        if self.sharpness <= 0:
            raise ConfigurationError("sharpness must be positive")
        if self.total_layers < 1:
            raise ConfigurationError("total_layers must be at least 1")

    def accuracy(self, n_frozen: int) -> float:
        """Predicted accuracy with ``n_frozen`` bottom layers frozen."""
        if not 0 <= n_frozen <= self.total_layers:
            raise ConfigurationError(
                f"n_frozen must be in [0, {self.total_layers}], got {n_frozen}"
            )
        fraction = n_frozen / self.total_layers
        return self.base_accuracy - self.max_drop * fraction**self.sharpness

    def curve(self, depths: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`accuracy` over many depths."""
        return np.array([self.accuracy(depth) for depth in depths])


#: ResNet-50 "transportation" task: 5.2% drop at 90% frozen (paper Fig. 1).
TRANSPORTATION_CURVE = AccuracyCurve(
    base_accuracy=0.978, max_drop=0.071, sharpness=3.2, total_layers=107
)

#: ResNet-50 "animal" task: ~4.05% drop at 90% frozen (paper Fig. 1).
ANIMAL_CURVE = AccuracyCurve(
    base_accuracy=0.952, max_drop=0.055, sharpness=3.2, total_layers=107
)


def accuracy_after_freezing(n_frozen: int, task: str = "transportation") -> float:
    """Look up the calibrated Fig.-1 curve for one of the paper's tasks."""
    curves = {"transportation": TRANSPORTATION_CURVE, "animal": ANIMAL_CURVE}
    if task not in curves:
        raise ConfigurationError(
            f"task must be one of {sorted(curves)}, got {task!r}"
        )
    return curves[task].accuracy(n_frozen)
