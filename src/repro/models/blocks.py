"""Parameter blocks — the unit of storage in TrimCaching.

A :class:`ParameterBlock` is a contiguous set of parameters treated
atomically by the caching problem (paper §III-B): a CNN layer, a
transformer block, a LoRA adapter, or a whole backbone, depending on how
models share parameters. Two models *share* a block when they reference the
same block id; an edge server then stores that block once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LibraryError


@dataclass(frozen=True)
class ParameterBlock:
    """An atomic, immutable unit of model parameters.

    Attributes
    ----------
    block_id:
        Unique non-negative integer id within a library.
    size_bytes:
        Storage footprint of the block.
    name:
        Human-readable label (layer path, adapter name, ...).
    origin:
        Identifier of the model/root the block was created by; useful for
        tracing sharing structure but not consumed by the solvers.
    """

    block_id: int
    size_bytes: int
    name: str = ""
    origin: str = ""

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise LibraryError(f"block_id must be non-negative, got {self.block_id}")
        if self.size_bytes <= 0:
            raise LibraryError(
                f"block {self.block_id} size must be positive, got {self.size_bytes}"
            )

    def __str__(self) -> str:
        label = self.name or f"block{self.block_id}"
        return f"{label}({self.size_bytes}B)"
