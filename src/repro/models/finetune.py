"""Simulated fine-tuning: the operations that create parameter sharing.

The paper's libraries are built by actually fine-tuning ResNets; the
placement problem, however, consumes only *which blocks exist, their sizes,
and which models reference them*. :class:`FineTuner` therefore simulates
the three sharing-creating operations on parameter tables alone:

* :meth:`FineTuner.freeze_bottom` — bottom-layer freezing: the first ``n``
  tensors of the parent are reused (shared blocks), the rest are retrained
  (fresh specific blocks of the same sizes);
* :meth:`FineTuner.full_finetune` — all parameters retrained: a brand-new
  model with no blocks shared with its parent (used for the paper's
  first-round general-case models);
* :meth:`FineTuner.lora` — PEFT: the whole parent is frozen and shared,
  plus one small specific adapter block.

A single :class:`FineTuner` instance allocates globally unique block and
model ids and finally assembles a :class:`~repro.models.library.ModelLibrary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.resnet import LayerSpec, ResNetSpec, resnet_layer_table
from repro.data.transformer import (
    TransformerSpec,
    lora_adapter_params,
    transformer_layer_table,
)
from repro.errors import LibraryError
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model


@dataclass(frozen=True)
class PretrainedRoot:
    """A pre-trained model serving as the ancestor of fine-tuned models.

    Roots are *not* library models themselves unless explicitly added;
    they are templates whose bottom layers become shared blocks.

    Attributes
    ----------
    name:
        Unique root name (e.g. ``"resnet50"``).
    layers:
        Weight tensors in forward order; ``layers[-1]`` is the head.
    bytes_per_param:
        Storage per scalar parameter (4 = fp32).
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    bytes_per_param: int = 4

    def __post_init__(self) -> None:
        if not self.layers:
            raise LibraryError(f"root {self.name!r} must have at least one layer")
        if self.bytes_per_param <= 0:
            raise LibraryError("bytes_per_param must be positive")

    @property
    def num_layers(self) -> int:
        """Number of weight tensors (the paper's freezable 'layers')."""
        return len(self.layers)

    def layer_size_bytes(self, index: int) -> int:
        """Storage footprint of layer ``index``."""
        return self.layers[index].size_bytes(self.bytes_per_param)

    @property
    def total_size_bytes(self) -> int:
        """Full model footprint."""
        return sum(self.layer_size_bytes(i) for i in range(self.num_layers))


def make_resnet_root(spec: ResNetSpec, num_classes: int = 100) -> PretrainedRoot:
    """Build a :class:`PretrainedRoot` from a ResNet architecture spec."""
    return PretrainedRoot(spec.name, tuple(resnet_layer_table(spec, num_classes)))


def make_transformer_root(spec: TransformerSpec) -> PretrainedRoot:
    """Build a :class:`PretrainedRoot` from a transformer spec."""
    return PretrainedRoot(spec.name, tuple(transformer_layer_table(spec)))


class FineTuner:
    """Allocates blocks/models while simulating fine-tuning operations.

    Usage::

        tuner = FineTuner()
        root = make_resnet_root(RESNET18)
        shark = tuner.freeze_bottom(root, n_frozen=35, name="resnet18/shark")
        whale = tuner.freeze_bottom(root, n_frozen=35, name="resnet18/whale")
        library = tuner.build()   # shark and whale share 35 bottom blocks
    """

    def __init__(self) -> None:
        self._blocks: List[ParameterBlock] = []
        self._models: List[Model] = []
        # Per-root cache of materialised bottom blocks so two fine-tunes of
        # the same root share the *same* block objects for their common
        # frozen prefix.
        self._root_prefix_blocks: Dict[str, List[int]] = {}
        self._roots: Dict[str, PretrainedRoot] = {}

    # ------------------------------------------------------------------
    # Id allocation
    # ------------------------------------------------------------------
    def _new_block(self, size_bytes: int, name: str, origin: str) -> int:
        block = ParameterBlock(len(self._blocks), size_bytes, name=name, origin=origin)
        self._blocks.append(block)
        return block.block_id

    def _register_root(self, root: PretrainedRoot) -> None:
        known = self._roots.get(root.name)
        if known is None:
            self._roots[root.name] = root
            self._root_prefix_blocks[root.name] = []
        elif known is not root and known.layers != root.layers:
            raise LibraryError(
                f"two different roots registered under name {root.name!r}"
            )

    def _root_prefix(self, root: PretrainedRoot, depth: int) -> List[int]:
        """Block ids of the first ``depth`` layers of ``root``.

        Materialised lazily and cached so the prefix blocks are shared
        across every model frozen from the same root.
        """
        self._register_root(root)
        cache = self._root_prefix_blocks[root.name]
        while len(cache) < depth:
            index = len(cache)
            cache.append(
                self._new_block(
                    root.layer_size_bytes(index),
                    name=f"{root.name}.{root.layers[index].name}",
                    origin=root.name,
                )
            )
        return cache[:depth]

    # ------------------------------------------------------------------
    # Fine-tuning operations
    # ------------------------------------------------------------------
    def freeze_bottom(
        self,
        parent: "PretrainedRoot | Model",
        n_frozen: int,
        name: str,
        head_params: Optional[int] = None,
    ) -> Model:
        """Fine-tune ``parent`` with its first ``n_frozen`` tensors frozen.

        The frozen prefix is shared with the parent (and with every other
        model frozen from it); the remaining tensors become fresh specific
        blocks of the same sizes. For a :class:`Model` parent (the paper's
        second-round general-case fine-tuning) the prefix reuses the
        parent's own block ids.

        Parameters
        ----------
        parent:
            A pre-trained root or an existing library model.
        n_frozen:
            How many bottom tensors to freeze; must leave at least the
            head un-frozen (``0 <= n_frozen < parent depth``).
        name:
            Name of the new model.
        head_params:
            Optional parameter count for a replacement head (e.g. a
            different class count). Defaults to the parent head's size.
        """
        if isinstance(parent, PretrainedRoot):
            depth = parent.num_layers
            layer_sizes = [parent.layer_size_bytes(i) for i in range(depth)]
            layer_names = [layer.name for layer in parent.layers]
            root_name = parent.name
            bytes_per_param = parent.bytes_per_param
            prefix_supplier = lambda: self._root_prefix(parent, n_frozen)
        else:
            depth = parent.num_blocks
            layer_sizes = [
                self._block_size_by_id(b) for b in parent.block_ids
            ]
            layer_names = [
                self._blocks[b].name or f"layer{k}"
                for k, b in enumerate(parent.block_ids)
            ]
            root_name = parent.name or f"model{parent.model_id}"
            bytes_per_param = 4
            prefix_supplier = lambda: list(parent.block_ids[:n_frozen])

        if not 0 <= n_frozen < depth:
            raise LibraryError(
                f"n_frozen must be in [0, {depth - 1}] for {name!r}, got {n_frozen}"
            )

        block_ids = prefix_supplier()
        for index in range(n_frozen, depth):
            is_head = index == depth - 1
            size = layer_sizes[index]
            if is_head and head_params is not None:
                if head_params <= 0:
                    raise LibraryError("head_params must be positive")
                size = head_params * bytes_per_param
            block_ids.append(
                self._new_block(
                    size, name=f"{name}.{layer_names[index]}", origin=name
                )
            )
        return self._add_model(name, block_ids, root=root_name)

    def full_finetune(self, parent: PretrainedRoot, name: str) -> Model:
        """Retrain every parameter: a model sharing nothing with its parent."""
        block_ids = [
            self._new_block(
                parent.layer_size_bytes(index),
                name=f"{name}.{parent.layers[index].name}",
                origin=name,
            )
            for index in range(parent.num_layers)
        ]
        return self._add_model(name, block_ids, root=parent.name)

    def lora(
        self,
        parent: PretrainedRoot,
        name: str,
        adapter_params: int,
    ) -> Model:
        """PEFT fine-tuning: share the whole parent, add one adapter block."""
        if adapter_params <= 0:
            raise LibraryError(f"adapter_params must be positive, got {adapter_params}")
        block_ids = self._root_prefix(parent, parent.num_layers)
        adapter = self._new_block(
            adapter_params * parent.bytes_per_param,
            name=f"{name}.lora_adapter",
            origin=name,
        )
        return self._add_model(name, block_ids + [adapter], root=parent.name)

    def lora_for_transformer(
        self, parent: PretrainedRoot, spec: TransformerSpec, name: str, rank: int
    ) -> Model:
        """Convenience wrapper computing the adapter size from a spec."""
        return self.lora(parent, name, lora_adapter_params(spec, rank))

    def add_root_as_model(self, root: PretrainedRoot, name: Optional[str] = None) -> Model:
        """Publish a pre-trained root itself as a downloadable model."""
        block_ids = self._root_prefix(root, root.num_layers)
        return self._add_model(name or root.name, list(block_ids), root=root.name)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _block_size_by_id(self, block_id: int) -> int:
        try:
            return self._blocks[block_id].size_bytes
        except IndexError:
            raise LibraryError(f"unknown block id {block_id}") from None

    def _add_model(self, name: str, block_ids: Sequence[int], root: str) -> Model:
        model = Model(
            model_id=len(self._models),
            block_ids=tuple(block_ids),
            name=name,
            root=root,
        )
        self._models.append(model)
        return model

    @property
    def num_models(self) -> int:
        """Models created so far."""
        return len(self._models)

    def build(self) -> ModelLibrary:
        """Assemble the library from everything created so far."""
        if not self._models:
            raise LibraryError("no models have been fine-tuned yet")
        return ModelLibrary(blocks=self._blocks, models=self._models)
