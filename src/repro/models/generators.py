"""Synthetic model-library builders matching the paper's §VII-A setup.

Two constructions are provided:

* **Special case** (:func:`build_special_case_library`) — every model is
  fine-tuned directly from one of a few pre-trained roots (ResNet-18/34/50
  by default) with bottom-layer freezing, so all shared blocks come from
  the roots' frozen prefixes and their number is *independent of the
  library scale* — exactly the condition TrimCaching Spec requires.

* **General case** (:func:`build_general_case_library`) — the paper's
  two-round construction (Table I): first-round models are *fully*
  fine-tuned per selected superclass (sharing nothing with the original
  roots), then class-level models are frozen-prefix fine-tuned from those
  first-round models. The number of shared blocks now grows with the
  library scale.

Both builders are deterministic given an RNG and truncate to a requested
``num_models`` by interleaving roots so small libraries stay balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.cifar100 import (
    CIFAR100_TAXONOMY,
    TABLE1_FINETUNE_GROUPS,
    all_classes,
    classes_of,
)
from repro.data.resnet import RESNET18, RESNET34, RESNET50, ResNetSpec
from repro.errors import ConfigurationError
from repro.models.finetune import FineTuner, PretrainedRoot, make_resnet_root
from repro.models.library import ModelLibrary
from repro.utils.rng import SeedLike, as_generator

#: Paper §VII-A: admissible frozen-bottom-layer counts per root.
PAPER_FROZEN_RANGES: Dict[str, Tuple[int, int]] = {
    "resnet18": (29, 40),
    "resnet34": (49, 72),
    "resnet50": (87, 106),
}

#: Head size of a downstream task classifier (binary one-vs-rest head).
_TASK_CLASSES = 2


def _default_roots() -> Tuple[ResNetSpec, ...]:
    return (RESNET18, RESNET34, RESNET50)


@dataclass(frozen=True)
class SpecialCaseConfig:
    """Parameters of the special-case library construction.

    Attributes
    ----------
    num_models:
        Total library size ``|I|`` (paper: 300 full-scale, 30 in Fig. 4).
    roots:
        Pre-trained architectures models are fine-tuned from.
    frozen_ranges:
        Per-root inclusive ``(low, high)`` range the frozen-layer count is
        drawn from (paper's measured ranges by default).
    pretrain_classes:
        Class count of the roots' original heads (CIFAR-100).
    """

    num_models: int = 300
    roots: Tuple[ResNetSpec, ...] = field(default_factory=_default_roots)
    frozen_ranges: Optional[Mapping[str, Tuple[int, int]]] = None
    pretrain_classes: int = 100

    def __post_init__(self) -> None:
        if self.num_models < 1:
            raise ConfigurationError("num_models must be at least 1")
        if not self.roots:
            raise ConfigurationError("at least one root architecture is required")

    def frozen_range(self, root: PretrainedRoot) -> Tuple[int, int]:
        """Resolve the frozen-layer range for ``root``."""
        ranges = self.frozen_ranges or PAPER_FROZEN_RANGES
        if root.name in ranges:
            low, high = ranges[root.name]
        else:
            # Unknown architecture: freeze 70-97% of its tensors, the same
            # relative span as the paper's ResNet ranges.
            low = int(0.70 * root.num_layers)
            high = min(root.num_layers - 1, int(0.97 * root.num_layers))
        if not 0 <= low <= high < root.num_layers:
            raise ConfigurationError(
                f"invalid frozen range ({low}, {high}) for root {root.name!r} "
                f"with {root.num_layers} layers"
            )
        return low, high


def _interleaved_tasks(num_roots: int, num_models: int) -> List[Tuple[int, int]]:
    """(root_index, task_index) pairs interleaving roots round-robin."""
    tasks: List[Tuple[int, int]] = []
    per_root = [0] * num_roots
    for counter in range(num_models):
        root_index = counter % num_roots
        tasks.append((root_index, per_root[root_index]))
        per_root[root_index] += 1
    return tasks


def build_special_case_library(
    config: SpecialCaseConfig = SpecialCaseConfig(),
    seed: SeedLike = 0,
) -> ModelLibrary:
    """Build a special-case library (fixed shared blocks from few roots).

    Each model is a CIFAR-100 class-level classifier fine-tuned from one
    root with a frozen bottom prefix drawn from the root's admissible
    range. Shared blocks are exactly the union of the deepest materialised
    prefix per root — a count independent of ``num_models``.
    """
    rng = as_generator(seed)
    roots = [
        make_resnet_root(spec, config.pretrain_classes) for spec in config.roots
    ]
    class_names = all_classes()
    tuner = FineTuner()
    for root_index, task_index in _interleaved_tasks(len(roots), config.num_models):
        root = roots[root_index]
        low, high = config.frozen_range(root)
        n_frozen = int(rng.integers(low, high + 1))
        class_name = class_names[task_index % len(class_names)]
        suffix = task_index // len(class_names)
        label = class_name if suffix == 0 else f"{class_name}#{suffix}"
        feature_dim = config.roots[root_index].feature_dim
        tuner.freeze_bottom(
            root,
            n_frozen=n_frozen,
            name=f"{root.name}/{label}",
            head_params=feature_dim * _TASK_CLASSES + _TASK_CLASSES,
        )
    return tuner.build()


@dataclass(frozen=True)
class GeneralCaseConfig:
    """Parameters of the general-case (two-round, Table I) construction.

    Attributes
    ----------
    num_models:
        Total library size after truncation.
    roots:
        Pre-trained architectures (first round starts from these).
    finetune_groups:
        First-round superclass -> second-round superclasses (Table I).
    include_first_round:
        Whether the first-round superclass models themselves are
        downloadable library members (default True).
    pretrain_classes:
        Class count of the roots' original heads.
    """

    num_models: int = 300
    roots: Tuple[ResNetSpec, ...] = field(default_factory=_default_roots)
    finetune_groups: Optional[Mapping[str, Tuple[str, ...]]] = None
    include_first_round: bool = True
    pretrain_classes: int = 100

    def __post_init__(self) -> None:
        if self.num_models < 1:
            raise ConfigurationError("num_models must be at least 1")
        if not self.roots:
            raise ConfigurationError("at least one root architecture is required")
        groups = self.groups
        for first, seconds in groups.items():
            unknown = [s for s in (first, *seconds) if s not in CIFAR100_TAXONOMY]
            if unknown:
                raise ConfigurationError(
                    f"unknown CIFAR-100 superclasses in finetune groups: {unknown}"
                )

    @property
    def groups(self) -> Mapping[str, Tuple[str, ...]]:
        """The effective first-round -> second-round superclass mapping."""
        return self.finetune_groups or TABLE1_FINETUNE_GROUPS


def build_general_case_library(
    config: GeneralCaseConfig = GeneralCaseConfig(),
    seed: SeedLike = 0,
) -> ModelLibrary:
    """Build a general-case library via the paper's two-round fine-tuning.

    Round 1: for every (root, first-round superclass) pair, fully fine-tune
    the root — producing a parent model that shares nothing with other
    parents. Round 2: for every class of the associated superclasses,
    freeze a bottom prefix of the parent. Sharing therefore happens *within
    each parent's family*, and the shared-block count grows with the number
    of families — the general case.
    """
    rng = as_generator(seed)
    roots = [
        make_resnet_root(spec, config.pretrain_classes) for spec in config.roots
    ]
    frozen_cfg = SpecialCaseConfig(
        num_models=1, roots=config.roots, pretrain_classes=config.pretrain_classes
    )

    # Families are (root, first-round superclass) pairs. We interleave model
    # production across families round-robin so truncated libraries keep
    # several independent families, preserving the "many shared blocks"
    # character of the general case.
    families: List[Tuple[PretrainedRoot, str, List[str]]] = []
    for root in roots:
        for first, seconds in config.groups.items():
            # Second-round classes: the first-round superclass's own classes
            # plus every class of its associated superclasses.
            class_pool = classes_of(first)
            for superclass in seconds:
                class_pool.extend(classes_of(superclass))
            families.append((root, first, class_pool))

    # A family's class pool can be cycled (suffix #2, #3, ...) so the
    # paper's 300-model scale is reachable from Table I's 189 natural
    # slots; the cap below only guards against absurd requests.
    max_cycles = 50
    tuner = FineTuner()
    produced = 0
    library_model_ids: List[int] = []
    parents: Dict[int, object] = {}
    cursor = [0] * len(families)
    while produced < config.num_models:
        capacity_left = any(
            cursor[index] < max_cycles * len(family[2])
            for index, family in enumerate(families)
        )
        if not capacity_left:
            raise ConfigurationError(
                f"cannot produce {config.num_models} models from "
                f"{len(families)} families ({produced} available)"
            )
        for family_index, (root, first, class_pool) in enumerate(families):
            if produced >= config.num_models:
                break
            if cursor[family_index] >= max_cycles * len(class_pool):
                continue
            if family_index not in parents:
                parent = tuner.full_finetune(
                    root, name=f"{root.name}/{first} (round 1)"
                )
                parents[family_index] = parent
                if config.include_first_round:
                    library_model_ids.append(parent.model_id)
                    produced += 1
                    continue
            position = cursor[family_index]
            class_name = class_pool[position % len(class_pool)]
            cycle = position // len(class_pool)
            if cycle:
                class_name = f"{class_name}#{cycle + 1}"
            parent = parents[family_index]
            low, high = frozen_cfg.frozen_range(root)
            n_frozen = int(rng.integers(low, high + 1))
            child = tuner.freeze_bottom(
                parent,  # type: ignore[arg-type]
                n_frozen=n_frozen,
                name=f"{root.name}/{first}/{class_name}",
            )
            library_model_ids.append(child.model_id)
            produced += 1
            cursor[family_index] = position + 1
    library = tuner.build()
    if len(library_model_ids) != library.num_models:
        library = library.subset(sorted(library_model_ids))
    return library
