"""The parameter-sharing model library (paper §III-B).

:class:`ModelLibrary` owns the parameter blocks ``J`` and models ``I`` and
answers every structural query the solvers need:

* ``I_j`` — which models contain block ``j`` (:meth:`models_with_block`);
* shared vs. specific block classification;
* deduplicated storage footprints (union of block sizes), the quantity the
  submodular constraint (6b) is built from;
* marginal storage cost of adding one model to a cached block set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import LibraryError
from repro.models.blocks import ParameterBlock
from repro.models.model import Model


@dataclass(frozen=True)
class SharingStats:
    """Summary of how much storage parameter sharing saves."""

    num_models: int
    num_blocks: int
    num_shared_blocks: int
    total_size_independent: int
    total_size_deduplicated: int

    @property
    def savings_ratio(self) -> float:
        """Fraction of storage saved by deduplication (0 = none)."""
        if self.total_size_independent == 0:
            return 0.0
        return 1.0 - self.total_size_deduplicated / self.total_size_independent


class ModelLibrary:
    """An immutable collection of models over a shared block pool.

    Parameters
    ----------
    blocks:
        All parameter blocks; ids must be unique.
    models:
        All models; ids must be unique and every referenced block id must
        exist in ``blocks``.

    Notes
    -----
    Instances are logically immutable: all mutating operations return new
    libraries. Internal indexes (``I_j``, shared-block sets) are built once
    at construction.
    """

    def __init__(
        self, blocks: Iterable[ParameterBlock], models: Iterable[Model]
    ) -> None:
        self._blocks: Dict[int, ParameterBlock] = {}
        for block in blocks:
            if block.block_id in self._blocks:
                raise LibraryError(f"duplicate block id {block.block_id}")
            self._blocks[block.block_id] = block

        self._models: Dict[int, Model] = {}
        for model in models:
            if model.model_id in self._models:
                raise LibraryError(f"duplicate model id {model.model_id}")
            missing = model.block_set - self._blocks.keys()
            if missing:
                raise LibraryError(
                    f"model {model.model_id} references unknown blocks {sorted(missing)}"
                )
            self._models[model.model_id] = model

        if not self._models:
            raise LibraryError("library must contain at least one model")

        # I_j: block id -> ids of models containing it.
        self._models_with_block: Dict[int, Set[int]] = {
            block_id: set() for block_id in self._blocks
        }
        for model in self._models.values():
            for block_id in model.block_ids:
                self._models_with_block[block_id].add(model.model_id)

        self._shared_block_ids: FrozenSet[int] = frozenset(
            block_id
            for block_id, owners in self._models_with_block.items()
            if len(owners) > 1
        )
        self._model_sizes: Dict[int, int] = {
            model.model_id: sum(
                self._blocks[b].size_bytes for b in model.block_ids
            )
            for model in self._models.values()
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def model_ids(self) -> List[int]:
        """All model ids in ascending order."""
        return sorted(self._models)

    @property
    def block_ids(self) -> List[int]:
        """All block ids in ascending order."""
        return sorted(self._blocks)

    @property
    def num_models(self) -> int:
        """Number of models ``|I|``."""
        return len(self._models)

    @property
    def num_blocks(self) -> int:
        """Number of parameter blocks ``|J|``."""
        return len(self._blocks)

    def model(self, model_id: int) -> Model:
        """Look up a model by id."""
        try:
            return self._models[model_id]
        except KeyError:
            raise LibraryError(f"unknown model id {model_id}") from None

    def block(self, block_id: int) -> ParameterBlock:
        """Look up a block by id."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise LibraryError(f"unknown block id {block_id}") from None

    def models(self) -> List[Model]:
        """All models in id order."""
        return [self._models[i] for i in self.model_ids]

    def blocks(self) -> List[ParameterBlock]:
        """All blocks in id order."""
        return [self._blocks[j] for j in self.block_ids]

    # ------------------------------------------------------------------
    # Sharing structure
    # ------------------------------------------------------------------
    def models_with_block(self, block_id: int) -> FrozenSet[int]:
        """``I_j``: ids of models containing ``block_id``."""
        if block_id not in self._models_with_block:
            raise LibraryError(f"unknown block id {block_id}")
        return frozenset(self._models_with_block[block_id])

    @property
    def shared_block_ids(self) -> FrozenSet[int]:
        """Blocks contained in more than one model (paper's shared blocks)."""
        return self._shared_block_ids

    @property
    def specific_block_ids(self) -> FrozenSet[int]:
        """Blocks contained in exactly one model."""
        return frozenset(self._blocks) - self._shared_block_ids

    def shared_blocks_of(self, model_id: int) -> FrozenSet[int]:
        """The shared blocks of one model."""
        return self.model(model_id).block_set & self._shared_block_ids

    def specific_blocks_of(self, model_id: int) -> FrozenSet[int]:
        """The specific (exclusive) blocks of one model."""
        return self.model(model_id).block_set - self._shared_block_ids

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def block_size(self, block_id: int) -> int:
        """Size of one block, ``D'_j``."""
        return self.block(block_id).size_bytes

    def blocks_size(self, block_ids: AbstractSet[int]) -> int:
        """Total size of a set of blocks."""
        return sum(self.block(b).size_bytes for b in block_ids)

    def model_size(self, model_id: int) -> int:
        """Full size of one model, ``D_i`` (sum of its block sizes)."""
        if model_id not in self._model_sizes:
            raise LibraryError(f"unknown model id {model_id}")
        return self._model_sizes[model_id]

    def specific_size_of(self, model_id: int) -> int:
        """Size of one model's specific blocks only."""
        return self.blocks_size(self.specific_blocks_of(model_id))

    def union_blocks(self, model_ids: Iterable[int]) -> Set[int]:
        """The union of block ids across ``model_ids``."""
        union: Set[int] = set()
        for model_id in model_ids:
            union |= self.model(model_id).block_set
        return union

    def deduplicated_size(self, model_ids: Iterable[int]) -> int:
        """Storage to hold ``model_ids`` with shared blocks stored once.

        This is ``g_m`` (eq. 7) evaluated on one server's cached set.
        """
        return self.blocks_size(self.union_blocks(model_ids))

    def independent_size(self, model_ids: Iterable[int]) -> int:
        """Storage if every model is stored in full (no deduplication)."""
        return sum(self.model_size(i) for i in model_ids)

    def marginal_size(self, model_id: int, cached_blocks: AbstractSet[int]) -> int:
        """Extra bytes needed to add ``model_id`` given ``cached_blocks``."""
        model = self.model(model_id)
        return sum(
            self._blocks[b].size_bytes
            for b in model.block_ids
            if b not in cached_blocks
        )

    def sharing_stats(self) -> SharingStats:
        """Library-wide sharing summary (used by Table I reporting)."""
        all_ids = self.model_ids
        return SharingStats(
            num_models=self.num_models,
            num_blocks=self.num_blocks,
            num_shared_blocks=len(self._shared_block_ids),
            total_size_independent=self.independent_size(all_ids),
            total_size_deduplicated=self.deduplicated_size(all_ids),
        )

    # ------------------------------------------------------------------
    # Structure checks and derived libraries
    # ------------------------------------------------------------------
    def specific_blocks_are_exclusive(self) -> bool:
        """True when every non-shared block belongs to at most one model.

        Holds by definition of "shared" (zero-owner orphan blocks are
        allowed); retained as a cheap invariant check plus a readable name
        for the condition the Spec solver relies on (the DP treats
        specific sizes as additive).
        """
        return all(
            len(self._models_with_block[b]) <= 1 for b in self.specific_block_ids
        )

    def subset(self, model_ids: Sequence[int]) -> "ModelLibrary":
        """A new library restricted to ``model_ids`` (blocks pruned).

        Note that a block shared by several models may become specific in
        the subset if only one of its owners survives.
        """
        if not model_ids:
            raise LibraryError("subset requires at least one model id")
        chosen = [self.model(i) for i in model_ids]
        needed_blocks = set()
        for model in chosen:
            needed_blocks |= model.block_set
        return ModelLibrary(
            blocks=[self._blocks[b] for b in sorted(needed_blocks)],
            models=chosen,
        )

    def __contains__(self, model_id: object) -> bool:
        return model_id in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ModelLibrary(models={self.num_models}, blocks={self.num_blocks}, "
            f"shared={len(self._shared_block_ids)})"
        )
