"""The :class:`Model` type: an AI model as an ordered set of blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.errors import LibraryError


@dataclass(frozen=True)
class Model:
    """One downloadable AI model in the library.

    A model is fully described, for caching purposes, by the parameter
    blocks it comprises. Block *objects* live in the owning
    :class:`~repro.models.library.ModelLibrary`; a model stores ids only.

    Attributes
    ----------
    model_id:
        Unique non-negative integer id within a library.
    block_ids:
        Ids of the model's parameter blocks in forward (bottom-up) order.
    name:
        Human-readable label (e.g. ``"resnet50/shark"``).
    root:
        Name of the pre-trained model this one was fine-tuned from, or
        ``""`` for a from-scratch model. Metadata only.
    """

    model_id: int
    block_ids: Tuple[int, ...]
    name: str = ""
    root: str = ""
    _block_set: FrozenSet[int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.model_id < 0:
            raise LibraryError(f"model_id must be non-negative, got {self.model_id}")
        if not self.block_ids:
            raise LibraryError(f"model {self.model_id} must contain at least one block")
        block_set = frozenset(self.block_ids)
        if len(block_set) != len(self.block_ids):
            raise LibraryError(
                f"model {self.model_id} lists a duplicate block id"
            )
        object.__setattr__(self, "_block_set", block_set)

    @property
    def block_set(self) -> FrozenSet[int]:
        """The model's block ids as a frozenset (for fast membership)."""
        return self._block_set

    @property
    def num_blocks(self) -> int:
        """Number of parameter blocks in the model."""
        return len(self.block_ids)

    def contains_block(self, block_id: int) -> bool:
        """Whether the model includes ``block_id``."""
        return block_id in self._block_set

    def __str__(self) -> str:
        label = self.name or f"model{self.model_id}"
        return f"{label}[{self.num_blocks} blocks]"
