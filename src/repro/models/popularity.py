"""Request popularity models: ``p_{k,i}`` matrices.

The paper draws each user's request probability over the model library from
a Zipf distribution (§VII-A). :class:`ZipfPopularity` reproduces that, with
an optional per-user permutation of the popularity ranking (so users need
not agree on which model is "most popular"); each user's row sums to one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ZipfPopularity:
    """Zipf request-probability generator.

    Attributes
    ----------
    exponent:
        Zipf skew ``s``; rank ``r`` has weight ``r**-s``. ``s = 0`` gives a
        uniform distribution.
    per_user_permutation:
        When True every user gets an independent random assignment of
        ranks to models; when False all users share a single global
        ranking (drawn once).
    """

    exponent: float = 0.8
    per_user_permutation: bool = True

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise ConfigurationError(
                f"Zipf exponent must be non-negative, got {self.exponent}"
            )

    def probabilities(
        self, num_users: int, num_models: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Build the ``(num_users, num_models)`` matrix ``p_{k,i}``.

        Every row sums to 1 (each request is for exactly one model).
        """
        if num_users < 1 or num_models < 1:
            raise ConfigurationError(
                "num_users and num_models must both be at least 1"
            )
        rng = as_generator(seed)
        base = self._base_weights(num_models)
        matrix = np.empty((num_users, num_models))
        if self.per_user_permutation:
            for user in range(num_users):
                matrix[user] = base[rng.permutation(num_models)]
        else:
            shared = base[rng.permutation(num_models)]
            matrix[:] = shared
        return matrix

    def probabilities_batched(
        self, num_users: int, num_models: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Batched ``p_{k,i}`` draw — the ``rng_scheme="v2"`` path.

        One ``rng.permuted`` pass shuffles every user's rank assignment
        at once instead of K per-user ``rng.permutation`` calls. Each
        row is an independent uniform permutation of the same Zipf
        weights, so the matrix is distributed exactly like
        :meth:`probabilities`'s — but it consumes the stream in a
        different layout, so the two methods differ draw-by-draw for
        the same seed (which is why the scheme is versioned).
        """
        if num_users < 1 or num_models < 1:
            raise ConfigurationError(
                "num_users and num_models must both be at least 1"
            )
        rng = as_generator(seed)
        base = self._base_weights(num_models)
        if self.per_user_permutation:
            ranks = np.tile(np.arange(num_models), (num_users, 1))
            return base[rng.permuted(ranks, axis=1)]
        shared = base[rng.permutation(num_models)]
        return np.tile(shared, (num_users, 1))

    def probabilities_batched_chunked(
        self,
        num_users: int,
        num_models: int,
        chunk_size: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Row-blocked :meth:`probabilities_batched`: same matrix, bounded temporaries.

        ``rng.permuted`` shuffles each row with its own independent
        Fisher-Yates pass, so permuting a block of rows consumes exactly
        the stream the full call would have spent on those rows — the
        result equals :meth:`probabilities_batched` bit for bit for any
        ``chunk_size``, while the tiled rank scratch stays
        ``(chunk_size, num_models)`` instead of ``(num_users,
        num_models)``. With a shared global ranking there is a single
        permutation draw and nothing to chunk.
        """
        if num_users < 1 or num_models < 1:
            raise ConfigurationError(
                "num_users and num_models must both be at least 1"
            )
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be at least 1, got {chunk_size}"
            )
        rng = as_generator(seed)
        base = self._base_weights(num_models)
        matrix = np.empty((num_users, num_models))
        if self.per_user_permutation:
            for start in range(0, num_users, chunk_size):
                stop = min(start + chunk_size, num_users)
                ranks = np.tile(np.arange(num_models), (stop - start, 1))
                matrix[start:stop] = base[rng.permuted(ranks, axis=1)]
        else:
            shared = base[rng.permutation(num_models)]
            matrix[:] = shared
        return matrix

    def _base_weights(self, num_models: int) -> np.ndarray:
        """Normalised Zipf weights in rank order."""
        ranks = np.arange(1, num_models + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        return weights / weights.sum()


def uniform_popularity(num_users: int, num_models: int) -> np.ndarray:
    """Uniform ``p_{k,i}`` matrix (every model equally likely)."""
    if num_users < 1 or num_models < 1:
        raise ConfigurationError("num_users and num_models must both be at least 1")
    return np.full((num_users, num_models), 1.0 / num_models)
