"""Wireless edge network substrate.

Everything the paper's system model (§III-A) needs: node geometry in the
simulation area, the Shannon-rate channel model (eq. 1) with Rayleigh
fading, edge servers with per-user bandwidth/power allocation, the constant
edge-to-edge backhaul, end-to-end latency (eqs. 4-5) and the feasibility
indicator ``I1[m,k,i]``, plus the §VII-E user mobility model.
"""

from repro.network.backhaul import Backhaul
from repro.network.channel import ChannelModel
from repro.network.geometry import Point, coverage_sets, pairwise_distances, uniform_points
from repro.network.latency import LatencyModel
from repro.network.mobility import MobilityClass, MobilityModel, MobilityState
from repro.network.servers import EdgeServer
from repro.network.topology import NetworkTopology
from repro.network.users import User

__all__ = [
    "Point",
    "uniform_points",
    "pairwise_distances",
    "coverage_sets",
    "ChannelModel",
    "EdgeServer",
    "User",
    "Backhaul",
    "NetworkTopology",
    "LatencyModel",
    "MobilityClass",
    "MobilityModel",
    "MobilityState",
]
