"""Inter-server backhaul links.

The paper assumes all edge servers are interconnected with a constant
transmission rate ``C_{m,m'}`` (10 Gbps, §VII-A). We model the backhaul as
a complete graph with a uniform rate, but keep per-pair overrides so tests
and extensions can model heterogeneous links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.utils.units import GBPS


@dataclass
class Backhaul:
    """Complete-mesh edge-to-edge backhaul.

    Attributes
    ----------
    default_rate_bps:
        ``C_{m,m'}`` for every pair without an override.
    overrides:
        Optional per-(m, m') symmetric rate overrides.
    """

    default_rate_bps: float = 10 * GBPS
    overrides: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_rate_bps <= 0:
            raise ConfigurationError("default_rate_bps must be positive")
        for pair, rate in self.overrides.items():
            if rate <= 0:
                raise ConfigurationError(f"override rate for {pair} must be positive")

    def rate(self, server_a: int, server_b: int) -> float:
        """Rate of the link between two (distinct) servers, in bits/s."""
        if server_a == server_b:
            raise ConfigurationError(
                "backhaul rate is undefined between a server and itself"
            )
        key = (min(server_a, server_b), max(server_a, server_b))
        return self.overrides.get(key, self.default_rate_bps)

    def transfer_time_s(self, num_bytes: int, server_a: int, server_b: int) -> float:
        """Time to move ``num_bytes`` between two servers."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return 8.0 * num_bytes / self.rate(server_a, server_b)

    def set_rate(self, server_a: int, server_b: int, rate_bps: float) -> None:
        """Install a symmetric per-pair rate override."""
        if rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        if server_a == server_b:
            raise ConfigurationError("cannot set a self-link rate")
        self.overrides[(min(server_a, server_b), max(server_a, server_b))] = rate_bps
