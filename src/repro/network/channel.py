"""Wireless channel model (paper eq. 1).

The expected downlink rate from server ``m`` to user ``k`` is

    C̄_{m,k} = B̄_{m,k} log2(1 + P̄_{m,k} γ0 d_{m,k}^{-α0} / (n0 B̄_{m,k})),

with antenna factor ``γ0``, path-loss exponent ``α0`` and noise power
spectral density ``n0``. Placement decisions use this *expected* rate;
evaluation then re-draws instantaneous rates under Rayleigh fading, where
the channel power gain ``|h|²`` is exponential with unit mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

ArrayLike = Union[float, np.ndarray]

#: Thermal noise floor at ~290 K in W/Hz (-174 dBm/Hz).
DEFAULT_NOISE_PSD = 10.0 ** ((-174.0 - 30.0) / 10.0)


@dataclass(frozen=True)
class ChannelModel:
    """Path-loss + Shannon capacity channel with optional Rayleigh fading.

    Attributes
    ----------
    antenna_gain:
        ``γ0`` in eq. (1); paper uses 1.
    path_loss_exponent:
        ``α0``; paper uses 4.
    noise_psd:
        ``n0`` in W/Hz; the paper leaves it unstated, we default to the
        standard thermal floor of -174 dBm/Hz.
    min_distance:
        Distances are clamped below by this value so the far-field
        path-loss law is never evaluated at ``d -> 0``.
    """

    antenna_gain: float = 1.0
    path_loss_exponent: float = 4.0
    noise_psd: float = DEFAULT_NOISE_PSD
    min_distance: float = 1.0

    def __post_init__(self) -> None:
        if self.antenna_gain <= 0:
            raise ConfigurationError("antenna_gain must be positive")
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")
        if self.noise_psd <= 0:
            raise ConfigurationError("noise_psd must be positive")
        if self.min_distance <= 0:
            raise ConfigurationError("min_distance must be positive")

    # ------------------------------------------------------------------
    def mean_snr(
        self, power_watts: ArrayLike, bandwidth_hz: ArrayLike, distance_m: ArrayLike
    ) -> ArrayLike:
        """Average SNR ``P γ0 d^{-α} / (n0 B)``."""
        distance = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance)
        power = np.asarray(power_watts, dtype=float)
        bandwidth = np.asarray(bandwidth_hz, dtype=float)
        if np.any(power < 0):
            raise ConfigurationError("power must be non-negative")
        if np.any(bandwidth <= 0):
            raise ConfigurationError("bandwidth must be positive")
        gain = self.antenna_gain * distance ** (-self.path_loss_exponent)
        return power * gain / (self.noise_psd * bandwidth)

    def expected_rate(
        self, power_watts: ArrayLike, bandwidth_hz: ArrayLike, distance_m: ArrayLike
    ) -> ArrayLike:
        """Expected downlink rate ``C̄`` in bits/s (eq. 1)."""
        bandwidth = np.asarray(bandwidth_hz, dtype=float)
        snr = self.mean_snr(power_watts, bandwidth_hz, distance_m)
        return bandwidth * np.log2(1.0 + snr)

    def faded_rate(
        self,
        power_watts: ArrayLike,
        bandwidth_hz: ArrayLike,
        distance_m: ArrayLike,
        fading_gain: ArrayLike,
    ) -> ArrayLike:
        """Instantaneous rate given channel power gains ``|h|²``."""
        gains = np.asarray(fading_gain, dtype=float)
        if np.any(gains < 0):
            raise ConfigurationError("fading gains must be non-negative")
        bandwidth = np.asarray(bandwidth_hz, dtype=float)
        snr = self.mean_snr(power_watts, bandwidth_hz, distance_m) * gains
        return bandwidth * np.log2(1.0 + snr)

    @staticmethod
    def sample_rayleigh_gains(
        shape: tuple, seed: SeedLike = None
    ) -> np.ndarray:
        """Draw ``|h|²`` gains for Rayleigh fading (Exp(1) distributed)."""
        rng = as_generator(seed)
        return rng.exponential(1.0, size=shape)
