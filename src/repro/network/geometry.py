"""Planar geometry for the simulation area.

The paper places ``K`` users and ``M`` edge servers uniformly at random in
a square area (1 km x 1 km by default, 400 m for the Fig. 6 optimality
study). This module provides point sampling, distance matrices, and
coverage sets ``M_k`` / ``K_m`` induced by a server coverage radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Point:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def as_array(self) -> np.ndarray:
        """The point as a length-2 float array."""
        return np.array([self.x, self.y], dtype=float)


def uniform_coords(
    count: int, side_length: float, seed: SeedLike = None
) -> np.ndarray:
    """Sample ``count`` uniform positions as a raw ``(count, 2)`` array.

    Consumes exactly the RNG stream of :func:`uniform_points` (one
    ``uniform`` draw of shape ``(count, 2)``) but skips the per-point
    ``Point`` objects — the chunked scenario pipeline's building block,
    where K Python objects would dominate memory long before the arrays
    do. ``uniform_points(c, s, seed)[k].as_array()`` equals row ``k`` of
    ``uniform_coords(c, s, seed)`` bit for bit.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if side_length <= 0:
        raise ConfigurationError(
            f"side_length must be positive, got {side_length}"
        )
    rng = as_generator(seed)
    return rng.uniform(0.0, side_length, size=(count, 2))


def uniform_points(
    count: int, side_length: float, seed: SeedLike = None
) -> List[Point]:
    """Sample ``count`` points uniformly in a ``side_length``-sided square."""
    coords = uniform_coords(count, side_length, seed)
    return [Point(float(x), float(y)) for x, y in coords]


def pairwise_distances_coords(
    src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Distance matrix between raw coordinate arrays.

    The arithmetic core of :func:`pairwise_distances` — identical
    elementwise subtract/square/sum/sqrt, so object-based and
    array-based topologies produce bit-identical distances.
    """
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    if src.size == 0 or dst.size == 0:
        return np.zeros((src.shape[0], dst.shape[0]))
    diff = src[:, None, :] - dst[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def pairwise_distances(
    sources: Sequence[Point], targets: Sequence[Point]
) -> np.ndarray:
    """Distance matrix of shape ``(len(sources), len(targets))``."""
    if not sources or not targets:
        return np.zeros((len(sources), len(targets)))
    src = np.array([p.as_array() for p in sources])
    dst = np.array([p.as_array() for p in targets])
    return pairwise_distances_coords(src, dst)


def coverage_sets(
    distances: np.ndarray, radius: float
) -> Tuple[List[List[int]], List[List[int]]]:
    """Coverage relations induced by ``radius``.

    Parameters
    ----------
    distances:
        ``(M, K)`` server-to-user distance matrix.
    radius:
        Server coverage radius in metres.

    Returns
    -------
    (servers_of_user, users_of_server):
        ``servers_of_user[k]`` is the paper's ``M_k`` (servers covering
        user ``k``); ``users_of_server[m]`` is ``K_m``.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    num_servers, num_users = distances.shape
    covered = distances <= radius
    servers_of_user = [
        [m for m in range(num_servers) if covered[m, k]] for k in range(num_users)
    ]
    users_of_server = [
        [k for k in range(num_users) if covered[m, k]] for m in range(num_servers)
    ]
    return servers_of_user, users_of_server


def clamp_to_square(x: float, y: float, side_length: float) -> Tuple[float, float]:
    """Reflect a position back into the square (used by mobility)."""
    def reflect(value: float) -> float:
        period = 2.0 * side_length
        value = value % period
        if value < 0:
            value += period
        return value if value <= side_length else period - value

    return reflect(x), reflect(y)
