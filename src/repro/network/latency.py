"""End-to-end latency (paper eqs. 4-5) and the feasibility indicator I1.

For a user ``k`` requesting model ``i`` from server ``m``:

* if ``m`` covers ``k`` (associated): ``T = D_i / C̄_{m,k} + t_{k,i}``;
* otherwise the model is relayed through the best associated server
  ``m' ∈ M_k``: ``T = min_{m'} (D_i / C_{m,m'} + D_i / C̄_{m',k}) + t_{k,i}``.

``I1[m, k, i] = (T_{m,k,i} <= T̄_{k,i})`` is the only thing the placement
problem needs from the physical layer, so :class:`LatencyModel`
precomputes *per-bit* delivery times per (m, k) pair and broadcasts them
against model sizes.

:meth:`LatencyModel.feasibility` materialises the dense tensor;
:meth:`LatencyModel.feasibility_sparse` produces the same indicator as a
:class:`~repro.core.sparse.SparseFeasibility` CSR artifact without ever
allocating the ``(M, K, I)`` float latency tensor. Both run the identical
elementwise arithmetic per entry, so their nonzero sets are bit-equal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sparse import SparseFeasibility
from repro.errors import TopologyError
from repro.network.topology import NetworkTopology


class LatencyModel:
    """Latency/feasibility computations over a topology.

    Parameters
    ----------
    topology:
        The network snapshot.
    model_sizes_bytes:
        ``D_i`` per model, shape ``(I,)`` matching the users' QoS vectors.
    """

    def __init__(self, topology: NetworkTopology, model_sizes_bytes: np.ndarray) -> None:
        sizes = np.asarray(model_sizes_bytes, dtype=float)
        if sizes.ndim != 1:
            raise TopologyError("model_sizes_bytes must be 1-D")
        if sizes.shape[0] != topology.num_models:
            raise TopologyError(
                f"expected {topology.num_models} model sizes, got {sizes.shape[0]}"
            )
        if np.any(sizes <= 0):
            raise TopologyError("model sizes must be positive")
        self.topology = topology
        self.model_bits = 8.0 * sizes
        # Batched (K, I) QoS matrices straight from the topology: the
        # array-backed batch when there is one, otherwise the exact
        # stacking of the per-user rows (bit-identical values).
        self.deadlines = topology.deadlines_matrix
        self.inference = topology.inference_matrix
        self._backhaul_per_bit = self._backhaul_matrix()
        self._expected_order: Optional[np.ndarray] = None

    def _backhaul_matrix(self) -> np.ndarray:
        """Per-bit transfer time between every ordered server pair."""
        num = self.topology.num_servers
        per_bit = np.zeros((num, num))
        for a in range(num):
            for b in range(num):
                if a != b:
                    per_bit[a, b] = 1.0 / self.topology.backhaul.rate(a, b)
        return per_bit

    # ------------------------------------------------------------------
    def per_bit_delivery(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-bit delivery time from each server to each user, ``(M, K)``.

        Associated pairs download directly; non-associated pairs take the
        cheapest relay through an associated server. Entries are ``inf``
        when no path exists (user covered by nobody).

        Parameters
        ----------
        rates:
            Access rates ``(M, K)`` in bits/s; defaults to the topology's
            expected rates. Pass faded rates for Monte-Carlo evaluation.
        """
        topo = self.topology
        if rates is None:
            rates = topo.expected_rates
        if rates.shape != (topo.num_servers, topo.num_users):
            raise TopologyError(
                f"rates must have shape {(topo.num_servers, topo.num_users)}, "
                f"got {rates.shape}"
            )
        covered = topo.coverage_mask
        with np.errstate(divide="ignore"):
            access = np.where((rates > 0) & covered, 1.0 / rates, np.inf)

        # access is already inf wherever m does not cover k, so it doubles
        # as the masked per-bit matrix the relay minimisation needs.
        per_bit = access.copy()
        # Relay through the best associated server, all users at once:
        # per_bit[m, k] = min_{m'} (backhaul(m, m') + access(m', k)).
        # Non-associated m' read inf and drop out of the min exactly as in
        # the former per-user loop (float min is order-exact, so the
        # vectorised reduction is bit-identical); a user covered by nobody
        # stays all-inf. User chunks bound the (M, M, K') temporary.
        num_servers, num_users = access.shape
        chunk = max(1, 4_000_000 // max(num_servers * num_servers, 1))
        for start in range(0, num_users, chunk):
            stop = min(start + chunk, num_users)
            relay = (
                self._backhaul_per_bit[:, :, None] + access[None, :, start:stop]
            ).min(axis=1)
            uncovered = ~covered[:, start:stop]
            per_bit[:, start:stop][uncovered] = relay[uncovered]
        return per_bit

    def latency(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``T_{m,k,i}`` tensor, shape ``(M, K, I)`` (``inf`` = unreachable)."""
        per_bit = self.per_bit_delivery(rates)
        return (
            self.model_bits[None, None, :] * per_bit[:, :, None]
            + self.inference[None, :, :]
        )

    def feasibility(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``I1[m,k,i]``: can server ``m`` serve (k, i) within deadline?"""
        from repro import obs

        with obs.span("feasibility.dense"):
            return self.latency(rates) <= self.deadlines[None, :, :]

    def expected_server_order(self) -> np.ndarray:
        """Per-user server order under *expected* rates, cached.

        ``(M, K)`` — column ``k`` lists the servers sorted by expected
        per-bit delivery time to user ``k``. Monte-Carlo evaluation
        passes this as ``server_order_hint`` to
        :meth:`feasibility_sparse`: fading perturbs per-bit times but
        rarely upends their ranking, so pre-permuting by the expected
        order leaves a nearly-sorted array for the stable (timsort,
        adaptive) argsort — amortising the per-realization sort across
        all realizations of a topology without changing a bit.
        """
        if self._expected_order is None:
            self._expected_order = np.argsort(
                self.per_bit_delivery(), axis=0, kind="stable"
            )
        return self._expected_order

    def _sorted_order(
        self,
        per_bit: np.ndarray,
        server_order_hint: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(order, sorted_pb)``: per-user server order by per-bit time.

        With a hint, the values are pre-permuted by the hinted order and
        the stable argsort of the (nearly sorted) result is composed
        back — the composition is an exact sorting permutation of the
        actual values, and the prefix-cut membership below depends only
        on values, so any valid order yields the identical CSR (the
        final ``(model, server, user)`` lexsort canonicalises entry
        order). Pinned by the bit-identity test suite.
        """
        if server_order_hint is None:
            order = np.argsort(per_bit, axis=0, kind="stable")
        else:
            if server_order_hint.shape != per_bit.shape:
                raise TopologyError(
                    f"server_order_hint must have shape {per_bit.shape}, "
                    f"got {server_order_hint.shape}"
                )
            hinted = np.take_along_axis(per_bit, server_order_hint, axis=0)
            order = np.take_along_axis(
                server_order_hint,
                np.argsort(hinted, axis=0, kind="stable"),
                axis=0,
            )
        sorted_pb = np.take_along_axis(per_bit, order, axis=0)
        return order, sorted_pb

    def _prefix_cuts(
        self,
        sorted_pb: np.ndarray,
        deadlines: np.ndarray,
        inference: np.ndarray,
    ) -> np.ndarray:
        """Feasible-server counts per (user, model) for one user block.

        For fixed (k, i), T = D_i * per_bit[m, k] + t_{k,i} is monotone
        non-decreasing in per_bit (IEEE multiply/add by a positive
        constant round monotonically), so along each user's servers
        sorted by per_bit the indicator is True on a prefix. A
        vectorised binary search finds every (k, i) prefix cut with
        O(log M) probes, each probe evaluating the *original*
        multiply/add/compare on the original values — bit-identical
        membership at O(K·I·log M) instead of O(M·K·I) work. Each
        column's low/high updates are elementwise-independent, so
        running the search on a user block equals the corresponding
        slice of a whole-population run exactly.
        """
        num_servers = sorted_pb.shape[0]
        num_users, num_models = deadlines.shape
        user_rows = np.arange(num_users)[:, None]
        bits = self.model_bits[None, :]
        low = np.zeros((num_users, num_models), dtype=np.int64)
        high = np.full((num_users, num_models), num_servers, dtype=np.int64)
        while True:
            active = low < high
            if not active.any():
                break
            # Clamp keeps settled entries (cut == M) in bounds; their
            # probe result is discarded by the masks below.
            mid = np.minimum((low + high) >> 1, num_servers - 1)
            probe = bits * sorted_pb[mid, user_rows] + inference <= deadlines
            low = np.where(probe & active, mid + 1, low)
            high = np.where(probe | ~active, high, mid)
        return low  # (K', I): feasible servers per (user, model)

    @staticmethod
    def _block_coo(
        counts: np.ndarray, order: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Expand prefix-cut counts to (model, server, user)-sorted COO."""
        users_pair, models_pair = np.nonzero(counts)
        pair_counts = counts[users_pair, models_pair]
        total = int(pair_counts.sum())
        starts = np.cumsum(pair_counts) - pair_counts
        ranks = np.arange(total, dtype=np.int64) - np.repeat(starts, pair_counts)
        users_flat = np.repeat(users_pair, pair_counts)
        models_flat = np.repeat(models_pair, pair_counts)
        servers_flat = order[ranks, users_flat]
        # from_coo expects (model, server, user)-sorted entries.
        sort_index = np.lexsort((users_flat, servers_flat, models_flat))
        return (
            models_flat[sort_index],
            servers_flat[sort_index],
            users_flat[sort_index],
        )

    def feasibility_sparse(
        self,
        rates: Optional[np.ndarray] = None,
        server_order_hint: Optional[np.ndarray] = None,
    ) -> SparseFeasibility:
        """``I1`` as a CSR artifact, built by binary-searched prefix cuts.

        Runs exactly the elementwise arithmetic of :meth:`feasibility`
        (same multiply/add/compare on the same values, so the nonzero set
        is bit-identical) but only ever holds ``(M, K)``/``(K, I)``
        intermediates, not the ``(M, K, I)`` float latency tensor.

        ``server_order_hint`` (optional, ``(M, K)``) seeds the per-user
        server sort with a previously computed order — see
        :meth:`expected_server_order`; the CSR is identical with or
        without it.
        """
        from repro import obs

        with obs.span("feasibility.sparse"):
            per_bit = self.per_bit_delivery(rates)
            num_servers, num_users = per_bit.shape
            num_models = self.model_bits.shape[0]
            order, sorted_pb = self._sorted_order(per_bit, server_order_hint)
            counts = self._prefix_cuts(
                sorted_pb, self.deadlines, self.inference
            )
            models_flat, servers_flat, users_flat = self._block_coo(
                counts, order
            )
            return SparseFeasibility.from_coo(
                (num_servers, num_users, num_models),
                models=models_flat,
                servers=servers_flat,
                users=users_flat,
            )

    def feasibility_sparse_chunked(
        self,
        chunk_size: int,
        rates: Optional[np.ndarray] = None,
    ) -> SparseFeasibility:
        """``I1`` as a CSR artifact, assembled in user blocks.

        Identical arithmetic to :meth:`feasibility_sparse`, but the
        per-user argsort, the binary-searched prefix cuts and the COO
        expansion all run on ``chunk_size``-user blocks, so the large
        ``(K, I)``-shaped search temporaries and per-block sort scratch
        are bounded by the chunk, not by K. The per-block fragments are
        merged by :meth:`SparseFeasibility.from_user_blocks` into the
        global ``(model, server, user)`` order without a global sort —
        the result compares ``==`` to the unchunked build for any chunk
        size (argsort along axis 0 is column-independent, the binary
        search is elementwise per (k, i), and within a pair users ascend
        block by block).
        """
        if chunk_size < 1:
            raise TopologyError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        from repro import obs

        with obs.span("feasibility.sparse_chunked", chunk_size=chunk_size):
            per_bit = self.per_bit_delivery(rates)
            num_servers, num_users = per_bit.shape
            num_models = self.model_bits.shape[0]
            blocks = []
            for start in range(0, num_users, chunk_size):
                stop = min(start + chunk_size, num_users)
                block_pb = per_bit[:, start:stop]
                order = np.argsort(block_pb, axis=0, kind="stable")
                sorted_pb = np.take_along_axis(block_pb, order, axis=0)
                counts = self._prefix_cuts(
                    sorted_pb,
                    self.deadlines[start:stop],
                    self.inference[start:stop],
                )
                models_flat, servers_flat, users_flat = self._block_coo(
                    counts, order
                )
                blocks.append((models_flat, servers_flat, users_flat + start))
            return SparseFeasibility.from_user_blocks(
                (num_servers, num_users, num_models), blocks
            )
