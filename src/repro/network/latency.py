"""End-to-end latency (paper eqs. 4-5) and the feasibility indicator I1.

For a user ``k`` requesting model ``i`` from server ``m``:

* if ``m`` covers ``k`` (associated): ``T = D_i / C̄_{m,k} + t_{k,i}``;
* otherwise the model is relayed through the best associated server
  ``m' ∈ M_k``: ``T = min_{m'} (D_i / C_{m,m'} + D_i / C̄_{m',k}) + t_{k,i}``.

``I1[m, k, i] = (T_{m,k,i} <= T̄_{k,i})`` is the only thing the placement
problem needs from the physical layer, so :class:`LatencyModel`
precomputes *per-bit* delivery times per (m, k) pair and broadcasts them
against model sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TopologyError
from repro.network.topology import NetworkTopology


class LatencyModel:
    """Latency/feasibility computations over a topology.

    Parameters
    ----------
    topology:
        The network snapshot.
    model_sizes_bytes:
        ``D_i`` per model, shape ``(I,)`` matching the users' QoS vectors.
    """

    def __init__(self, topology: NetworkTopology, model_sizes_bytes: np.ndarray) -> None:
        sizes = np.asarray(model_sizes_bytes, dtype=float)
        if sizes.ndim != 1:
            raise TopologyError("model_sizes_bytes must be 1-D")
        if sizes.shape[0] != topology.num_models:
            raise TopologyError(
                f"expected {topology.num_models} model sizes, got {sizes.shape[0]}"
            )
        if np.any(sizes <= 0):
            raise TopologyError("model sizes must be positive")
        self.topology = topology
        self.model_bits = 8.0 * sizes
        self.deadlines = np.stack([u.deadlines_s for u in topology.users])
        self.inference = np.stack([u.inference_latency_s for u in topology.users])
        self._backhaul_per_bit = self._backhaul_matrix()

    def _backhaul_matrix(self) -> np.ndarray:
        """Per-bit transfer time between every ordered server pair."""
        num = self.topology.num_servers
        per_bit = np.zeros((num, num))
        for a in range(num):
            for b in range(num):
                if a != b:
                    per_bit[a, b] = 1.0 / self.topology.backhaul.rate(a, b)
        return per_bit

    # ------------------------------------------------------------------
    def per_bit_delivery(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-bit delivery time from each server to each user, ``(M, K)``.

        Associated pairs download directly; non-associated pairs take the
        cheapest relay through an associated server. Entries are ``inf``
        when no path exists (user covered by nobody).

        Parameters
        ----------
        rates:
            Access rates ``(M, K)`` in bits/s; defaults to the topology's
            expected rates. Pass faded rates for Monte-Carlo evaluation.
        """
        topo = self.topology
        if rates is None:
            rates = topo.expected_rates
        if rates.shape != (topo.num_servers, topo.num_users):
            raise TopologyError(
                f"rates must have shape {(topo.num_servers, topo.num_users)}, "
                f"got {rates.shape}"
            )
        covered = topo.coverage_mask
        with np.errstate(divide="ignore"):
            access = np.where((rates > 0) & covered, 1.0 / rates, np.inf)

        per_bit = np.full_like(access, np.inf)
        per_bit[covered] = access[covered]
        # Relay through the best associated server: for non-associated m,
        # per_bit[m, k] = min_{m' in M_k} (backhaul(m, m') + access(m', k)).
        for k in range(topo.num_users):
            assoc = topo.servers_of_user(k)
            if not assoc:
                continue
            relay = self._backhaul_per_bit[:, assoc] + access[assoc, k][None, :]
            best = relay.min(axis=1)
            not_assoc = ~covered[:, k]
            per_bit[not_assoc, k] = best[not_assoc]
        return per_bit

    def latency(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``T_{m,k,i}`` tensor, shape ``(M, K, I)`` (``inf`` = unreachable)."""
        per_bit = self.per_bit_delivery(rates)
        return (
            self.model_bits[None, None, :] * per_bit[:, :, None]
            + self.inference[None, :, :]
        )

    def feasibility(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``I1[m,k,i]``: can server ``m`` serve (k, i) within deadline?"""
        return self.latency(rates) <= self.deadlines[None, :, :]
