"""End-to-end latency (paper eqs. 4-5) and the feasibility indicator I1.

For a user ``k`` requesting model ``i`` from server ``m``:

* if ``m`` covers ``k`` (associated): ``T = D_i / C̄_{m,k} + t_{k,i}``;
* otherwise the model is relayed through the best associated server
  ``m' ∈ M_k``: ``T = min_{m'} (D_i / C_{m,m'} + D_i / C̄_{m',k}) + t_{k,i}``.

``I1[m, k, i] = (T_{m,k,i} <= T̄_{k,i})`` is the only thing the placement
problem needs from the physical layer, so :class:`LatencyModel`
precomputes *per-bit* delivery times per (m, k) pair and broadcasts them
against model sizes.

:meth:`LatencyModel.feasibility` materialises the dense tensor;
:meth:`LatencyModel.feasibility_sparse` produces the same indicator as a
:class:`~repro.core.sparse.SparseFeasibility` CSR artifact without ever
allocating the ``(M, K, I)`` float latency tensor. Both run the identical
elementwise arithmetic per entry, so their nonzero sets are bit-equal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sparse import SparseFeasibility
from repro.errors import TopologyError
from repro.network.topology import NetworkTopology


class LatencyModel:
    """Latency/feasibility computations over a topology.

    Parameters
    ----------
    topology:
        The network snapshot.
    model_sizes_bytes:
        ``D_i`` per model, shape ``(I,)`` matching the users' QoS vectors.
    """

    def __init__(self, topology: NetworkTopology, model_sizes_bytes: np.ndarray) -> None:
        sizes = np.asarray(model_sizes_bytes, dtype=float)
        if sizes.ndim != 1:
            raise TopologyError("model_sizes_bytes must be 1-D")
        if sizes.shape[0] != topology.num_models:
            raise TopologyError(
                f"expected {topology.num_models} model sizes, got {sizes.shape[0]}"
            )
        if np.any(sizes <= 0):
            raise TopologyError("model sizes must be positive")
        self.topology = topology
        self.model_bits = 8.0 * sizes
        self.deadlines = np.stack([u.deadlines_s for u in topology.users])
        self.inference = np.stack([u.inference_latency_s for u in topology.users])
        self._backhaul_per_bit = self._backhaul_matrix()

    def _backhaul_matrix(self) -> np.ndarray:
        """Per-bit transfer time between every ordered server pair."""
        num = self.topology.num_servers
        per_bit = np.zeros((num, num))
        for a in range(num):
            for b in range(num):
                if a != b:
                    per_bit[a, b] = 1.0 / self.topology.backhaul.rate(a, b)
        return per_bit

    # ------------------------------------------------------------------
    def per_bit_delivery(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-bit delivery time from each server to each user, ``(M, K)``.

        Associated pairs download directly; non-associated pairs take the
        cheapest relay through an associated server. Entries are ``inf``
        when no path exists (user covered by nobody).

        Parameters
        ----------
        rates:
            Access rates ``(M, K)`` in bits/s; defaults to the topology's
            expected rates. Pass faded rates for Monte-Carlo evaluation.
        """
        topo = self.topology
        if rates is None:
            rates = topo.expected_rates
        if rates.shape != (topo.num_servers, topo.num_users):
            raise TopologyError(
                f"rates must have shape {(topo.num_servers, topo.num_users)}, "
                f"got {rates.shape}"
            )
        covered = topo.coverage_mask
        with np.errstate(divide="ignore"):
            access = np.where((rates > 0) & covered, 1.0 / rates, np.inf)

        # access is already inf wherever m does not cover k, so it doubles
        # as the masked per-bit matrix the relay minimisation needs.
        per_bit = access.copy()
        # Relay through the best associated server, all users at once:
        # per_bit[m, k] = min_{m'} (backhaul(m, m') + access(m', k)).
        # Non-associated m' read inf and drop out of the min exactly as in
        # the former per-user loop (float min is order-exact, so the
        # vectorised reduction is bit-identical); a user covered by nobody
        # stays all-inf. User chunks bound the (M, M, K') temporary.
        num_servers, num_users = access.shape
        chunk = max(1, 4_000_000 // max(num_servers * num_servers, 1))
        for start in range(0, num_users, chunk):
            stop = min(start + chunk, num_users)
            relay = (
                self._backhaul_per_bit[:, :, None] + access[None, :, start:stop]
            ).min(axis=1)
            uncovered = ~covered[:, start:stop]
            per_bit[:, start:stop][uncovered] = relay[uncovered]
        return per_bit

    def latency(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``T_{m,k,i}`` tensor, shape ``(M, K, I)`` (``inf`` = unreachable)."""
        per_bit = self.per_bit_delivery(rates)
        return (
            self.model_bits[None, None, :] * per_bit[:, :, None]
            + self.inference[None, :, :]
        )

    def feasibility(self, rates: Optional[np.ndarray] = None) -> np.ndarray:
        """``I1[m,k,i]``: can server ``m`` serve (k, i) within deadline?"""
        return self.latency(rates) <= self.deadlines[None, :, :]

    def feasibility_sparse(
        self, rates: Optional[np.ndarray] = None
    ) -> SparseFeasibility:
        """``I1`` as a CSR artifact, built one model column at a time.

        Runs exactly the elementwise arithmetic of :meth:`feasibility`
        (same multiply/add/compare on the same values, so the nonzero set
        is bit-identical) but only ever holds one ``(M, K)`` slice, not
        the ``(M, K, I)`` float latency tensor and its temporaries.
        """
        per_bit = self.per_bit_delivery(rates)
        num_servers, num_users = per_bit.shape
        num_models = self.model_bits.shape[0]

        # For fixed (k, i), T = D_i * per_bit[m, k] + t_{k,i} is monotone
        # non-decreasing in per_bit (IEEE multiply/add by a positive
        # constant round monotonically), so along each user's servers
        # sorted by per_bit the indicator is True on a prefix. A
        # vectorised binary search finds every (k, i) prefix cut with
        # O(log M) probes, each probe evaluating the *original*
        # multiply/add/compare on the original values — bit-identical
        # membership at O(K·I·log M) instead of O(M·K·I) work.
        order = np.argsort(per_bit, axis=0, kind="stable")  # (M, K)
        sorted_pb = np.take_along_axis(per_bit, order, axis=0)
        user_rows = np.arange(num_users)[:, None]
        bits = self.model_bits[None, :]
        low = np.zeros((num_users, num_models), dtype=np.int64)
        high = np.full((num_users, num_models), num_servers, dtype=np.int64)
        while True:
            active = low < high
            if not active.any():
                break
            # Clamp keeps settled entries (cut == M) in bounds; their
            # probe result is discarded by the masks below.
            mid = np.minimum((low + high) >> 1, num_servers - 1)
            probe = (
                bits * sorted_pb[mid, user_rows] + self.inference
                <= self.deadlines
            )
            low = np.where(probe & active, mid + 1, low)
            high = np.where(probe | ~active, high, mid)
        counts = low  # (K, I): feasible servers per (user, model)

        users_pair, models_pair = np.nonzero(counts)
        pair_counts = counts[users_pair, models_pair]
        total = int(pair_counts.sum())
        starts = np.cumsum(pair_counts) - pair_counts
        ranks = np.arange(total, dtype=np.int64) - np.repeat(starts, pair_counts)
        users_flat = np.repeat(users_pair, pair_counts)
        models_flat = np.repeat(models_pair, pair_counts)
        servers_flat = order[ranks, users_flat]
        # from_coo expects (model, server, user)-sorted entries.
        sort_index = np.lexsort((users_flat, servers_flat, models_flat))
        return SparseFeasibility.from_coo(
            (num_servers, num_users, num_models),
            models=models_flat[sort_index],
            servers=servers_flat[sort_index],
            users=users_flat[sort_index],
        )
