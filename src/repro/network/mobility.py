"""User mobility (paper §VII-E).

Three mobility classes — pedestrians, bikes, vehicles — each drawing an
initial speed and orientation, then re-drawing acceleration and angular
velocity at the start of every time slot (5 s slots in the paper). Users
reflect off the simulation-area boundary so the population density stays
uniform over long horizons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.geometry import Point, clamp_to_square
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class MobilityClass:
    """Parameter ranges of one mobility pattern.

    All ranges are inclusive ``(low, high)`` pairs; speeds in m/s,
    accelerations in m/s², angular velocity in rad/s.
    """

    name: str
    initial_speed: Tuple[float, float]
    acceleration: Tuple[float, float]
    angular_velocity: Tuple[float, float]
    max_speed: float

    def __post_init__(self) -> None:
        for field_name in ("initial_speed", "acceleration", "angular_velocity"):
            low, high = getattr(self, field_name)
            if low > high:
                raise ConfigurationError(
                    f"{field_name} range must be ordered, got ({low}, {high})"
                )
        if self.initial_speed[0] < 0:
            raise ConfigurationError("speeds must be non-negative")
        if self.max_speed <= 0:
            raise ConfigurationError("max_speed must be positive")


#: Paper §VII-E parameters for the three user classes.
PEDESTRIAN = MobilityClass(
    "pedestrian",
    initial_speed=(0.5, 1.8),
    acceleration=(-0.3, 0.3),
    angular_velocity=(-np.pi / 4, np.pi / 4),
    max_speed=2.5,
)
BIKE = MobilityClass(
    "bike",
    initial_speed=(2.0, 8.0),
    acceleration=(-1.0, 1.0),
    angular_velocity=(-np.pi / 3, np.pi / 3),
    max_speed=10.0,
)
VEHICLE = MobilityClass(
    "vehicle",
    initial_speed=(5.5, 20.0),
    acceleration=(-3.0, 3.0),
    angular_velocity=(-np.pi / 2, np.pi / 2),
    max_speed=25.0,
)

DEFAULT_CLASSES = (PEDESTRIAN, BIKE, VEHICLE)


@dataclass
class MobilityState:
    """Kinematic state of one user."""

    x: float
    y: float
    speed: float
    orientation: float
    mobility_class: MobilityClass

    @property
    def position(self) -> Point:
        """Current position as a :class:`Point`."""
        return Point(self.x, self.y)


class MobilityModel:
    """Advance a population of users through time slots.

    Parameters
    ----------
    side_length:
        Side of the square simulation area (metres).
    slot_duration_s:
        Length of one time slot (paper: 5 s).
    classes:
        Mobility classes users are assigned to (round-robin by default).
    """

    def __init__(
        self,
        side_length: float,
        slot_duration_s: float = 5.0,
        classes: Sequence[MobilityClass] = DEFAULT_CLASSES,
    ) -> None:
        if side_length <= 0:
            raise ConfigurationError("side_length must be positive")
        if slot_duration_s <= 0:
            raise ConfigurationError("slot_duration_s must be positive")
        if not classes:
            raise ConfigurationError("at least one mobility class is required")
        self.side_length = side_length
        self.slot_duration_s = slot_duration_s
        self.classes = tuple(classes)

    def initial_states(
        self, positions: Sequence[Point], seed: SeedLike = None
    ) -> List[MobilityState]:
        """Assign classes round-robin and draw initial speeds/orientations."""
        rng = as_generator(seed)
        states: List[MobilityState] = []
        for index, point in enumerate(positions):
            cls = self.classes[index % len(self.classes)]
            speed = float(rng.uniform(*cls.initial_speed))
            orientation = float(rng.uniform(0.0, np.pi))
            states.append(
                MobilityState(point.x, point.y, speed, orientation, cls)
            )
        return states

    def step(self, states: Sequence[MobilityState], seed: SeedLike = None) -> List[MobilityState]:
        """Advance every user by one slot; returns new states.

        At the slot boundary each user draws an acceleration and an angular
        velocity from its class ranges, then moves for the whole slot with
        the updated speed and heading (speed clamped to ``[0, max_speed]``;
        positions reflect off the area boundary).
        """
        rng = as_generator(seed)
        dt = self.slot_duration_s
        advanced: List[MobilityState] = []
        for state in states:
            cls = state.mobility_class
            acceleration = float(rng.uniform(*cls.acceleration))
            angular = float(rng.uniform(*cls.angular_velocity))
            speed = float(np.clip(state.speed + acceleration * dt, 0.0, cls.max_speed))
            orientation = (state.orientation + angular * dt) % (2.0 * np.pi)
            x = state.x + speed * np.cos(orientation) * dt
            y = state.y + speed * np.sin(orientation) * dt
            x, y = clamp_to_square(x, y, self.side_length)
            advanced.append(MobilityState(x, y, speed, orientation, cls))
        return advanced

    def trajectory(
        self,
        positions: Sequence[Point],
        num_slots: int,
        seed: SeedLike = None,
    ) -> List[List[Point]]:
        """Positions over ``num_slots`` slots (index 0 = initial positions)."""
        if num_slots < 0:
            raise ConfigurationError("num_slots must be non-negative")
        rng = as_generator(seed)
        states = self.initial_states(positions, rng)
        frames = [[state.position for state in states]]
        for _ in range(num_slots):
            states = self.step(states, rng)
            frames.append([state.position for state in states])
        return frames
