"""Edge servers (base stations) and their radio-resource allocation.

Paper §VII-A: server ``m`` splits its total bandwidth ``B`` and transmit
power ``P`` among its *expected active* associated users, i.e. each
associated user ``k`` receives

    B̄_{m,k} = B / (p_A |K_m|),   P̄_{m,k} = P / (p_A |K_m|),

where ``p_A`` is the probability a user is active and ``K_m`` the set of
users inside the server's coverage radius.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.geometry import Point
from repro.utils.units import GB, MHZ, dbm_to_watts


@dataclass(frozen=True)
class EdgeServer:
    """One wireless edge server.

    Attributes
    ----------
    server_id:
        Dense index ``m`` of the server.
    position:
        Location in the simulation area (metres).
    storage_bytes:
        Cache capacity ``Q_m``.
    total_bandwidth_hz:
        Radio bandwidth ``B`` shared by associated users.
    total_power_watts:
        Transmit power ``P`` shared by associated users.
    coverage_radius_m:
        Users within this distance are associated (``K_m``).
    """

    server_id: int
    position: Point
    storage_bytes: int = 1 * GB
    total_bandwidth_hz: float = 400 * MHZ
    total_power_watts: float = dbm_to_watts(43.0)
    coverage_radius_m: float = 275.0

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ConfigurationError("server_id must be non-negative")
        if self.storage_bytes < 0:
            raise ConfigurationError("storage_bytes must be non-negative")
        if self.total_bandwidth_hz <= 0:
            raise ConfigurationError("total_bandwidth_hz must be positive")
        if self.total_power_watts <= 0:
            raise ConfigurationError("total_power_watts must be positive")
        if self.coverage_radius_m <= 0:
            raise ConfigurationError("coverage_radius_m must be positive")

    def per_user_share(
        self, num_associated_users: int, active_probability: float
    ) -> tuple:
        """Expected per-user ``(bandwidth_hz, power_watts)`` allocation.

        With no associated users the full budget is nominally available;
        callers never use the value in that case but a positive number
        keeps downstream math well-defined.
        """
        if num_associated_users < 0:
            raise ConfigurationError("num_associated_users must be non-negative")
        if not 0 < active_probability <= 1:
            raise ConfigurationError("active_probability must be in (0, 1]")
        expected_active = max(active_probability * num_associated_users, 1e-12)
        if num_associated_users == 0:
            return self.total_bandwidth_hz, self.total_power_watts
        return (
            self.total_bandwidth_hz / expected_active,
            self.total_power_watts / expected_active,
        )
