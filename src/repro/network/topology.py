"""Network topology: servers + users + channel + backhaul, indexed.

:class:`NetworkTopology` glues the geometry, allocation and channel pieces
together and exposes the matrices the latency model and solvers consume:

* server-to-user distances ``(M, K)``;
* association (coverage) sets ``M_k`` and ``K_m``;
* expected per-pair rates ``C̄_{m,k}`` for associated pairs (eq. 1), with
  bandwidth/power split across each server's expected active users.

The user population may arrive as a sequence of :class:`User` objects
(the classic path) or as an array-backed
:class:`~repro.network.users.UserBatch` (the chunked/streaming pipeline).
Either way the derived matrices are computed from the same coordinate and
QoS arrays with identical arithmetic, so the two representations yield
bit-identical distances, allocations and rates; ``topology.users``
materialises :class:`User` views lazily when a batch-backed topology
meets a per-user consumer.

Topologies are immutable; mobility produces new instances via
:meth:`NetworkTopology.with_user_positions`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TopologyError
from repro.network.backhaul import Backhaul
from repro.network.channel import ChannelModel
from repro.network.geometry import Point, pairwise_distances_coords
from repro.network.servers import EdgeServer
from repro.network.users import User, UserBatch


class NetworkTopology:
    """A snapshot of the edge network.

    Parameters
    ----------
    servers:
        The ``M`` edge servers; ids must equal their list position.
    users:
        The ``K`` users — a sequence of :class:`User` (ids must equal
        their list position, and all QoS vectors must cover the same
        number of models) or a :class:`UserBatch` (already validated,
        ids implicitly dense).
    channel:
        Channel model used for expected/faded rates.
    backhaul:
        Edge-to-edge links.
    """

    def __init__(
        self,
        servers: Sequence[EdgeServer],
        users: Union[Sequence[User], UserBatch],
        channel: Optional[ChannelModel] = None,
        backhaul: Optional[Backhaul] = None,
    ) -> None:
        if not servers:
            raise TopologyError("topology requires at least one server")
        if len(users) == 0:
            raise TopologyError("topology requires at least one user")
        for index, server in enumerate(servers):
            if server.server_id != index:
                raise TopologyError(
                    f"server at position {index} has id {server.server_id}"
                )
        if isinstance(users, UserBatch):
            self._batch: Optional[UserBatch] = users
            self._users: Optional[Tuple[User, ...]] = None
            self._num_users = len(users)
            self._num_models = users.num_models
            user_coords = users.positions
        else:
            num_models = users[0].num_models
            for index, user in enumerate(users):
                if user.user_id != index:
                    raise TopologyError(
                        f"user at position {index} has id {user.user_id}"
                    )
                if user.num_models != num_models:
                    raise TopologyError(
                        "all users must cover the same model count"
                    )
            self._batch = None
            self._users = tuple(users)
            self._num_users = len(self._users)
            self._num_models = num_models
            user_coords = np.array(
                [u.position.as_array() for u in self._users]
            )

        self.servers: Tuple[EdgeServer, ...] = tuple(servers)
        self.channel = channel or ChannelModel()
        self.backhaul = backhaul or Backhaul()

        server_coords = np.array(
            [s.position.as_array() for s in self.servers]
        )
        self._distances = pairwise_distances_coords(server_coords, user_coords)
        # Coverage uses each server's own radius (possibly heterogeneous).
        radii = np.array([s.coverage_radius_m for s in self.servers])
        covered = self._distances <= radii[:, None]
        self._covered = covered
        # M_k / K_m as Python lists are only needed by list-oriented
        # consumers (request sim, reports); built lazily from the mask.
        self._servers_of_user: Optional[List[List[int]]] = None
        self._users_of_server: Optional[List[List[int]]] = None
        self._deadlines_matrix: Optional[np.ndarray] = None
        self._inference_matrix: Optional[np.ndarray] = None
        self._allocations = self._compute_allocations()
        self._expected_rates = self._compute_expected_rates()

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def users(self) -> Tuple[User, ...]:
        """The ``K`` users as frozen :class:`User` objects.

        Batch-backed topologies materialise (and cache) the views on
        first access — per-user consumers keep working, array consumers
        never pay for K Python objects.
        """
        if self._users is None:
            assert self._batch is not None
            self._users = tuple(self._batch.to_users())
        return self._users

    @property
    def user_batch(self) -> Optional[UserBatch]:
        """The backing :class:`UserBatch`, if this topology has one."""
        return self._batch

    @property
    def num_servers(self) -> int:
        """``M``."""
        return len(self.servers)

    @property
    def num_users(self) -> int:
        """``K``."""
        return self._num_users

    @property
    def num_models(self) -> int:
        """``I`` (inferred from the users' QoS vectors)."""
        return self._num_models

    @property
    def distances(self) -> np.ndarray:
        """``(M, K)`` server-to-user distances in metres."""
        return self._distances

    @property
    def coverage_mask(self) -> np.ndarray:
        """``(M, K)`` boolean association mask."""
        return self._covered

    # ------------------------------------------------------------------
    # Batched QoS accessors
    # ------------------------------------------------------------------
    @property
    def deadlines_matrix(self) -> np.ndarray:
        """``(K, I)`` deadlines ``T̄_{k,i}``.

        Batch-backed topologies return the batch array itself; object
        populations stack their rows (the rows are often views of one
        batched draw, so the values are bit-identical either way).
        """
        if self._deadlines_matrix is None:
            if self._batch is not None:
                self._deadlines_matrix = self._batch.deadlines_s
            else:
                self._deadlines_matrix = np.stack(
                    [u.deadlines_s for u in self._users]
                )
        return self._deadlines_matrix

    @property
    def inference_matrix(self) -> np.ndarray:
        """``(K, I)`` on-device inference latencies ``t_{k,i}``."""
        if self._inference_matrix is None:
            if self._batch is not None:
                self._inference_matrix = self._batch.inference_latency_s
            else:
                self._inference_matrix = np.stack(
                    [u.inference_latency_s for u in self._users]
                )
        return self._inference_matrix

    @property
    def active_probabilities(self) -> np.ndarray:
        """``(K,)`` per-user activity probabilities ``p_A``."""
        if self._batch is not None:
            return np.full(
                self._num_users, self._batch.active_probability, dtype=float
            )
        return np.array([u.active_probability for u in self._users])

    def servers_of_user(self, user_id: int) -> List[int]:
        """The paper's ``M_k``: servers covering user ``user_id``."""
        self._check_user(user_id)
        if self._servers_of_user is None:
            self._servers_of_user = [
                np.flatnonzero(self._covered[:, k]).tolist()
                for k in range(self.num_users)
            ]
        return list(self._servers_of_user[user_id])

    def users_of_server(self, server_id: int) -> List[int]:
        """The paper's ``K_m``: users covered by server ``server_id``."""
        self._check_server(server_id)
        if self._users_of_server is None:
            self._users_of_server = [
                np.flatnonzero(self._covered[m]).tolist()
                for m in range(self.num_servers)
            ]
        return list(self._users_of_server[server_id])

    # ------------------------------------------------------------------
    # Radio resources
    # ------------------------------------------------------------------
    def _compute_allocations(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(m, k) expected bandwidth and power shares.

        The vectorised form of :meth:`EdgeServer.per_user_share` applied
        to every associated pair — identical elementwise arithmetic
        (multiply, ``max`` floor, divide), so the shares match the former
        per-pair loop bit for bit. Servers with no associated users keep
        all-zero rows, exactly as the loop left them.
        """
        counts = self._covered.sum(axis=1)  # |K_m| per server
        active = self.active_probabilities
        expected_active = np.maximum(
            active[None, :] * counts[:, None].astype(float), 1e-12
        )
        total_b = np.array([s.total_bandwidth_hz for s in self.servers])
        total_p = np.array([s.total_power_watts for s in self.servers])
        bandwidth = np.where(
            self._covered, total_b[:, None] / expected_active, 0.0
        )
        power = np.where(self._covered, total_p[:, None] / expected_active, 0.0)
        return bandwidth, power

    @property
    def bandwidth_allocation(self) -> np.ndarray:
        """``(M, K)`` expected bandwidth shares ``B̄_{m,k}`` (0 if not associated)."""
        return self._allocations[0]

    @property
    def power_allocation(self) -> np.ndarray:
        """``(M, K)`` expected power shares ``P̄_{m,k}`` (0 if not associated)."""
        return self._allocations[1]

    def _compute_expected_rates(self) -> np.ndarray:
        bandwidth, power = self._allocations
        rates = np.zeros_like(self._distances)
        mask = self._covered & (bandwidth > 0)
        if mask.any():
            rates[mask] = self.channel.expected_rate(
                power[mask], bandwidth[mask], self._distances[mask]
            )
        return rates

    @property
    def expected_rates(self) -> np.ndarray:
        """``(M, K)`` expected rates ``C̄_{m,k}`` in bits/s (0 if not associated)."""
        return self._expected_rates

    def faded_rates(self, fading_gains: np.ndarray) -> np.ndarray:
        """Instantaneous rates under channel power gains ``|h|²``.

        ``fading_gains`` must be ``(M, K)``; entries for non-associated
        pairs are ignored.
        """
        if fading_gains.shape != self._distances.shape:
            raise TopologyError(
                f"fading gains must have shape {self._distances.shape}, "
                f"got {fading_gains.shape}"
            )
        bandwidth, power = self._allocations
        rates = np.zeros_like(self._distances)
        mask = self._covered & (bandwidth > 0)
        if mask.any():
            rates[mask] = self.channel.faded_rate(
                power[mask],
                bandwidth[mask],
                self._distances[mask],
                fading_gains[mask],
            )
        return rates

    # ------------------------------------------------------------------
    # Derived topologies
    # ------------------------------------------------------------------
    def with_user_positions(self, positions: Sequence[Point]) -> "NetworkTopology":
        """A new topology with users moved to ``positions``.

        Association sets, allocations and expected rates are recomputed —
        exactly what the mobility study needs between time slots.
        """
        if len(positions) != self.num_users:
            raise TopologyError(
                f"expected {self.num_users} positions, got {len(positions)}"
            )
        moved = [
            user.moved_to(position) for user, position in zip(self.users, positions)
        ]
        return NetworkTopology(self.servers, moved, self.channel, self.backhaul)

    # ------------------------------------------------------------------
    def _check_user(self, user_id: int) -> None:
        if not 0 <= user_id < self.num_users:
            raise TopologyError(f"unknown user id {user_id}")

    def _check_server(self, server_id: int) -> None:
        if not 0 <= server_id < self.num_servers:
            raise TopologyError(f"unknown server id {server_id}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"NetworkTopology(M={self.num_servers}, K={self.num_users}, "
            f"I={self.num_models})"
        )
