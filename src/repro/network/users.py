"""End users: positions, activity, QoS deadlines and inference latency.

Each user ``k`` carries a per-model QoS deadline ``T̄_{k,i}`` (the paper
draws them uniformly from [0.5, 1] s) and a per-model on-device inference
latency ``t_{k,i}``. The deadline covers downloading *plus* inference
(eqs. 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.network.geometry import Point


@dataclass(frozen=True)
class User:
    """One end user.

    Attributes
    ----------
    user_id:
        Dense index ``k`` of the user.
    position:
        Location in the simulation area (metres).
    deadlines_s:
        ``T̄_{k,i}`` per model: E2E latency budget, shape ``(I,)``.
    inference_latency_s:
        ``t_{k,i}`` per model: on-device inference time, shape ``(I,)``.
    active_probability:
        ``p_A``: probability the user is active in a slot.
    """

    user_id: int
    position: Point
    deadlines_s: np.ndarray
    inference_latency_s: np.ndarray
    active_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ConfigurationError("user_id must be non-negative")
        deadlines = np.asarray(self.deadlines_s, dtype=float)
        inference = np.asarray(self.inference_latency_s, dtype=float)
        if deadlines.ndim != 1 or inference.ndim != 1:
            raise ConfigurationError("deadlines and inference latency must be 1-D")
        if deadlines.shape != inference.shape:
            raise ConfigurationError(
                "deadlines and inference latency must have equal length"
            )
        if np.any(deadlines <= 0):
            raise ConfigurationError("deadlines must be positive")
        if np.any(inference < 0):
            raise ConfigurationError("inference latency must be non-negative")
        if not 0 < self.active_probability <= 1:
            raise ConfigurationError("active_probability must be in (0, 1]")
        object.__setattr__(self, "deadlines_s", deadlines)
        object.__setattr__(self, "inference_latency_s", inference)

    @property
    def num_models(self) -> int:
        """Number of models the QoS vectors cover."""
        return int(self.deadlines_s.shape[0])

    def download_budget_s(self) -> np.ndarray:
        """Remaining time for pure downloading: ``T̄_{k,i} - t_{k,i}``.

        May contain non-positive entries for (user, model) pairs whose
        inference alone already exceeds the deadline — those pairs can
        never be cache hits.
        """
        return self.deadlines_s - self.inference_latency_s

    def moved_to(self, position: Point) -> "User":
        """A copy of this user at a new position (mobility support)."""
        return User(
            user_id=self.user_id,
            position=position,
            deadlines_s=self.deadlines_s,
            inference_latency_s=self.inference_latency_s,
            active_probability=self.active_probability,
        )


def _validate_batch_arrays(
    deadlines: np.ndarray,
    inference: np.ndarray,
    active_probability: float,
) -> None:
    """The invariants ``User.__post_init__`` enforces, batch-vectorised."""
    if deadlines.ndim != 2 or inference.ndim != 2:
        raise ConfigurationError(
            "batched deadlines and inference latency must be 2-D"
        )
    if deadlines.shape != inference.shape:
        raise ConfigurationError(
            "deadlines and inference latency must have equal shape"
        )
    if np.any(deadlines <= 0):
        raise ConfigurationError("deadlines must be positive")
    if np.any(inference < 0):
        raise ConfigurationError("inference latency must be non-negative")
    if not 0 < active_probability <= 1:
        raise ConfigurationError("active_probability must be in (0, 1]")


class UserBatch:
    """An array-backed user population: no per-user Python objects.

    The chunked/streaming scenario pipeline's counterpart of a
    ``list[User]``: positions are one ``(K, 2)`` float array, the QoS
    matrices are the batched ``(K, I)`` draws themselves, and
    ``active_probability`` is the shared scalar the config prescribes.
    Every invariant ``User.__post_init__`` enforces is validated once,
    vectorised over the whole batch.

    :class:`~repro.network.topology.NetworkTopology` consumes a batch
    directly (distances/allocations/rates from the arrays, bit-identical
    to the ``Point``/``User`` path); :meth:`user` / :meth:`to_users`
    materialise frozen :class:`User` views lazily for the per-user
    consumers (mobility, request simulation) that still want objects.
    """

    def __init__(
        self,
        positions: np.ndarray,
        deadlines_s: np.ndarray,
        inference_latency_s: np.ndarray,
        active_probability: float = 0.5,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        deadlines = np.asarray(deadlines_s, dtype=float)
        inference = np.asarray(inference_latency_s, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be a (K, 2) array")
        _validate_batch_arrays(deadlines, inference, active_probability)
        if positions.shape[0] != deadlines.shape[0]:
            raise ConfigurationError(
                "positions must list one entry per batched QoS row"
            )
        self.positions = positions
        self.deadlines_s = deadlines
        self.inference_latency_s = inference
        self.active_probability = float(active_probability)

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def num_users(self) -> int:
        """``K``."""
        return len(self)

    @property
    def num_models(self) -> int:
        """Number of models the QoS matrices cover."""
        return int(self.deadlines_s.shape[1])

    def user(self, index: int) -> User:
        """Materialise one frozen :class:`User` view (row views, no copy)."""
        if not 0 <= index < len(self):
            raise ConfigurationError(f"user index {index} out of range")
        user = object.__new__(User)
        object.__setattr__(user, "user_id", index)
        object.__setattr__(
            user,
            "position",
            Point(float(self.positions[index, 0]), float(self.positions[index, 1])),
        )
        object.__setattr__(user, "deadlines_s", self.deadlines_s[index])
        object.__setattr__(
            user, "inference_latency_s", self.inference_latency_s[index]
        )
        object.__setattr__(
            user, "active_probability", self.active_probability
        )
        return user

    def to_users(self) -> List[User]:
        """Materialise the whole population as :class:`User` objects."""
        return [self.user(index) for index in range(len(self))]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"UserBatch(K={len(self)}, I={self.num_models})"


def users_from_batch(
    positions,
    deadlines_s: np.ndarray,
    inference_latency_s: np.ndarray,
    active_probability: float = 0.5,
) -> "list[User]":
    """Build a user population from batched ``(K, I)`` QoS matrices.

    The ``rng_scheme="v2"`` counterpart of the per-user constructor
    loop: every invariant ``User.__post_init__`` enforces is checked
    here once, vectorised over the whole batch, and the frozen
    instances are then assembled directly (each user's QoS vectors are
    row views of the batch matrices). User ids are dense from 0, like
    the construction loop in :func:`~repro.sim.scenario.build_scenario`.
    """
    deadlines = np.asarray(deadlines_s, dtype=float)
    inference = np.asarray(inference_latency_s, dtype=float)
    _validate_batch_arrays(deadlines, inference, active_probability)
    if len(positions) != deadlines.shape[0]:
        raise ConfigurationError(
            "positions must list one entry per batched QoS row"
        )
    users = []
    for index, position in enumerate(positions):
        user = object.__new__(User)
        object.__setattr__(user, "user_id", index)
        object.__setattr__(user, "position", position)
        object.__setattr__(user, "deadlines_s", deadlines[index])
        object.__setattr__(user, "inference_latency_s", inference[index])
        object.__setattr__(user, "active_probability", active_probability)
        users.append(user)
    return users
