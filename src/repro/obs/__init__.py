"""``repro.obs`` — the unified observability layer.

One subsystem sees every phase of the stack: solver phases (scenario
build, feasibility, greedy loop, knapsack DP), the execution backends
(per-task queue-wait/run spans, retry/chaos annotations, worker-side
telemetry shipped back over the pickle protocol) and the serving layer
(patch-vs-full spans, route/event latency histograms, the ``/metrics``
endpoint). Three rules keep it honest:

* **Off by default, near-zero cost when off.** ``obs.span(...)`` on the
  disabled path is one attribute check returning a shared no-op; task
  wrapping and envelope absorption vanish entirely. The ``obs`` bench
  section pins the overhead (≤1% disabled, ≤5% enabled on the sweep
  path).
* **Never in the results.** Telemetry lives beside the result stream
  (like :class:`~repro.exec.faults.FaultStats`): result bytes, artifact
  hashes and hit-ratio series are bit-identical with observability on
  or off, on every backend — a pinned property test enforces it.
* **Mergeable.** Registries and tracers fold across processes like
  :meth:`~repro.utils.stats.RunningStats.merge`: counters add,
  histogram buckets add, spans concatenate on an epoch-anchored clock.

Span naming convention: dotted ``layer.phase[.detail]`` — e.g.
``exec.task``, ``task.solve``, ``solve.gen.greedy``,
``feasibility.sparse``, ``serve.patch_solve``. Metrics are
Prometheus-style snake case with a ``repro_`` prefix and base-unit
suffixes (``_seconds``, ``_total``).

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("my.phase"):
        ...
    print(obs.registry().to_prometheus())
    obs.export.write_chrome_trace(obs.tracer(), "trace.json")
"""

from repro.obs import export
from repro.obs.export import (
    chrome_trace,
    parse_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    ObsEnvelope,
    ObsTask,
    absorb,
    active,
    count,
    disable,
    enable,
    instant,
    is_enabled,
    metrics_enabled,
    observe,
    phase_totals,
    registry,
    span,
    traced,
    tracer,
    tracing_enabled,
    wrap_task,
)
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "Tracer",
    "ObsEnvelope",
    "ObsTask",
    "absorb",
    "active",
    "count",
    "chrome_trace",
    "disable",
    "enable",
    "export",
    "instant",
    "is_enabled",
    "metrics_enabled",
    "observe",
    "parse_prometheus",
    "phase_totals",
    "registry",
    "span",
    "traced",
    "tracer",
    "tracing_enabled",
    "validate_chrome_trace",
    "wrap_task",
    "write_chrome_trace",
]
