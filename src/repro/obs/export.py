"""Exporters and validators: Chrome trace-event JSON, Prometheus text.

:func:`chrome_trace` renders a :class:`~repro.obs.trace.Tracer` as the
Chrome trace-event format (the ``{"traceEvents": [...]}`` flavour) —
``B``/``E`` duration pairs per span, ``i`` instants, plus ``M``
metadata naming each process track. The file loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

:func:`validate_chrome_trace` is the strict consumer the tests and the
CI ``obs-smoke`` job share: timestamps monotone per ``(pid, tid)``,
every ``B`` balanced by a matching ``E``, no ``E`` without an open
span. :func:`parse_prometheus` plays the same role for the ``/metrics``
exposition.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.trace import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "parse_prometheus",
]


def _track_events(
    spans: List[tuple], instants: List[tuple], pid: int, tid: int
) -> List[Dict[str, Any]]:
    """One (pid, tid) track's B/E/i events, balanced and ts-monotone.

    B/E pairs are produced by an explicit stack simulation: spans are
    opened in start order and closed LIFO, with a child's end clamped
    to its parent's — so even spans whose timestamps collapsed onto the
    same microsecond come out properly nested, never crossing.
    """
    ordered: List[Tuple[int, int, Dict[str, Any]]] = []
    seq = 0

    def emit(ts: int, event: Dict[str, Any]) -> None:
        nonlocal seq
        ordered.append((ts, seq, event))
        seq += 1

    base = {"cat": "repro", "pid": pid, "tid": tid}
    stack: List[Tuple[int, Dict[str, Any]]] = []
    spans = sorted(spans, key=lambda r: (r[1], -(r[1] + r[2]), r[5]))
    for name, start, dur, _pid, _tid, _depth, args in spans:
        while stack and stack[-1][0] <= start:
            end, event = stack.pop()
            emit(end, event)
        end = start + dur
        if stack:
            end = min(end, stack[-1][0])
        begin = dict(base, name=name, ph="B", ts=start)
        if args:
            begin["args"] = dict(args)
        emit(start, begin)
        stack.append((end, dict(base, name=name, ph="E", ts=end)))
    while stack:
        end, event = stack.pop()
        emit(end, event)
    for name, ts, _pid, _tid, args in instants:
        event = dict(base, name=name, ph="i", ts=ts, s="t")
        if args:
            event["args"] = dict(args)
        emit(ts, event)
    # Stable by ts: span events keep their balanced relative order,
    # instants interleave at their timestamps.
    ordered.sort(key=lambda item: (item[0], item[1]))
    return [event for _ts, _seq, event in ordered]


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """A tracer's records as a Chrome trace-event JSON object."""
    tracks: Dict[Tuple[int, int], Tuple[List[tuple], List[tuple]]] = {}
    for record in tracer.spans:
        track = tracks.setdefault((record[3], record[4]), ([], []))
        track[0].append(record)
    for record in tracer.instants:
        track = tracks.setdefault((record[2], record[3]), ([], []))
        track[1].append(record)
    events: List[Dict[str, Any]] = []
    for (pid, tid), (spans, instants) in sorted(tracks.items()):
        events.extend(_track_events(spans, instants, pid, tid))
    pids = {pid for pid, _tid in tracks}
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {
                "name": "repro parent" if pid == tracer.pid else f"worker {pid}"
            },
        }
        for pid in sorted(pids)
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    payload = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])


def validate_chrome_trace(
    source: Union[str, Dict[str, Any], List[Dict[str, Any]]],
) -> Dict[str, int]:
    """Check a trace file/object against the trace-event contract.

    Accepts a path, a ``{"traceEvents": [...]}`` object or a bare event
    list. Raises :class:`ValueError` naming the first violation;
    returns ``{"spans": ..., "instants": ..., "tracks": ...}`` counts on
    success.
    """
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = source
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object has no 'traceEvents' list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(f"not a trace payload: {type(payload).__name__}")

    stacks: Dict[Tuple[int, int], List[str]] = {}
    last_ts: Dict[Tuple[int, int], int] = {}
    spans = instants = 0
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{position} is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue
        for field in ("name", "pid", "tid", "ts"):
            if field not in event:
                raise ValueError(
                    f"event #{position} ({phase!r}) missing {field!r}"
                )
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if ts < last_ts.get(track, ts):
            raise ValueError(
                f"event #{position} ({event['name']!r}): ts {ts} goes "
                f"backwards on track pid={track[0]} tid={track[1]} "
                f"(last was {last_ts[track]})"
            )
        last_ts[track] = ts
        if phase == "B":
            stacks.setdefault(track, []).append(event["name"])
            spans += 1
        elif phase == "E":
            stack = stacks.get(track)
            if not stack:
                raise ValueError(
                    f"event #{position}: 'E' for {event['name']!r} with "
                    f"no open span on track {track}"
                )
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"event #{position}: 'E' for {event['name']!r} "
                    f"crosses open span {opened!r} on track {track}"
                )
        elif phase == "i":
            instants += 1
        else:
            raise ValueError(
                f"event #{position}: unsupported phase {phase!r}"
            )
    unbalanced = {track: stack for track, stack in stacks.items() if stack}
    if unbalanced:
        raise ValueError(
            f"unbalanced 'B' events at end of trace: {unbalanced}"
        )
    return {"spans": spans, "instants": instants, "tracks": len(last_ts)}


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse text exposition format into ``{name: {labels: value}}``.

    ``labels`` is the rendered ``{k="v",...}`` string (empty for bare
    metrics) — enough structure for tests and the CI smoke job to
    assert on, while rejecting malformed lines loudly.
    """
    samples: Dict[str, Dict[str, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            if line.startswith("# TYPE") and len(line.split()) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no sample value in {raw!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_part!r}"
            ) from None
        brace = name_part.find("{")
        if brace >= 0:
            name, labels = name_part[:brace], name_part[brace:]
            if not labels.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels")
        else:
            name, labels = name_part, ""
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        samples.setdefault(name, {})[labels] = value
    return samples
