"""The metrics half of :mod:`repro.obs`: counters, gauges, histograms.

Design constraints, in order:

* **Out of the results.** Like :class:`~repro.exec.faults.FaultStats`,
  metrics describe *how* a run went, never *what* it computed — nothing
  here is reachable from result serialisation or artifact hashing, so
  enabling observability cannot perturb a single result byte.
* **Mergeable across processes.** A worker ships its registry as a
  plain-data :meth:`MetricsRegistry.snapshot` over the existing pickle
  protocol and the parent folds it in with
  :meth:`MetricsRegistry.merge_snapshot` — the same fold-partials shape
  as :meth:`repro.utils.stats.RunningStats.merge` (Chan's parallel
  update): counters add, gauges keep the latest, histograms add
  per-bucket counts, so any fold order yields the same totals.
* **Fixed bucket schemas.** A histogram's buckets are part of its
  identity: re-registering a name with different buckets is an error,
  not a silent re-bucketing, which is what keeps cross-process merges
  exact (bucket counts only ever add to matching buckets).

Thread safety: each metric carries its own lock (the serve HTTP server
observes from handler threads; the remote backend's reader threads
observe heartbeat gaps). The registry's get-or-create is locked too.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

#: Default bucket schema for latency-shaped histograms (seconds). Spans
#: from 100 µs to 10 s — wide enough for a route lookup and a full
#: solve alike.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: A metric's labels, normalised: sorted ``(key, value)`` pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def state(self) -> float:
        return self.value

    def merge_state(self, state: float) -> None:
        with self._lock:
            self.value += state


class Gauge:
    """A point-in-time value (merges keep the merged-in reading)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def state(self) -> float:
        return self.value

    def merge_state(self, state: float) -> None:
        # A gauge is a reading, not an accumulation: the merged-in
        # snapshot (the more recent observation) wins.
        with self._lock:
            self.value = float(state)


class Histogram:
    """Fixed-bucket distribution: cumulative-style counts, sum, count.

    ``buckets`` are upper bounds in increasing order; an implicit +Inf
    bucket catches the tail. Counts are stored per-bucket (not
    cumulative) internally and cumulated only at exposition time, which
    makes the cross-process merge a plain vector add.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def state(self) -> Tuple[Tuple[float, ...], List[int], float, int]:
        return (self.buckets, list(self.counts), self.sum, self.count)

    def merge_state(self, state) -> None:
        buckets, counts, total, count = state
        if tuple(buckets) != self.buckets:
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched bucket "
                f"schemas {tuple(buckets)!r} != {self.buckets!r}"
            )
        with self._lock:
            for index, value in enumerate(counts):
                self.counts[index] += value
            self.sum += total
            self.count += count


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create metric store with snapshot/merge and exposition.

    Metrics are keyed on ``(name, labels)``; registering an existing
    name with a different kind or bucket schema is an error. The
    registry is what travels (as :meth:`snapshot` plain data) from
    worker processes back to the parent, where :meth:`merge_snapshot`
    folds it in — any fold order produces identical totals.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, labels: LabelSet, **kwargs):
        key = (name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, labels, **kwargs)
                self._metrics[key] = metric
                return metric
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind}"
            )
        if kind == "histogram":
            buckets = kwargs.get("buckets", LATENCY_BUCKETS)
            if tuple(float(b) for b in buckets) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{metric.buckets!r}; bucket schemas are fixed"
                )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create("counter", name, _labelset(labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create("gauge", name, _labelset(labels))

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, _labelset(labels), buckets=buckets
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> Iterable[object]:
        """All registered metrics, in registration order."""
        return list(self._metrics.values())

    # -- cross-process fold --------------------------------------------
    def snapshot(self) -> List[Tuple[str, str, LabelSet, object]]:
        """Plain-data (picklable) dump: ``(kind, name, labels, state)``."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [(m.kind, m.name, m.labels, m.state()) for m in metrics]

    def merge_snapshot(
        self, snapshot: List[Tuple[str, str, LabelSet, object]]
    ) -> None:
        """Fold a worker's snapshot in (Chan-style: order-independent)."""
        for kind, name, labels, state in snapshot:
            if kind == "histogram":
                buckets = tuple(state[0])
                metric = self._get_or_create(
                    kind, name, tuple(labels), buckets=buckets
                )
            else:
                metric = self._get_or_create(kind, name, tuple(labels))
            metric.merge_state(state)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (equivalent to its snapshot)."""
        self.merge_snapshot(other.snapshot())

    # -- exposition ----------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if metric.name not in seen_types:
                seen_types[metric.name] = metric.kind
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == "histogram":
                cumulative = 0
                for bound, count in zip(metric.buckets, metric.counts):
                    cumulative += count
                    labels = metric.labels + (("le", _format(bound)),)
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(labels)}"
                        f" {cumulative}"
                    )
                cumulative += metric.counts[-1]
                labels = metric.labels + (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket{_render_labels(labels)}"
                    f" {cumulative}"
                )
                suffix = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{suffix} {_format(metric.sum)}")
                lines.append(f"{metric.name}_count{suffix} {metric.count}")
            else:
                lines.append(
                    f"{metric.name}{_render_labels(metric.labels)}"
                    f" {_format(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    """Render a sample value: integers stay integral."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
