"""Global observability state: enable/disable, spans, task envelopes.

One module-level :class:`ObsState` holds the process's registry and
tracer. Everything funnels through three hot functions — :func:`span`,
:func:`instant`, :func:`metrics_enabled` — whose disabled path is a
single attribute check returning a shared no-op object, which is what
keeps observability near-zero-cost when off (the ``obs`` bench section
measures it).

Cross-process collection rides the task path the backends already
have: :func:`wrap_task` turns the picklable task function into a
picklable :class:`ObsTask` that runs the task under a fresh collector
state and returns an :class:`ObsEnvelope` (value + metrics snapshot +
trace snapshot + timing anchors); the parent's :func:`absorb` unwraps
the value, folds the snapshots into the live registry/tracer, and
observes the task's queue-wait and run-time histograms. When
observability is off, ``wrap_task`` returns the function unchanged and
``absorb`` is an identity — the task path is byte-for-byte what it was.

A killed worker never sends its envelope (results ship only on task
completion, and the remote backend's first-result-wins fold absorbs at
most one envelope per task index), so partial spans from lost workers
cannot corrupt the merged view.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "metrics_enabled",
    "tracing_enabled",
    "registry",
    "tracer",
    "span",
    "instant",
    "observe",
    "phase_totals",
    "wrap_task",
    "absorb",
    "ObsTask",
    "ObsEnvelope",
]


class ObsState:
    """The process-wide (or per-task, under :class:`ObsTask`) state."""

    __slots__ = ("metrics_on", "tracing_on", "registry", "tracer")

    def __init__(self, metrics_on: bool = False, tracing_on: bool = False):
        self.metrics_on = metrics_on
        self.tracing_on = tracing_on
        self.registry = MetricsRegistry()
        self.tracer = Tracer()


_STATE = ObsState()


def enable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn observability on with a fresh registry and tracer."""
    global _STATE
    _STATE = ObsState(metrics_on=metrics, tracing_on=tracing)


def disable() -> None:
    """Turn observability off (and drop any collected state)."""
    global _STATE
    _STATE = ObsState()


def is_enabled() -> bool:
    """Is any observability facet on?"""
    state = _STATE
    return state.metrics_on or state.tracing_on


def metrics_enabled() -> bool:
    """Is the metrics registry collecting?"""
    return _STATE.metrics_on


def tracing_enabled() -> bool:
    """Is the tracer collecting?"""
    return _STATE.tracing_on


def registry() -> MetricsRegistry:
    """The live registry (empty and inert while disabled)."""
    return _STATE.registry


def tracer() -> Tracer:
    """The live tracer (empty and inert while disabled)."""
    return _STATE.tracer


def span(name: str, **args: Any):
    """A span context manager; the shared no-op when tracing is off.

    >>> with obs.span("solve.gen", engine="sparse") as handle:
    ...     handle["steps"] = steps  # post-hoc annotation
    """
    state = _STATE
    if not state.tracing_on:
        return NOOP_SPAN
    return state.tracer.span(name, args or None)


def traced(name: str) -> Callable:
    """Decorator form of :func:`span` for whole functions."""

    def decorate(fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def instant(name: str, **args: Any) -> None:
    """Record a point event (retry, lost worker, ...) if tracing."""
    state = _STATE
    if state.tracing_on:
        state.tracer.instant(name, args or None)


def observe(name: str, value: float, **labels: str) -> None:
    """Observe into a latency histogram if metrics are on."""
    state = _STATE
    if state.metrics_on:
        state.registry.histogram(name, **labels).observe(value)


def count(name: str, amount: float = 1, **labels: str) -> None:
    """Increment a counter if metrics are on."""
    state = _STATE
    if state.metrics_on:
        state.registry.counter(name, **labels).inc(amount)


def phase_totals() -> Dict[str, Dict[str, float]]:
    """Summed duration/count per span name from the live tracer."""
    return _STATE.tracer.phase_totals()


# ----------------------------------------------------------------------
# Cross-process task instrumentation
# ----------------------------------------------------------------------
class ObsEnvelope:
    """A task result plus the telemetry collected while computing it."""

    __slots__ = ("value", "metrics", "trace", "started_epoch", "run_s")

    def __init__(self, value, metrics, trace, started_epoch, run_s):
        self.value = value
        self.metrics = metrics
        self.trace = trace
        self.started_epoch = started_epoch
        self.run_s = run_s


class ObsTask:
    """Picklable task-fn wrapper: collect per task, ship an envelope.

    The wrapper swaps in a fresh :class:`ObsState` for the duration of
    the task (workers start with observability off — the wrapper itself
    carries the enablement over the pickle protocol) and restores the
    previous state afterwards, so in-process backends leave the
    parent's own telemetry untouched while a task runs.

    Exceptions pass through untouched: the fault taxonomy
    (``TaskFailure`` wrapping, retry classification) must see exactly
    what it would have seen without observability.
    """

    __slots__ = ("fn", "metrics_on", "tracing_on")

    def __init__(self, fn: Callable, metrics_on: bool, tracing_on: bool):
        self.fn = fn
        self.metrics_on = metrics_on
        self.tracing_on = tracing_on

    def __call__(self, payload):
        global _STATE
        previous = _STATE
        state = ObsState(self.metrics_on, self.tracing_on)
        _STATE = state
        started_epoch = time.time()
        start = time.perf_counter()
        try:
            with span("exec.task"):
                value = self.fn(payload)
        finally:
            _STATE = previous
        return ObsEnvelope(
            value,
            state.registry.snapshot() if self.metrics_on else None,
            state.tracer.snapshot() if self.tracing_on else None,
            started_epoch,
            time.perf_counter() - start,
        )


def active() -> bool:
    """Should backends instrument this ``map`` call?"""
    return is_enabled()


def wrap_task(fn: Callable) -> Callable:
    """Wrap a task function for telemetry collection (identity if off)."""
    state = _STATE
    if not (state.metrics_on or state.tracing_on):
        return fn
    return ObsTask(fn, state.metrics_on, state.tracing_on)


def absorb(value, submitted_epoch: Optional[float] = None):
    """Unwrap an :class:`ObsEnvelope`, folding its telemetry in.

    ``submitted_epoch`` (the parent's ``time.time()`` when the task was
    handed to the substrate) turns the envelope's worker-side start
    stamp into the task's queue wait. Non-envelope values pass through
    unchanged, so the call is safe on the disabled path too.
    """
    if not isinstance(value, ObsEnvelope):
        return value
    state = _STATE
    if state.metrics_on:
        if value.metrics is not None:
            state.registry.merge_snapshot(value.metrics)
        reg = state.registry
        reg.histogram("repro_exec_task_run_seconds").observe(value.run_s)
        if submitted_epoch is not None:
            reg.histogram("repro_exec_queue_wait_seconds").observe(
                max(0.0, value.started_epoch - submitted_epoch)
            )
        reg.counter("repro_exec_tasks_total").inc()
    if state.tracing_on and value.trace is not None:
        state.tracer.absorb(value.trace)
    return value.value
