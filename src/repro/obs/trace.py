"""The tracing half of :mod:`repro.obs`: spans, instants, absorption.

A :class:`Tracer` collects **spans** (named intervals with microsecond
timestamps, opened by ``obs.span("solve.gen")`` context managers) and
**instants** (point events — retries, lost workers). Records are plain
tuples, cheap to append and picklable, so a worker process can ship its
whole tracer back over the existing task-result pickle protocol and the
parent can :meth:`Tracer.absorb` it.

Clock: every process stamps events with ``perf_counter`` shifted by a
per-process constant epoch offset captured at import. Within one
process that is strictly monotonic (Chrome's per-tid requirement); and
because the offset anchors to the shared wall clock, spans absorbed
from workers on the same machine line up with the parent's timeline —
absorbed spans keep their worker ``pid``/``tid``, which is what
"re-parents" them into the merged trace as separate tracks.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Tracer", "SpanHandle", "NOOP_SPAN"]

#: Per-process anchor: ``perf_counter`` time zero expressed in epoch µs.
#: Captured once at import so timestamps stay strictly monotonic within
#: the process while remaining comparable across processes.
_EPOCH_OFFSET_US = int((time.time() - time.perf_counter()) * 1e6)


def now_us() -> int:
    """Current time in epoch microseconds (monotonic per process)."""
    return int(time.perf_counter() * 1e6) + _EPOCH_OFFSET_US


#: Span record: (name, start_us, dur_us, pid, tid, depth, args|None)
SpanRecord = Tuple[str, int, int, int, int, int, Optional[Dict[str, Any]]]
#: Instant record: (name, ts_us, pid, tid, args|None)
InstantRecord = Tuple[str, int, int, int, Optional[Dict[str, Any]]]


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    Supports the same surface as :class:`SpanHandle` (context manager +
    item assignment for post-hoc annotations) so call sites need no
    enabled/disabled branching of their own.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def __setitem__(self, key: str, value: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """One open span: records on exit; ``handle["k"] = v`` annotates."""

    __slots__ = ("_tracer", "_name", "_start", "_args", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __setitem__(self, key: str, value: Any) -> None:
        if self._args is None:
            self._args = {}
        self._args[key] = value

    def __enter__(self) -> "SpanHandle":
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = now_us()
        return self

    def __exit__(self, *exc_info) -> None:
        end = now_us()
        tracer = self._tracer
        tracer._local.depth = self._depth
        # Chrome's B/E pairs need dur >= 1 so a span's end never sorts
        # ahead of its own begin.
        tracer._record_span(
            (
                self._name,
                self._start,
                max(1, end - self._start),
                tracer.pid,
                threading.get_ident(),
                self._depth,
                self._args,
            )
        )


class Tracer:
    """An append-only event collector for one process (or one task).

    ``max_events`` bounds memory on very long runs: past it, new
    records are counted in :attr:`dropped` instead of stored (the
    bound is per record kind).
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.pid = os.getpid()
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.max_events = max_events
        self.dropped = 0
        self._local = threading.local()

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def span(self, name: str, args: Optional[dict] = None) -> SpanHandle:
        """An open span handle; use as a context manager."""
        return SpanHandle(self, name, args)

    def _record_span(self, record: SpanRecord) -> None:
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        self.spans.append(record)

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        """Record a point event (retry, lost worker, ...)."""
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append(
            (name, now_us(), self.pid, threading.get_ident(), args)
        )

    # -- cross-process fold --------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data (picklable) dump of every record."""
        return {
            "spans": list(self.spans),
            "instants": list(self.instants),
            "dropped": self.dropped,
        }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's snapshot in.

        Records keep their original pid/tid (each worker renders as its
        own track) and their epoch-anchored timestamps, so the merged
        trace is a single consistent timeline.
        """
        budget = self.max_events - len(self.spans)
        spans = snapshot.get("spans", ())
        self.spans.extend(spans[:budget] if budget >= 0 else ())
        self.dropped += max(0, len(spans) - max(0, budget))
        budget = self.max_events - len(self.instants)
        instants = snapshot.get("instants", ())
        self.instants.extend(instants[:budget] if budget >= 0 else ())
        self.dropped += max(0, len(instants) - max(0, budget))
        self.dropped += snapshot.get("dropped", 0)

    # -- aggregation ---------------------------------------------------
    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Summed duration and count per span name.

        Durations add across processes and threads, so a phase that ran
        on N workers in parallel reports up to N× the wall-clock time —
        this is *where the work went*, not elapsed time.
        """
        totals: Dict[str, Dict[str, float]] = {}
        for name, _start, dur, _pid, _tid, _depth, _args in self.spans:
            entry = totals.setdefault(name, {"seconds": 0.0, "count": 0})
            entry["seconds"] += dur / 1e6
            entry["count"] += 1
        return totals
