"""Placement-as-a-service: a long-lived serving layer with warm re-solve.

The batch solvers answer "given this snapshot, what is the best
placement?"; this package answers it *continuously*. A
:class:`PlacementService` solves a scenario once, keeps the coverage
tracker / CSR feasibility state resident, and processes a stream of
events (user churn, capacity steps, popularity drift) by replaying the
recorded greedy trace — falling back to a warm full solve whenever
exactness cannot be proven, under a :class:`ResolvePolicy`. Every answer
is ``==``-identical to solving the mutated scenario from scratch.

Transports: :class:`ServiceSession` (Python) and :func:`serve_http`
(stdlib HTTP/JSON, ``python -m repro serve``).
"""

from repro.serve.events import (
    EVENT_KINDS,
    Event,
    EventTrace,
    apply_event,
    generate_event_trace,
)
from repro.serve.http import PlacementHTTPServer, serve_http
from repro.serve.policy import RESOLVE_MODES, ResolvePolicy
from repro.serve.resolver import (
    SERVE_ENGINES,
    SERVE_SOLVERS,
    ScratchRecord,
    SolveState,
    TraceStep,
    full_solve,
    patch_solve,
    recorded_solve,
    resolve_from_scratch,
)
from repro.serve.service import (
    EventResult,
    PlacementService,
    RouteResult,
    ServiceSession,
)

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventTrace",
    "EventResult",
    "PlacementHTTPServer",
    "PlacementService",
    "RESOLVE_MODES",
    "ResolvePolicy",
    "RouteResult",
    "SERVE_ENGINES",
    "SERVE_SOLVERS",
    "ScratchRecord",
    "ServiceSession",
    "SolveState",
    "TraceStep",
    "apply_event",
    "full_solve",
    "generate_event_trace",
    "patch_solve",
    "recorded_solve",
    "resolve_from_scratch",
    "serve_http",
]
