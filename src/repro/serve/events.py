"""Event model for the serving layer.

An :class:`Event` is one mutation of a live scenario: a user departing
(their demand row drops to zero), a departed user re-arriving (their
original row is restored), a server's storage capacity stepping to a new
absolute value, or a model's popularity being scaled. :class:`EventTrace`
is an ordered, JSON-round-trippable sequence of events plus the seed that
generated it, so serve benchmarks and replay tests are reproducible —
a stepping stone to the ROADMAP's trace-driven ``TraceSpec`` workloads.

:func:`apply_event` is the single source of mutation arithmetic: both the
resident :class:`~repro.serve.service.PlacementService` and the
from-scratch reference path route events through it (and through the
:class:`~repro.core.placement.PlacementInstance` mutators it calls), so
the mutated demand/capacity arrays are bit-identical on both sides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError
from repro.utils.rng import RngFactory

TRACE_FORMAT = "trimcaching-events-v1"

EVENT_KINDS = (
    "user_arrive",
    "user_depart",
    "capacity_change",
    "popularity_update",
)

#: Required payload field per event kind (beyond ``kind`` itself).
_REQUIRED = {
    "user_arrive": ("user",),
    "user_depart": ("user",),
    "capacity_change": ("server", "capacity_bytes"),
    "popularity_update": ("model", "factor"),
}


@dataclass(frozen=True)
class Event:
    """One mutation of a live scenario.

    Exactly the fields required by ``kind`` must be set:

    * ``user_arrive`` / ``user_depart`` — ``user``;
    * ``capacity_change`` — ``server`` and ``capacity_bytes`` (absolute);
    * ``popularity_update`` — ``model`` and ``factor`` (multiplicative).
    """

    kind: str
    user: Optional[int] = None
    server: Optional[int] = None
    model: Optional[int] = None
    capacity_bytes: Optional[int] = None
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ServeError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        for field in _REQUIRED[self.kind]:
            if getattr(self, field) is None:
                raise ServeError(f"{self.kind} event requires {field!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (only the fields the kind uses)."""
        payload: Dict[str, object] = {"kind": self.kind}
        for field in _REQUIRED[self.kind]:
            payload[field] = getattr(self, field)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Event":
        """Inverse of :meth:`to_dict` (tolerates extra keys)."""
        if not isinstance(payload, dict):
            raise ServeError(f"event payload must be an object, got {payload!r}")
        kind = payload.get("kind")
        if kind not in EVENT_KINDS:
            raise ServeError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        kwargs: Dict[str, object] = {"kind": kind}
        for field in _REQUIRED[kind]:
            if field not in payload:
                raise ServeError(f"{kind} event requires {field!r}")
            value = payload[field]
            if field == "factor":
                kwargs[field] = float(value)  # type: ignore[arg-type]
            else:
                kwargs[field] = int(value)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class EventTrace:
    """An ordered, reproducible sequence of events."""

    events: Tuple[Event, ...]
    seed: Optional[int] = None
    name: str = "event trace"

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to JSON; :meth:`from_json` restores it exactly."""
        payload = {
            "format": TRACE_FORMAT,
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EventTrace":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid event-trace JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != TRACE_FORMAT:
            raise ServeError(
                f"not an event trace (expected format={TRACE_FORMAT!r})"
            )
        events = payload.get("events")
        if not isinstance(events, list):
            raise ServeError("event trace must carry an 'events' list")
        seed = payload.get("seed")
        return cls(
            events=tuple(Event.from_dict(entry) for entry in events),
            seed=None if seed is None else int(seed),
            name=str(payload.get("name", "event trace")),
        )


def apply_event(instance, event: Event, original_demand: np.ndarray):
    """Apply one event to a live :class:`PlacementInstance` in place.

    Returns ``(changed_columns, capacity_changed)``: the dense model
    indices whose demand column changed (empty for capacity events) and
    whether a capacity moved. ``user_arrive`` restores the user's row
    from ``original_demand`` (the scenario's pristine demand matrix);
    ``user_depart`` zeroes it.
    """
    if event.kind == "user_depart":
        row = np.zeros(instance.num_models, dtype=float)
        return instance.set_demand_row(int(event.user), row), False
    if event.kind == "user_arrive":
        user = int(event.user)
        if not 0 <= user < original_demand.shape[0]:
            raise ServeError(f"user {user} out of range")
        return instance.set_demand_row(user, original_demand[user].copy()), False
    if event.kind == "popularity_update":
        return (
            instance.scale_demand_column(int(event.model), float(event.factor)),
            False,
        )
    # capacity_change
    instance.set_capacity(int(event.server), int(event.capacity_bytes))
    return np.empty(0, dtype=np.intp), True


def generate_event_trace(
    scenario,
    num_events: int,
    seed: int = 0,
    *,
    weights: Sequence[float] = (0.3, 0.4, 0.15, 0.15),
    min_active_users: int = 1,
    name: Optional[str] = None,
) -> EventTrace:
    """A seeded, reproducible event trace for one scenario.

    Draws every choice from the named RNG stream
    ``RngFactory(seed).child("event-trace")``, so the trace depends only
    on ``seed`` and the scenario's shape. ``weights`` orders the kinds as
    ``EVENT_KINDS`` (arrive, depart, capacity, popularity); arrivals with
    no departed user fall back to departures and vice versa, and
    departures never drop the active-user count below
    ``min_active_users`` (total demand must stay positive). Capacity
    steps are absolute: a uniform factor in [0.5, 1.5] of the server's
    *original* capacity. Popularity factors are uniform in [0.5, 2.0].
    """
    if num_events < 0:
        raise ServeError("num_events must be non-negative")
    if len(weights) != len(EVENT_KINDS):
        raise ServeError(f"weights must have {len(EVENT_KINDS)} entries")
    weight_arr = np.asarray(weights, dtype=float)
    if np.any(weight_arr < 0) or weight_arr.sum() <= 0:
        raise ServeError("weights must be non-negative and sum to > 0")
    probabilities = weight_arr / weight_arr.sum()
    min_active_users = max(1, int(min_active_users))

    instance = scenario.instance
    num_users = instance.num_users
    num_servers = instance.num_servers
    num_models = instance.num_models
    original_capacities = np.asarray(instance.capacities, dtype=np.int64).copy()

    rng = RngFactory(seed).child("event-trace")
    active = np.ones(num_users, dtype=bool)
    events = []
    for _ in range(int(num_events)):
        kind = EVENT_KINDS[int(rng.choice(len(EVENT_KINDS), p=probabilities))]
        if kind == "user_arrive" and not (~active).any():
            kind = "user_depart"  # nobody to bring back
        if kind == "user_depart" and int(active.sum()) <= min_active_users:
            kind = "user_arrive" if (~active).any() else "capacity_change"
        if kind == "user_depart":
            user = int(rng.choice(np.flatnonzero(active)))
            active[user] = False
            events.append(Event(kind="user_depart", user=user))
        elif kind == "user_arrive":
            user = int(rng.choice(np.flatnonzero(~active)))
            active[user] = True
            events.append(Event(kind="user_arrive", user=user))
        elif kind == "capacity_change":
            server = int(rng.integers(num_servers))
            factor = float(rng.uniform(0.5, 1.5))
            events.append(
                Event(
                    kind="capacity_change",
                    server=server,
                    capacity_bytes=int(original_capacities[server] * factor),
                )
            )
        else:  # popularity_update
            model = int(rng.integers(num_models))
            factor = float(rng.uniform(0.5, 2.0))
            events.append(
                Event(kind="popularity_update", model=model, factor=factor)
            )
    return EventTrace(
        events=tuple(events),
        seed=int(seed),
        name=name
        or f"trace seed={seed} M={num_servers} K={num_users} I={num_models}",
    )
