"""Stdlib HTTP/JSON transport for :class:`PlacementService`.

Mirrors the ``exec`` remote backend's stdlib-only style: no frameworks,
just :mod:`http.server`. Endpoints:

``GET /status``
    Service summary (solver, shape, hit ratio, event counters).
``GET /route?user=K&model=I``
    Which server serves the request — ``{"server": m | null, "hit": …}``.
``GET /placement``
    The full placement as ``{server: [model indices]}``.
``GET /metrics``
    Prometheus text exposition (``text/plain``): the service's resolve
    counters and hit-ratio gauge, plus — when :mod:`repro.obs` is
    enabled in this process — everything in the global obs registry
    (event/route latency histograms, span-derived counters). See
    :func:`metrics_exposition`.
``POST /events``
    Body ``{"events": [{...}, ...]}`` (event dicts, see
    :mod:`repro.serve.events`) or a serialised :class:`EventTrace`
    payload. Events are applied in order under the server's lock; the
    response carries one result summary per event and the final hit
    ratio.

Errors return ``{"error": ...}`` with status 400 (bad request / domain
error) or 404 (unknown path). Mutation and reads share one lock, so
routed answers never observe a half-applied event batch.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.errors import ReproError, ServeError
from repro.serve.events import TRACE_FORMAT, Event
from repro.serve.service import PlacementService


def metrics_exposition(service: PlacementService) -> str:
    """Prometheus text exposition for one service.

    The service-derived metrics are rebuilt from the service's own
    counters on every call (no sampling lag, no obs dependency):

    * ``repro_serve_resolves_total{mode=...}`` — the cumulative
      replay/fallback/full/noop counters of :meth:`PlacementService.stats`.
    * ``repro_serve_events_processed_total`` — their sum.
    * ``repro_serve_hit_ratio`` — the current placement's hit ratio.
    * ``repro_serve_initial_solve_seconds`` — the cold-start solve time.

    When :func:`repro.obs.metrics_enabled`, the global obs registry's
    exposition (``repro_serve_event_seconds``/``repro_serve_route_seconds``
    histograms, ``repro_serve_events_total`` and any solver counters) is
    appended; its metric names are disjoint from the ones above, so the
    combined text stays a valid exposition.
    """
    registry = obs.MetricsRegistry()
    for mode, value in service.counters.items():
        registry.counter("repro_serve_resolves_total", mode=mode).inc(value)
    registry.counter("repro_serve_events_processed_total").inc(
        service.events_processed
    )
    registry.gauge("repro_serve_hit_ratio").set(service.hit_ratio)
    registry.gauge("repro_serve_initial_solve_seconds").set(
        service.initial_solve_s
    )
    text = registry.to_prometheus()
    if obs.metrics_enabled():
        text += obs.registry().to_prometheus()
    return text


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's ``PlacementService``."""

    server_version = "trimcaching-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    @staticmethod
    def _int_param(params: dict, name: str) -> int:
        values = params.get(name)
        if not values:
            raise ServeError(f"missing query parameter {name!r}")
        try:
            return int(values[0])
        except ValueError:
            raise ServeError(
                f"query parameter {name!r} must be an integer, got {values[0]!r}"
            ) from None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service: PlacementService = self.server.service  # type: ignore[attr-defined]
        lock: threading.Lock = self.server.lock  # type: ignore[attr-defined]
        parts = urlsplit(self.path)
        try:
            if parts.path == "/status":
                with lock:
                    self._reply(200, service.status())
            elif parts.path == "/route":
                params = parse_qs(parts.query)
                user = self._int_param(params, "user")
                model = self._int_param(params, "model")
                started = time.perf_counter()
                with lock:
                    result = service.route(user, model)
                obs.observe(
                    "repro_serve_route_seconds",
                    time.perf_counter() - started,
                )
                self._reply(200, result.to_dict())
            elif parts.path == "/placement":
                with lock:
                    self._reply(200, service.placement_dict())
            elif parts.path == "/metrics":
                with lock:
                    text = metrics_exposition(service)
                self._reply_text(200, text)
            else:
                self._error(404, f"unknown path {parts.path!r}")
        except ReproError as exc:
            self._error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service: PlacementService = self.server.service  # type: ignore[attr-defined]
        lock: threading.Lock = self.server.lock  # type: ignore[attr-defined]
        parts = urlsplit(self.path)
        if parts.path != "/events":
            self._error(404, f"unknown path {parts.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            entries = self._event_entries(payload)
            events = [Event.from_dict(entry) for entry in entries]
            with lock:
                results = [service.process(event) for event in events]
                final_ratio = service.hit_ratio
            self._reply(
                200,
                {
                    "processed": len(results),
                    "hit_ratio": final_ratio,
                    "results": [result.to_dict() for result in results],
                },
            )
        except ReproError as exc:
            self._error(400, str(exc))

    @staticmethod
    def _event_entries(payload: object) -> list:
        """Accept ``{"events": [...]}``, a trace payload, or a bare list."""
        if isinstance(payload, list):
            return payload
        if isinstance(payload, dict):
            if payload.get("format") == TRACE_FORMAT or "events" in payload:
                events = payload.get("events")
                if isinstance(events, list):
                    return events
        raise ServeError(
            "POST /events body must be {'events': [...]} or an event-trace"
        )


class PlacementHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` owning one placement service."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PlacementService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.lock = threading.Lock()
        self.verbose = verbose

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ephemeral ``port=0``)."""
        return int(self.server_address[1])


def serve_http(
    service: PlacementService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> PlacementHTTPServer:
    """Bind (but do not start) an HTTP server for ``service``.

    Call :meth:`~socketserver.BaseServer.serve_forever` to block, or run
    it in a thread and :meth:`shutdown`/:meth:`server_close` when done.
    ``port=0`` binds an ephemeral port (read it back via ``.port``).
    """
    return PlacementHTTPServer((host, port), service, verbose=verbose)
