"""Re-solve policy: when to patch incrementally and when to solve fully.

Both paths produce ``==``-identical answers (the trace replay falls back
to a full solve whenever it cannot *prove* a step still wins), so the
policy is purely a latency/staleness trade: patching is ~an order of
magnitude cheaper per event, but every replayed step loosens the recorded
bounds a little, making future replays more likely to fall back — a
periodic full solve re-tightens them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

RESOLVE_MODES = ("auto", "patch", "full")


@dataclass(frozen=True)
class ResolvePolicy:
    """Decides, per event, between incremental patching and a full solve.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) patches when the change looks small and the
        staleness budget allows; ``"patch"`` always tries the replay
        (still falling back when it cannot prove exactness); ``"full"``
        always re-solves.
    full_every:
        In ``"auto"`` mode, force a full solve on every Nth event
        (re-tightening the trace bounds). ``0`` disables the cadence.
    max_changed_fraction:
        In ``"auto"`` mode, events whose changed-column set exceeds this
        fraction of all models go straight to a full solve (a wide region
        makes replay acceptance unlikely and region scans expensive).

    Capacity changes always trigger a full solve regardless of mode: the
    replay's acceptance proofs require the fit masks to evolve exactly as
    recorded, which a capacity shift breaks globally.
    """

    mode: str = "auto"
    full_every: int = 0
    max_changed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in RESOLVE_MODES:
            raise ServeError(
                f"policy mode must be one of {RESOLVE_MODES}, got {self.mode!r}"
            )
        if self.full_every < 0:
            raise ServeError("full_every must be >= 0")
        if not 0.0 < self.max_changed_fraction <= 1.0:
            raise ServeError("max_changed_fraction must be in (0, 1]")

    def choose(
        self,
        event_index: int,
        num_changed_columns: int,
        num_models: int,
        capacity_changed: bool,
    ) -> str:
        """``"patch"`` or ``"full"`` for the event at ``event_index``."""
        if capacity_changed or self.mode == "full":
            return "full"
        if self.mode == "patch":
            return "patch"
        if self.full_every and (event_index + 1) % self.full_every == 0:
            return "full"
        if num_changed_columns > self.max_changed_fraction * num_models:
            return "full"
        return "patch"
