"""Warm re-solve engines for the serving layer.

The repo invariant — serve answers must be ``==``-identical to solving the
mutated scenario from scratch — rules out approximate patching. Instead,
the service records a *trace* of the greedy solve (one
:class:`TraceStep` per placement: the chosen flat index, its exact masked
value, an upper bound on every other pair's masked value, and the bytes
consumed) and, after an event that only touched demand columns ``C``,
*replays* the trace:

* a step whose chosen pair lies **outside** ``C`` is re-accepted when the
  best value inside the changed region stays below the step's recorded
  value (or ties and loses the row-major tie-break) — everything outside
  the region is untouched, so the original argmax still wins;
* a step whose chosen pair lies **inside** ``C`` is re-accepted when it is
  still the region's best and strictly beats the recorded bound on the
  rest of the matrix;
* anything inconclusive falls back to :func:`full_solve` — a fresh
  recorded greedy over a clone of the resident base tracker, which is
  trivially exact.

Accepted steps replay their exact side effects (block-cache add, capacity
decrement, column-kernel mark on changed columns), so after a fully
accepted trace the tracker state *is* the from-scratch greedy's state bit
for bit, and the greedy simply continues from there to pick up any new
placements the mutation enabled. Exactness is enforced by the pinned
equivalence suite in ``tests/serve/``; :func:`resolve_from_scratch` is the
reference it compares against (it re-derives feasibility, instance and
solve per event, sharing the instance mutators so the demand bits match).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.blockmask import ServerBlockCache
from repro.core.independent import IndependentCaching
from repro.core.gen import TrimCachingGen
from repro.core.objective import CoverageTracker, hit_ratio
from repro.core.placement import Placement, PlacementInstance
from repro.errors import ServeError
from repro.network.latency import LatencyModel
from repro.serve.events import Event, apply_event

#: Solvers the serving layer supports: the greedy pair solvers that run on
#: the maintained CoverageTracker gain matrix. ("gen" = deduplicated
#: storage via ServerBlockCache; "independent" = full model sizes.)
SERVE_SOLVERS = ("gen", "independent")

#: Tracker engines whose gain bits the trace replay may compare against a
#: recorded value. "compiled" is excluded: its jitted dense kernel is only
#: placement-level pinned (ulp caveat), which would break `==` replay.
SERVE_ENGINES = ("dense", "sparse")


@dataclass(frozen=True)
class TraceStep:
    """One accepted greedy placement, with enough to re-justify it.

    ``value`` is the chosen pair's *exact* masked value at selection time
    (kept exact across replays); ``bound`` upper-bounds every **other**
    pair's masked value at that moment, with the invariant that any pair
    attaining ``bound`` exactly has flat index ``>= runner`` — that second
    half is what lets the replay re-accept exact gain ties, which are
    common (servers covering identical user sets tie bit-for-bit).
    ``extra`` is the bytes the step consumed.
    """

    flat: int
    value: float
    bound: float
    runner: int
    extra: int


@dataclass
class SolveState:
    """Resident solution state: the placement plus everything needed to
    replay or extend its greedy trace.

    ``extras_log`` (dedup only) snapshots the marginal-size table *before*
    each step. Storage accounting is demand-independent — the table's
    evolution depends only on the placed-pair sequence — so as long as a
    replay re-accepts the same prefix, these snapshots are bit-exact and
    the replay never has to re-run the block-cache updates.
    """

    placement: Placement
    tracker: CoverageTracker  # post-solve tracker (marks applied)
    steps: List[TraceStep]
    remaining: np.ndarray  # (M, 1) int64 remaining bytes per server
    cache: Optional[ServerBlockCache]  # dedup storage table (gen only)
    hit_ratio: float
    extras_log: Optional[List[np.ndarray]] = None  # per-step (M, I) int64


def _final_hit_ratio(
    instance: PlacementInstance,
    tracker: CoverageTracker,
    placement: Placement,
    dedup: bool,
) -> float:
    # Mirror each solver's own computation so serve answers are `==` to
    # SolverResult.hit_ratio: Gen reads the tracker, Independent
    # recomputes from the placement.
    if dedup:
        return tracker.hit_ratio()
    return hit_ratio(instance, placement)


def _greedy_record(
    instance: PlacementInstance,
    tracker: CoverageTracker,
    cache: Optional[ServerBlockCache],
    remaining: np.ndarray,
    placement: Placement,
    steps: List[TraceStep],
    extras_log: Optional[List[np.ndarray]] = None,
) -> None:
    """The solvers' masked-argmax greedy loop, recording each step.

    Byte-identical control flow to ``TrimCachingGen._solve_vectorized``
    (``cache`` set) / ``IndependentCaching.solve`` (``cache`` None): same
    masked candidate matrix, same ``np.argmax`` first-maximiser tie-break,
    same stop test. The only additions are reads: the chosen value and the
    second-best masked value (the recorded bound).
    """
    gains = tracker.gain_matrix_view()
    sizes = instance.model_sizes
    placed = placement.matrix
    num_models = instance.num_models
    extras = (
        cache.extras
        if cache is not None
        else np.broadcast_to(sizes, (instance.num_servers, num_models))
    )
    # The masked candidate matrix `where(fit, gains, -1)` is maintained
    # incrementally: a placement at (s, m) only changes column m (the
    # kernel mark), row s of the extras (dedup marginals), and row s of
    # `remaining` — every other entry is bit-identical to a full rebuild,
    # so argmax (and its first-maximiser tie-break) is unaffected.
    values = np.where(extras <= remaining, gains, -1.0)
    values_flat = values.reshape(-1)  # contiguous view: writes pass through
    while True:
        flat = int(values.argmax())
        server, model_index = divmod(flat, num_models)
        if (
            gains[server, model_index] <= 0.0
            or extras[server, model_index] > remaining[server, 0]
        ):
            break
        chosen = float(values_flat[flat])
        values_flat[flat] = -np.inf
        runner = int(values.argmax())
        bound = float(values_flat[runner])
        placed[server, model_index] = True
        if cache is not None:
            if extras_log is not None:
                extras_log.append(extras.copy())
            extra = cache.add(server, model_index)
        else:
            extra = int(sizes[model_index])
        remaining[server, 0] -= extra
        tracker.mark_served(server, model_index)
        steps.append(TraceStep(flat, chosen, bound, runner, extra))
        # Refresh the touched column and row (this also overwrites the
        # -inf poked in at `flat` for the runner-up scan).
        values[:, model_index] = np.where(
            extras[:, model_index] <= remaining[:, 0],
            gains[:, model_index],
            -1.0,
        )
        values[server, :] = np.where(
            extras[server, :] <= remaining[server, 0],
            gains[server, :],
            -1.0,
        )


def recorded_solve(
    instance: PlacementInstance, tracker: CoverageTracker, dedup: bool
) -> SolveState:
    """A full greedy solve that also records its trace.

    ``tracker`` must be unmarked (fresh or a clone of the resident base
    tracker); it is consumed — marks are applied in place.
    """
    placement = instance.new_placement()
    cache = (
        ServerBlockCache(instance.block_index, instance.num_servers)
        if dedup
        else None
    )
    remaining = instance.capacities.astype(np.int64)[:, None].copy()
    steps: List[TraceStep] = []
    extras_log: Optional[List[np.ndarray]] = [] if dedup else None
    _greedy_record(
        instance, tracker, cache, remaining, placement, steps, extras_log
    )
    return SolveState(
        placement=placement,
        tracker=tracker,
        steps=steps,
        remaining=remaining,
        cache=cache,
        hit_ratio=_final_hit_ratio(instance, tracker, placement, dedup),
        extras_log=extras_log,
    )


def full_solve(
    instance: PlacementInstance, base_tracker: CoverageTracker, dedup: bool
) -> SolveState:
    """Warm full re-solve: fresh greedy over a clone of the base tracker.

    The base tracker is kept in sync with the instance's demand (column
    refreshes per event), so its clone equals a fresh
    ``CoverageTracker(instance)`` bit for bit — this is exactly solving
    the mutated scenario, minus the feasibility rebuild.
    """
    return recorded_solve(instance, base_tracker.clone(), dedup)


def patch_solve(
    instance: PlacementInstance,
    base_tracker: CoverageTracker,
    prev: SolveState,
    changed_columns: np.ndarray,
    dedup: bool,
) -> Tuple[SolveState, dict]:
    """Incremental re-solve after a demand change in ``changed_columns``.

    Replays the previous solve's trace, re-deciding each step from the
    changed region only (see module docstring); any inconclusive step
    falls back to :func:`full_solve`. The returned state is ``==`` to a
    from-scratch solve of the mutated instance in either mode; the info
    dict reports which path ran (``mode``: ``"replay"`` | ``"fallback"``)
    and how much of the trace survived.
    """
    columns = np.asarray(changed_columns, dtype=np.intp)
    if columns.size == 0:
        raise ServeError("patch_solve requires at least one changed column")
    if columns.size > 1 and np.any(np.diff(columns) <= 0):
        # The instance mutators already return sorted-unique columns; only
        # pay for np.unique when a caller hands us something else.
        columns = np.unique(columns)
    num_models = instance.num_models
    num_servers = instance.num_servers
    in_region = np.zeros(num_models, dtype=bool)
    in_region[columns] = True

    # Full clone of the (already refreshed) base tracker. Only the changed
    # columns are read or marked during replay — the others are stale
    # mid-replay but never consulted. They are reconciled at the end:
    # composed from the previous solve's tracker when the whole trace is
    # re-accepted (their demand did not change, so the old marks produced
    # the identical state), or promoted by applying the accepted prefix's
    # out-of-region marks when the replay stops early (column marks are
    # order-independent: the final column state depends only on the set
    # of marked pairs).
    clone = base_tracker.clone()
    gains = clone.gain_matrix_view()
    sizes = instance.model_sizes
    remaining = instance.capacities.astype(np.int64)[:, None].copy()
    placement = instance.new_placement()
    placed = placement.matrix

    # The region candidate matrix `where(fit, gains, -1)[:, columns]` is
    # maintained incrementally across replayed steps: accepting a step at
    # (s, m) only changes gains column m (when marked), extras row s
    # (dedup marginals) and remaining[s] — every other region entry is
    # bit-identical to a rebuild, so the argmax scan (and its row-major
    # first-maximiser tie-break over the sorted columns) is unaffected.
    #
    # The extras come from the previous solve's per-step snapshots, not a
    # live block cache: the replayed prefix is the previous solve's pair
    # sequence, and storage accounting is demand-independent, so the
    # table evolves exactly as recorded. The cache itself is only
    # (re)built on the paths that need one going forward.
    num_cols = columns.size
    flat_columns = [int(column) for column in columns]
    col_of = np.full(num_models, -1, dtype=np.intp)
    col_of[columns] = np.arange(num_cols)
    num_steps = len(prev.steps)
    log = prev.extras_log if dedup else None
    if dedup:
        region_sizes = None
        values = (
            np.where(
                log[0][:, columns] <= remaining, gains[:, columns], -1.0
            )
            if num_steps
            else None
        )
    else:
        region_sizes = sizes[columns]
        values = np.where(region_sizes <= remaining, gains[:, columns], -1.0)

    new_steps: List[TraceStep] = []
    truncated = False
    diverged = False
    # C-contiguous view for cheap flat reads/writes in the hot loop
    # (np.where output is contiguous; row/column assignments write
    # through, so the view stays current).
    values_flat = values.reshape(-1) if values is not None else None
    # Contiguous mirror of gains[:, columns], kept in sync on in-region
    # marks — the per-step row refresh reads a contiguous row instead of
    # fancy-gathering from the full gain matrix.
    region_gains = (
        np.ascontiguousarray(gains[:, columns]) if values is not None else None
    )
    for index, step in enumerate(prev.steps):
        region_pos = int(values.argmax())
        region_value = values_flat[region_pos]
        flat = step.flat
        server, model_index = divmod(flat, num_models)
        if not in_region[model_index]:
            # Everything outside the region kept its masked value, so the
            # old argmax still wins iff the region's new best does not
            # overtake it (ties break row-major: lower flat index wins).
            # Fast path: strictly below the recorded bound (hence below
            # step.value too, since bound <= value is maintained) — the
            # step survives with bound and runner untouched.
            if region_value < step.bound:
                accepted = step
            else:
                region_row, region_col = divmod(region_pos, num_cols)
                region_flat = region_row * num_models + flat_columns[region_col]
                if region_value < step.value or (
                    region_value == step.value and flat < region_flat
                ):
                    if region_value > step.bound:
                        bound, runner = float(region_value), region_flat
                    else:  # == step.bound exactly
                        bound = step.bound
                        runner = min(step.runner, region_flat)
                    accepted = TraceStep(
                        flat, step.value, bound, runner, step.extra
                    )
                else:
                    diverged = True
                    break
        else:
            region_row, region_col = divmod(region_pos, num_cols)
            region_flat = region_row * num_models + flat_columns[region_col]
            stronger = region_value > step.bound or (
                region_value == step.bound and flat < step.runner
            )
            if region_flat == flat and region_value > 0.0 and stronger:
                # Still the region's first maximiser, and it beats every
                # pair outside the region too: strictly above the
                # recorded bound, or tying it while every possible
                # attainer sits at a higher flat index.
                # The -inf poked in here is overwritten by the column
                # refresh below (the chosen pair's column is the marked
                # one), so the maintained matrix stays exact.
                region_value = float(region_value)
                values_flat[region_pos] = -np.inf
                second_pos = int(values.argmax())
                second = float(values_flat[second_pos])
                second_row, second_col = divmod(second_pos, num_cols)
                second_flat = second_row * num_models + flat_columns[second_col]
                if second > step.bound:
                    bound, runner = second, second_flat
                elif second == step.bound:
                    bound, runner = step.bound, min(step.runner, second_flat)
                else:
                    bound, runner = step.bound, step.runner
                accepted = TraceStep(
                    flat, region_value, bound, runner, step.extra
                )
            elif region_value <= 0.0 and step.bound <= 0.0:
                # No masked value anywhere is positive any more: the
                # from-scratch greedy stops exactly here.
                truncated = True
                break
            else:
                diverged = True
                break

        # Side effects of accepting the step. The bytes consumed and the
        # marginal-size table are demand-independent functions of the
        # pair sequence — identical to the previous solve's, so the
        # recorded `extra` and the logged post-step extras are exact.
        placed[server, model_index] = True
        remaining[server, 0] -= step.extra
        post = (
            (prev.cache.extras if index + 1 == num_steps else log[index + 1])
            if dedup
            else None
        )
        if in_region[model_index]:
            clone.mark_served(server, model_index)
            cidx = int(col_of[model_index])
            region_gains[:, cidx] = gains[:, model_index]
            values[:, cidx] = np.where(
                (post[:, model_index] if dedup else sizes[model_index])
                <= remaining[:, 0],
                gains[:, model_index],
                -1.0,
            )
        values[server, :] = np.where(
            (post[server, columns] if dedup else region_sizes)
            <= remaining[server, 0],
            region_gains[server],
            -1.0,
        )
        new_steps.append(accepted)

    reused = len(new_steps)
    if truncated or diverged:
        # Promote the replay clone to the full prefix state: apply the
        # accepted prefix's out-of-region marks (in-region ones were
        # applied during replay); bulk_mark runs one kernel per touched
        # column. Order does not matter — each column's final state
        # depends only on which pairs were marked.
        clone.bulk_mark(
            divmod(step.flat, num_models)
            for step in new_steps
            if not in_region[step.flat % num_models]
        )
        tracker = clone
        if dedup:
            # Rebuild the storage state of the accepted prefix (only now:
            # the happy path never needs a live cache during replay).
            cache = ServerBlockCache(instance.block_index, num_servers)
            for step in new_steps:
                cache.add(*divmod(step.flat, num_models))
        else:
            cache = None
    else:
        # Whole trace re-accepted: compose the final tracker from two
        # exactly-maintained halves — unchanged columns evolved exactly
        # as in the previous solve (same marks, same demand), changed
        # columns were maintained on the replay clone. ``prev`` is
        # superseded by the returned state and never consulted again, so
        # its tracker is adopted in place (no copy) and the previous
        # solve's cache — exactly the replayed prefix's storage state —
        # carries over along with its snapshots.
        tracker = prev.tracker
        tracker.adopt_columns(clone, columns)
        cache = prev.cache

    extras_log = (log[:reused] if dedup else None)
    if diverged:
        # The greedy genuinely (or unprovably) departs from the old trace
        # here. Run the solvers' own loop from the exact prefix state —
        # it re-records exact values and bounds, re-tightening the tail.
        _greedy_record(
            instance, tracker, cache, remaining, placement, new_steps, extras_log
        )
        mode = "fallback"
    elif truncated:
        mode = "replay"
    else:
        # The mutation (or storage freed) may admit further placements:
        # continue the greedy over the full matrix — fit flips outside
        # the region are picked up here.
        _greedy_record(
            instance, tracker, cache, remaining, placement, new_steps, extras_log
        )
        mode = "replay"

    state = SolveState(
        placement=placement,
        tracker=tracker,
        steps=new_steps,
        remaining=remaining,
        cache=cache,
        hit_ratio=_final_hit_ratio(instance, tracker, placement, dedup),
        extras_log=extras_log,
    )
    return state, {
        "mode": mode,
        "reused_steps": reused,
        "extended_steps": len(new_steps) - reused,
        "truncated": truncated,
    }


def _solver_for(solver: str, engine: str):
    if solver == "gen":
        return TrimCachingGen(accelerated=True, fill_zero_gain=False, engine=engine)
    if solver == "independent":
        return IndependentCaching(engine=engine)
    raise ServeError(
        f"serving supports solvers {SERVE_SOLVERS}, got {solver!r}"
    )


@dataclass
class ScratchRecord:
    """One from-scratch reference solve (see :func:`resolve_from_scratch`)."""

    placement: Placement
    hit_ratio: float
    seconds: float
    changed_columns: int
    capacity_changed: bool


def resolve_from_scratch(
    scenario,
    events,
    solver: str = "gen",
    engine: str = "dense",
) -> List[ScratchRecord]:
    """The stateless reference: after each event, solve the mutated
    scenario from scratch (feasibility rebuild + fresh instance + solve).

    Events mutate a private carrier instance through the same
    :class:`PlacementInstance` mutators the service uses, so the demand
    and capacity arrays match the resident path bit for bit. ``seconds``
    times the full stateless path (what a server without resident state
    would pay per event) — the serve benchmark's baseline.
    """
    if solver not in SERVE_SOLVERS:
        raise ServeError(
            f"serving supports solvers {SERVE_SOLVERS}, got {solver!r}"
        )
    if engine not in SERVE_ENGINES:
        raise ServeError(
            f"serving supports engines {SERVE_ENGINES}, got {engine!r}"
        )
    source = scenario.instance
    carrier = PlacementInstance(
        library=scenario.library,
        demand=scenario.demand.copy(),
        feasible=source.sparse_feasible,
        capacities=np.asarray(source.capacities, dtype=np.int64).copy(),
    )
    original_demand = scenario.demand.copy()
    model_sizes = np.array(
        [scenario.library.model_size(i) for i in scenario.library.model_ids],
        dtype=float,
    )
    algorithm = _solver_for(solver, engine)
    records: List[ScratchRecord] = []
    for event in events:
        changed, capacity_changed = apply_event(carrier, event, original_demand)
        start = time.perf_counter()
        latency = LatencyModel(scenario.topology, model_sizes)
        instance = PlacementInstance(
            library=scenario.library,
            demand=carrier.demand.copy(),
            feasible=latency.feasibility_sparse(),
            capacities=carrier.capacities.copy(),
        )
        result = algorithm.solve(instance)
        records.append(
            ScratchRecord(
                placement=result.placement,
                hit_ratio=result.hit_ratio,
                seconds=time.perf_counter() - start,
                changed_columns=int(changed.size),
                capacity_changed=capacity_changed,
            )
        )
    return records
