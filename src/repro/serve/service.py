"""The resident placement service and its Python session API.

:class:`PlacementService` solves a scenario once and then stays warm: the
:class:`~repro.core.objective.CoverageTracker` base state, the CSR
feasibility artifact, the solved placement and its greedy trace all stay
resident, so processing an event costs a few column refreshes plus a
trace replay (or, when the :class:`~repro.serve.policy.ResolvePolicy`
says so, a warm full solve) instead of a stateless rebuild. Every answer
is ``==``-identical to solving the mutated scenario from scratch — the
pinned equivalence suite in ``tests/serve/`` enforces it.

:class:`ServiceSession` is the ergonomic front end (one method per event
kind); :mod:`repro.serve.http` exposes the same service over stdlib HTTP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.objective import CoverageTracker
from repro.core.placement import PlacementInstance
from repro.errors import ServeError
from repro.serve.events import Event, apply_event
from repro.serve.policy import ResolvePolicy
from repro.serve.resolver import (
    SERVE_ENGINES,
    SERVE_SOLVERS,
    SolveState,
    full_solve,
    patch_solve,
    recorded_solve,
)


@dataclass(frozen=True)
class EventResult:
    """Outcome of one processed event.

    ``action`` is the policy's decision (``"patch"`` | ``"full"`` |
    ``"noop"``); ``mode`` is what actually ran (``"replay"``,
    ``"fallback"`` — a patch that could not prove exactness and
    re-solved, ``"full"``, or ``"noop"``).
    """

    event: Event
    action: str
    mode: str
    hit_ratio: float
    latency_s: float
    changed_columns: int
    reused_steps: int
    extended_steps: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by the HTTP transport)."""
        return {
            "event": self.event.to_dict(),
            "action": self.action,
            "mode": self.mode,
            "hit_ratio": self.hit_ratio,
            "latency_s": self.latency_s,
            "changed_columns": self.changed_columns,
            "reused_steps": self.reused_steps,
            "extended_steps": self.extended_steps,
        }


@dataclass(frozen=True)
class RouteResult:
    """Answer to ``route(user, model)``: the serving server, if any.

    Among the feasible servers currently caching the model, the lowest
    index is reported (servers are equivalent under the objective — any
    feasible cached copy serves the request within its deadline — so the
    choice is a deterministic convention, not a latency optimisation).
    """

    user: int
    model: int
    server: Optional[int]
    hit: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload."""
        return {
            "user": self.user,
            "model": self.model,
            "server": self.server,
            "hit": self.hit,
        }


class PlacementService:
    """A long-lived solver: one scenario, resident state, an event stream.

    Parameters
    ----------
    scenario:
        The :class:`~repro.sim.scenario.Scenario` to serve. The service
        takes private copies of the demand and capacity arrays (events
        never mutate the scenario) and shares the immutable CSR
        feasibility artifact.
    solver:
        ``"gen"`` (deduplicated storage, the paper's Algorithm 3) or
        ``"independent"`` (knapsack storage baseline).
    engine:
        Tracker engine, ``"dense"`` or ``"sparse"``. (``"compiled"`` is
        not served: its gains are only placement-level pinned, which
        would break the replay's exact value comparisons.)
    policy:
        The :class:`ResolvePolicy`; default ``ResolvePolicy()`` (auto).
    """

    def __init__(
        self,
        scenario,
        solver: str = "gen",
        engine: str = "dense",
        policy: Optional[ResolvePolicy] = None,
    ) -> None:
        if solver not in SERVE_SOLVERS:
            raise ServeError(
                f"serving supports solvers {SERVE_SOLVERS}, got {solver!r}"
            )
        if engine not in SERVE_ENGINES:
            raise ServeError(
                f"serving supports engines {SERVE_ENGINES}, got {engine!r}"
            )
        self.scenario = scenario
        self.solver = solver
        self.engine = engine
        self.policy = policy or ResolvePolicy()
        self.dedup = solver == "gen"
        source = scenario.instance
        # Private copies: the instance constructor shares float/int64
        # arrays it is given, and events mutate them in place.
        self.instance = PlacementInstance(
            library=scenario.library,
            demand=scenario.demand.copy(),
            feasible=source.sparse_feasible,
            capacities=np.asarray(source.capacities, dtype=np.int64).copy(),
        )
        self._original_demand = scenario.demand.copy()
        # Unmarked tracker, kept in sync with the instance's demand by
        # column refreshes after every mutation — a clone of it always
        # equals a fresh CoverageTracker(instance) bit for bit.
        self.base_tracker = CoverageTracker(self.instance, engine=engine)
        if engine == "sparse":
            # Force the CSR bundle's lazily cached derived indices now so
            # the first event does not pay their construction cost.
            sparse = self.instance.sparse_feasible
            sparse.entry_flat_index()
            sparse.entry_pair_index()
            sparse.user_view()
        start = time.perf_counter()
        self.state: SolveState = recorded_solve(
            self.instance, self.base_tracker.clone(), self.dedup
        )
        self.initial_solve_s = time.perf_counter() - start
        self.events_processed = 0
        self.hit_ratios: List[float] = [self.state.hit_ratio]
        self.counters: Dict[str, int] = {
            "replay": 0,
            "fallback": 0,
            "full": 0,
            "noop": 0,
        }

    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """The current placement's hit ratio."""
        return self.state.hit_ratio

    def route(self, user: int, model: int) -> RouteResult:
        """Which server serves ``user``'s request for ``model`` now?"""
        instance = self.instance
        if not 0 <= user < instance.num_users:
            raise ServeError(f"user {user} out of range [0, {instance.num_users})")
        if not 0 <= model < instance.num_models:
            raise ServeError(
                f"model {model} out of range [0, {instance.num_models})"
            )
        indptr, user_models, user_servers = (
            instance.sparse_feasible.user_view()
        )
        span = slice(int(indptr[user]), int(indptr[user + 1]))
        mask = user_models[span] == model
        servers = user_servers[span][mask]
        if servers.size:
            cached = servers[self.state.placement.matrix[servers, model]]
            if cached.size:
                # Entries are sorted by (user, model, server): first hit
                # is the lowest feasible caching server.
                return RouteResult(user, model, int(cached[0]), True)
        return RouteResult(user, model, None, False)

    def status(self) -> Dict[str, object]:
        """JSON-ready service summary."""
        instance = self.instance
        return {
            "solver": self.solver,
            "engine": self.engine,
            "policy": {
                "mode": self.policy.mode,
                "full_every": self.policy.full_every,
                "max_changed_fraction": self.policy.max_changed_fraction,
            },
            "num_servers": instance.num_servers,
            "num_users": instance.num_users,
            "num_models": instance.num_models,
            "hit_ratio": self.state.hit_ratio,
            "placements": self.state.placement.total_placements(),
            "events_processed": self.events_processed,
            "counters": dict(self.counters),
            "initial_solve_s": self.initial_solve_s,
        }

    def stats(self) -> Dict[str, int]:
        """Re-solve counters plus the event total, JSON-ready.

        The focused view of :meth:`status`'s ``counters`` block: how
        many events were absorbed by trace replay, fell back to a fresh
        greedy pass, forced a policy-mandated full solve, or touched
        nothing — the numbers an operator watches to tell whether the
        incremental path is actually carrying the load.

        Counters are cumulative for the life of the service and are
        **never reset** — not by a ``full_every``-mandated full solve,
        not by a fallback; each event increments exactly one of them, so
        their sum always equals ``events_processed``. The same numbers
        are exported in Prometheus text format by the HTTP transport's
        ``/metrics`` endpoint (:func:`repro.serve.http.metrics_exposition`)
        as ``repro_serve_resolves_total{mode=...}``.
        """
        return {
            **self.counters,
            "events_processed": self.events_processed,
        }

    def placement_dict(self) -> Dict[str, object]:
        """JSON-ready placement: model indices per server."""
        placement = self.state.placement
        return {
            "hit_ratio": self.state.hit_ratio,
            "servers": {
                str(server): placement.models_on(server)
                for server in range(placement.num_servers)
            },
        }

    # ------------------------------------------------------------------
    def process(self, event: Event) -> EventResult:
        """Apply one event and re-solve (patch or full, per policy)."""
        from repro import obs

        start = time.perf_counter()
        with obs.span("serve.event", kind=event.kind) as span:
            changed, capacity_changed = apply_event(
                self.instance, event, self._original_demand
            )
            if changed.size:
                # User events touch a single demand row; telling the
                # tracker lets it restrict the weighted resync to that row
                # (the gain kernel still re-runs on the whole column —
                # exact either way).
                with obs.span("serve.refresh", columns=int(changed.size)):
                    self.base_tracker.refresh_columns(
                        changed,
                        user=event.user
                        if event.kind in ("user_arrive", "user_depart")
                        else None,
                    )
            if changed.size == 0 and not capacity_changed:
                action = mode = "noop"
                reused = extended = 0
            else:
                action = self.policy.choose(
                    self.events_processed,
                    int(changed.size),
                    self.instance.num_models,
                    capacity_changed,
                )
                if action == "full":
                    with obs.span("serve.full_solve"):
                        self.state = full_solve(
                            self.instance, self.base_tracker, self.dedup
                        )
                    mode = "full"
                    reused, extended = 0, len(self.state.steps)
                else:
                    with obs.span("serve.patch_solve"):
                        self.state, info = patch_solve(
                            self.instance,
                            self.base_tracker,
                            self.state,
                            changed,
                            self.dedup,
                        )
                    mode = str(info["mode"])
                    reused = int(info["reused_steps"])
                    extended = int(info["extended_steps"])
            span["mode"] = mode
        self.counters[mode] += 1
        self.events_processed += 1
        self.hit_ratios.append(self.state.hit_ratio)
        latency_s = time.perf_counter() - start
        obs.observe("repro_serve_event_seconds", latency_s, mode=mode)
        obs.count("repro_serve_events_total", 1, mode=mode)
        return EventResult(
            event=event,
            action=action,
            mode=mode,
            hit_ratio=self.state.hit_ratio,
            latency_s=latency_s,
            changed_columns=int(changed.size),
            reused_steps=reused,
            extended_steps=extended,
        )

    def process_trace(self, trace) -> List[EventResult]:
        """Apply a whole :class:`EventTrace` (or iterable of events)."""
        return [self.process(event) for event in trace]


class ServiceSession:
    """Ergonomic Python front end: one method per event kind.

    >>> session = ServiceSession(scenario)
    >>> session.depart(3).hit_ratio
    >>> session.route(5, 2).server
    """

    def __init__(
        self,
        scenario,
        solver: str = "gen",
        engine: str = "dense",
        policy: Optional[ResolvePolicy] = None,
    ) -> None:
        self.service = PlacementService(
            scenario, solver=solver, engine=engine, policy=policy
        )

    @property
    def hit_ratio(self) -> float:
        """The current placement's hit ratio."""
        return self.service.hit_ratio

    def arrive(self, user: int) -> EventResult:
        """A departed user re-arrives (original demand row restored)."""
        return self.service.process(Event(kind="user_arrive", user=user))

    def depart(self, user: int) -> EventResult:
        """A user departs (demand row zeroed)."""
        return self.service.process(Event(kind="user_depart", user=user))

    def set_capacity(self, server: int, capacity_bytes: int) -> EventResult:
        """Step one server's capacity to an absolute byte count."""
        return self.service.process(
            Event(
                kind="capacity_change",
                server=server,
                capacity_bytes=capacity_bytes,
            )
        )

    def scale_popularity(self, model: int, factor: float) -> EventResult:
        """Scale one model's demand column by ``factor``."""
        return self.service.process(
            Event(kind="popularity_update", model=model, factor=factor)
        )

    def apply(self, trace) -> List[EventResult]:
        """Apply an :class:`EventTrace` (or any iterable of events)."""
        return self.service.process_trace(trace)

    def route(self, user: int, model: int) -> RouteResult:
        """Which server serves this (user, model) request now?"""
        return self.service.route(user, model)

    def status(self) -> Dict[str, object]:
        """Service summary (see :meth:`PlacementService.status`)."""
        return self.service.status()

    def stats(self) -> Dict[str, int]:
        """Re-solve counters (see :meth:`PlacementService.stats`)."""
        return self.service.stats()
