"""Simulation harness: scenario assembly, evaluation, experiments.

Builds §VII-A scenarios (topology + library + demand + QoS), evaluates
placements under expected rates and Rayleigh-fading Monte Carlo, runs
multi-topology sweeps, and exposes one entry point per paper figure/table.
"""

from repro.sim.config import ScenarioConfig
from repro.sim.evaluator import PlacementEvaluator
from repro.sim.latency_report import LatencyAnalyzer, LatencyReport
from repro.sim.mobility_eval import MobilityStudy
from repro.sim.replacement import ReplacementPolicy, ReplacementTrace
from repro.sim.request_sim import RequestLog, RequestSimulator
from repro.sim.runner import (
    AlgorithmComparison,
    ExperimentResult,
    Fig7Result,
    ReplacementAblation,
    SweepRunner,
)
from repro.sim.scenario import Scenario, build_scenario

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "PlacementEvaluator",
    "MobilityStudy",
    "SweepRunner",
    "ExperimentResult",
    "AlgorithmComparison",
    "Fig7Result",
    "ReplacementAblation",
    "ReplacementPolicy",
    "ReplacementTrace",
    "LatencyAnalyzer",
    "LatencyReport",
    "RequestSimulator",
    "RequestLog",
]
