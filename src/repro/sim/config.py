"""Scenario configuration (paper §VII-A defaults).

Every number the paper states is a field with that value as default;
every number the paper leaves unstated is a clearly documented field so
sensitivity can be tested (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.units import GB, MHZ, dbm_to_watts
from repro.utils.validation import (
    check_in_range,
    check_interval,
    check_positive,
)


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of one simulated snapshot.

    Paper-stated defaults: 1 km² area, 275 m coverage, B = 400 MHz,
    P = 43 dBm, p_A = 0.5, 10 Gbps backhaul, γ0 = 1, α0 = 4, deadlines
    uniform in [0.5, 1] s, Zipf demand, Q identical across servers.

    Unstated (documented substitutions): thermal noise PSD, inference
    latency range, Zipf exponent, per-user popularity permutation.
    """

    # Scale
    num_servers: int = 10
    num_users: int = 30
    num_models: int = 30
    # Geometry
    area_side_m: float = 1000.0
    coverage_radius_m: float = 275.0
    # Radio
    total_bandwidth_hz: float = 400 * MHZ
    total_power_watts: float = dbm_to_watts(43.0)
    active_probability: float = 0.5
    antenna_gain: float = 1.0
    path_loss_exponent: float = 4.0
    backhaul_rate_bps: float = 10e9
    # Storage: identical per server by default (the paper's setting);
    # supply per-server overrides for heterogeneous deployments.
    storage_bytes: int = 1 * GB
    storage_bytes_per_server: Optional[Tuple[int, ...]] = None
    # QoS
    deadline_range_s: Tuple[float, float] = (0.5, 1.0)
    inference_latency_range_s: Tuple[float, float] = (0.05, 0.15)
    # Demand
    zipf_exponent: float = 0.8
    per_user_popularity: bool = True
    #: Each user requests a Zipf-weighted random subset of this many
    #: models (the paper's "I = 30" per-figure setting against its
    #: 300-model library). ``None`` = every user may request every model.
    requests_per_user: Optional[int] = None
    # Library
    library_case: str = "special"  # "special" | "general"
    #: Scenario RNG scheme. ``"v1"`` (default) is the seed's per-user
    #: Python draw order, preserved verbatim so default series stay
    #: ``==``-identical to the seed. ``"v2"`` draws the same
    #: distributions in batched numpy passes (one ``rng.permuted``/
    #: gather instead of K per-user calls) — statistically equivalent
    #: but a different stream layout, so it is opt-in and hashed into
    #: plan identities like any other config field.
    rng_scheme: str = "v1"
    #: User-block size for the chunked/streaming scenario pipeline.
    #: ``None`` (default) builds the whole population in one pass.
    #: When set, demand/QoS/geometry/feasibility are assembled in user
    #: blocks of this many rows and the per-user Python ``User`` objects
    #: are never materialised (they stay available lazily on the
    #: topology). Requires ``rng_scheme="v2"``: only the batched draw
    #: order makes a chunk a row range of the full draw, so the chunked
    #: build is bit-identical to the unchunked one for *any* chunk size
    #: — v1's per-user stream could never be split without changing
    #: results.
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("num_servers", self.num_servers)
        check_positive("num_users", self.num_users)
        check_positive("num_models", self.num_models)
        check_positive("area_side_m", self.area_side_m)
        check_positive("coverage_radius_m", self.coverage_radius_m)
        check_positive("total_bandwidth_hz", self.total_bandwidth_hz)
        check_positive("total_power_watts", self.total_power_watts)
        check_in_range("active_probability", self.active_probability, 0.0, 1.0)
        if self.active_probability == 0:
            raise ConfigurationError("active_probability must be positive")
        check_positive("antenna_gain", self.antenna_gain)
        check_positive("path_loss_exponent", self.path_loss_exponent)
        check_positive("backhaul_rate_bps", self.backhaul_rate_bps)
        check_positive("storage_bytes", self.storage_bytes, strict=False)
        if self.storage_bytes_per_server is not None:
            if len(self.storage_bytes_per_server) != self.num_servers:
                raise ConfigurationError(
                    "storage_bytes_per_server must list one capacity per server"
                )
            for value in self.storage_bytes_per_server:
                check_positive("storage_bytes_per_server entries", value, strict=False)
        check_interval("deadline_range_s", self.deadline_range_s)
        if self.deadline_range_s[0] <= 0:
            raise ConfigurationError("deadlines must be positive")
        check_interval("inference_latency_range_s", self.inference_latency_range_s)
        if self.inference_latency_range_s[0] < 0:
            raise ConfigurationError("inference latency must be non-negative")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")
        if self.requests_per_user is not None:
            check_positive("requests_per_user", self.requests_per_user)
            if self.requests_per_user > self.num_models:
                raise ConfigurationError(
                    "requests_per_user cannot exceed num_models"
                )
        if self.library_case not in ("special", "general"):
            raise ConfigurationError(
                f"library_case must be 'special' or 'general', got "
                f"{self.library_case!r}"
            )
        if self.rng_scheme not in ("v1", "v2"):
            raise ConfigurationError(
                f"rng_scheme must be 'v1' or 'v2', got {self.rng_scheme!r}"
            )
        if self.chunk_size is not None:
            check_positive("chunk_size", self.chunk_size)
            if self.rng_scheme != "v2":
                raise ConfigurationError(
                    "chunk_size requires rng_scheme='v2' (only the batched "
                    "draw order makes user-block chunking bit-identical; "
                    "the v1 per-user stream cannot be chunked without "
                    "changing results)"
                )

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """A JSON-ready description (tuples become lists)."""
        payload = {}
        for f in fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output (validated)."""
        field_names = {f.name for f in fields(cls)}
        unknown = set(payload) - field_names
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioConfig fields: {sorted(unknown)}"
            )
        kwargs = {}
        for f in fields(cls):
            if f.name not in payload:
                continue
            value = payload[f.name]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[f.name] = value
        return cls(**kwargs)
