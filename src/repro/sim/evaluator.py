"""Placement evaluation: expected hit ratio and Rayleigh Monte Carlo.

The paper decides placements from *average* channel gains but scores them
over >10³ Rayleigh-fading channel realisations per topology.
:class:`PlacementEvaluator` reproduces both: :meth:`expected_hit_ratio`
is the optimisation objective ``U(X)``; :meth:`monte_carlo_hit_ratio`
re-draws instantaneous rates per realisation, recomputes the feasibility
indicator, and averages the realised hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement
from repro.network.channel import ChannelModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import RunningStats


@dataclass
class MonteCarloResult:
    """Aggregate of a fading Monte-Carlo evaluation."""

    mean: float
    std: float
    num_realizations: int


class PlacementEvaluator:
    """Evaluate placements on one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def expected_hit_ratio(self, placement: Placement) -> float:
        """``U(X)`` under expected rates (the solver objective)."""
        return hit_ratio(self.scenario.instance, placement)

    def monte_carlo_hit_ratio(
        self,
        placement: Placement,
        num_realizations: int = 1000,
        seed: SeedLike = None,
    ) -> MonteCarloResult:
        """Average hit ratio over Rayleigh fading realisations.

        Each realisation draws i.i.d. ``|h|² ~ Exp(1)`` gains per
        (server, user) pair, recomputes instantaneous rates and the
        feasibility tensor, and scores the *fixed* placement against it.
        """
        if num_realizations < 1:
            raise ValueError("num_realizations must be at least 1")
        rng = as_generator(seed)
        topology = self.scenario.topology
        latency = self.scenario.latency_model
        instance = self.scenario.instance
        stats = RunningStats()
        shape = (topology.num_servers, topology.num_users)
        for _ in range(num_realizations):
            gains = ChannelModel.sample_rayleigh_gains(shape, rng)
            rates = topology.faded_rates(gains)
            feasible = latency.feasibility(rates)
            stats.add(hit_ratio(instance, placement, feasible))
        return MonteCarloResult(
            mean=stats.mean, std=stats.std, num_realizations=num_realizations
        )
