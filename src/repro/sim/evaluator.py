"""Placement evaluation: expected hit ratio and Rayleigh Monte Carlo.

The paper decides placements from *average* channel gains but scores them
over >10³ Rayleigh-fading channel realisations per topology.
:class:`PlacementEvaluator` reproduces both: :meth:`expected_hit_ratio`
is the optimisation objective ``U(X)``; :meth:`monte_carlo_hit_ratio`
re-draws instantaneous rates per realisation, recomputes the feasibility
indicator, and averages the realised hit ratio.

Per realisation the feasibility indicator is rebuilt as a
:class:`~repro.core.sparse.SparseFeasibility` CSR artifact by default
(``engine="sparse"``) and scored via the sparse ``served_matrix`` walk —
the dense ``(M, K, I)`` tensor is never materialised, dropping the
``O(M·K·I)`` inner loop per realisation. The CSR encodes the identical
indicator and the walk reproduces the dense einsum's booleans exactly,
so the realised hit ratios are **bit-identical** to ``engine="dense"``
(asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement
from repro.network.channel import ChannelModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import RunningStats


@dataclass
class MonteCarloResult:
    """Aggregate of a fading Monte-Carlo evaluation."""

    mean: float
    std: float
    num_realizations: int


@dataclass(frozen=True)
class EvalSpec:
    """Configuration of the stratified sampling evaluator.

    Attributes
    ----------
    sample_users:
        Total number of users to sample (across all strata).
    strata:
        Number of contiguous user-index strata; proportional allocation
        with at least two samples per stratum (variance needs two).
    seed:
        Sampling seed; the sweep runner defaults it to the scenario seed
        so repeated runs draw the same panel.
    z:
        Normal quantile of the reported confidence interval (1.96 = 95%).
    """

    sample_users: int
    strata: int = 4
    seed: Optional[int] = None
    z: float = 1.96

    def __post_init__(self) -> None:
        if self.strata < 1:
            raise ValueError(f"strata must be at least 1, got {self.strata}")
        if self.sample_users < 2 * self.strata:
            raise ValueError(
                f"sample_users must be at least 2 per stratum "
                f"({2 * self.strata}), got {self.sample_users}"
            )
        if self.z <= 0:
            raise ValueError(f"z must be positive, got {self.z}")


@dataclass
class SampledEvaluation:
    """A sampling estimate of the expected hit ratio, with its CI."""

    estimate: float
    ci_half_width: float
    sample_size: int
    strata: int

    @property
    def lower(self) -> float:
        """Lower CI bound."""
        return self.estimate - self.ci_half_width

    @property
    def upper(self) -> float:
        """Upper CI bound."""
        return self.estimate + self.ci_half_width

    def contains(self, value: float) -> bool:
        """Does the confidence interval cover ``value``?"""
        return self.lower <= value <= self.upper


@dataclass
class StreamingEvaluation:
    """Exact expected hit ratio computed in user blocks.

    ``per_user`` summarises the distribution of per-user hit masses
    (mean/std/min/max over the whole population), folded chunk by chunk.
    """

    hit_ratio: float
    per_user: RunningStats


class PlacementEvaluator:
    """Evaluate placements on one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def expected_hit_ratio(self, placement: Placement) -> float:
        """``U(X)`` under expected rates (the solver objective)."""
        return hit_ratio(self.scenario.instance, placement)

    def streaming_expected_hit_ratio(
        self, placement: Placement, chunk_size: Optional[int] = None
    ) -> StreamingEvaluation:
        """``U(X)`` folded over user blocks — temporaries stay O(chunk).

        Walks :meth:`SparseFeasibility.served_matrix_block` one block at
        a time and folds the per-user hit masses into a
        :class:`RunningStats`; the served scratch is ``(chunk, I)``
        instead of ``(K, I)``. The ratio equals
        :meth:`expected_hit_ratio` up to summation order (numerically
        close, not bit-equal — the blocks sum in a different order).
        ``chunk_size`` defaults to the scenario config's ``chunk_size``,
        or 65536 when the scenario was built unchunked.
        """
        if chunk_size is None:
            chunk_size = self.scenario.config.chunk_size or 65536
        if chunk_size < 1:
            raise ValueError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        instance = self.scenario.instance
        sparse = instance.sparse_feasible
        demand = instance.demand
        placement_matrix = placement.matrix
        num_users = self.scenario.num_users
        stats = RunningStats()
        total = 0.0
        for start in range(0, num_users, chunk_size):
            stop = min(start + chunk_size, num_users)
            served = sparse.served_matrix_block(placement_matrix, start, stop)
            masses = (demand[start:stop] * served).sum(axis=1)
            stats.add_array(masses)
            total += float(masses.sum())
        return StreamingEvaluation(
            hit_ratio=total / instance.total_demand, per_user=stats
        )

    def _user_hit_mass(
        self, placement_matrix: np.ndarray, user_indices: np.ndarray
    ) -> np.ndarray:
        """Exact hit mass ``Σ_i d_{k,i}·served(k,i)`` of selected users.

        A vectorised gather over the per-user CSR view: concatenate the
        chosen users' (model, server) runs, keep the placed entries, and
        reduce each user's *distinct* served models' demand — touching
        only the sampled rows, never a ``(K, I)`` matrix.
        """
        sparse = self.scenario.instance.sparse_feasible
        demand = self.scenario.instance.demand
        num_models = self.scenario.num_models
        user_indptr, user_models, user_servers = sparse.user_view()
        user_indices = np.asarray(user_indices, dtype=np.int64)
        counts = user_indptr[user_indices + 1] - user_indptr[user_indices]
        total = int(counts.sum())
        offsets = np.concatenate(([0], np.cumsum(counts)))
        flat = np.repeat(
            user_indptr[user_indices] - offsets[:-1], counts
        ) + np.arange(total, dtype=np.int64)
        owner = np.repeat(np.arange(user_indices.size, dtype=np.int64), counts)
        placed = placement_matrix[user_servers[flat], user_models[flat]]
        codes = owner * num_models + user_models[flat]
        served_codes = np.unique(codes[placed])
        if served_codes.size == 0:
            return np.zeros(user_indices.size)
        sampled_pos = served_codes // num_models
        sampled_model = served_codes % num_models
        return np.bincount(
            sampled_pos,
            weights=demand[user_indices[sampled_pos], sampled_model],
            minlength=user_indices.size,
        )

    def sampled_hit_ratio(
        self, placement: Placement, spec: EvalSpec
    ) -> SampledEvaluation:
        """Stratified sampling estimate of the expected hit ratio.

        Users are split into ``spec.strata`` contiguous index strata;
        each stratum contributes a without-replacement sample allocated
        proportionally (≥ 2 per stratum). The estimator is the standard
        stratified total ``Σ_h N_h·mean_h`` over per-user hit masses,
        normalised by the *exact* total demand, with the
        finite-population-corrected normal CI. Strata whose sample
        covers the whole stratum contribute zero variance.
        """
        num_users = self.scenario.num_users
        if spec.strata * 2 > num_users:
            raise ValueError(
                f"cannot allocate 2 samples to each of {spec.strata} "
                f"strata with only {num_users} users"
            )
        rng = as_generator(spec.seed)
        placement_matrix = placement.matrix
        total_demand = self.scenario.instance.total_demand
        strata = np.array_split(np.arange(num_users, dtype=np.int64), spec.strata)
        total_estimate = 0.0
        total_variance = 0.0
        sample_size = 0
        for stratum in strata:
            stratum_size = int(stratum.size)
            share = int(round(spec.sample_users * stratum_size / num_users))
            num_sampled = min(stratum_size, max(2, share))
            chosen = stratum[
                np.sort(
                    rng.choice(stratum_size, size=num_sampled, replace=False)
                )
            ]
            masses = self._user_hit_mass(placement_matrix, chosen)
            mean = float(masses.mean())
            total_estimate += stratum_size * mean
            if num_sampled < stratum_size:
                variance = float(masses.var(ddof=1))
                total_variance += (
                    stratum_size**2
                    * (1.0 - num_sampled / stratum_size)
                    * variance
                    / num_sampled
                )
            sample_size += num_sampled
        return SampledEvaluation(
            estimate=total_estimate / total_demand,
            ci_half_width=spec.z * float(np.sqrt(total_variance)) / total_demand,
            sample_size=sample_size,
            strata=spec.strata,
        )

    def monte_carlo_hit_ratio(
        self,
        placement: Placement,
        num_realizations: int = 1000,
        seed: SeedLike = None,
        engine: str = "sparse",
        use_order_hint: bool = True,
    ) -> MonteCarloResult:
        """Average hit ratio over Rayleigh fading realisations.

        Each realisation draws i.i.d. ``|h|² ~ Exp(1)`` gains per
        (server, user) pair, recomputes instantaneous rates and the
        feasibility indicator, and scores the *fixed* placement against
        it.

        ``engine="sparse"`` (default) rebuilds the indicator as a CSR
        artifact and walks only the placed pairs' user lists;
        ``engine="dense"`` materialises the ``(M, K, I)`` tensor per
        realisation (the pre-sparse path, kept for pinning). Both
        engines draw the same RNG stream and produce bit-identical
        realised hit ratios.

        ``use_order_hint`` (sparse engine only) seeds every
        realisation's per-user server sort with the topology's
        *expected* order — fading rarely upends the ranking, so the
        adaptive stable sort runs on nearly-sorted data, amortising the
        per-realisation argsort across the whole run. The hint cannot
        change a bit of the result (the sort is still an exact sort of
        the faded values); the flag exists for benchmarking the
        unhinted path.
        """
        if num_realizations < 1:
            raise ValueError("num_realizations must be at least 1")
        if engine not in ("sparse", "dense"):
            raise ValueError(
                f"engine must be 'sparse' or 'dense', got {engine!r}"
            )
        rng = as_generator(seed)
        topology = self.scenario.topology
        latency = self.scenario.latency_model
        instance = self.scenario.instance
        stats = RunningStats()
        shape = (topology.num_servers, topology.num_users)
        placement_matrix = placement.matrix
        total_demand = instance.total_demand
        hint = (
            latency.expected_server_order()
            if engine == "sparse" and use_order_hint
            else None
        )
        for _ in range(num_realizations):
            gains = ChannelModel.sample_rayleigh_gains(shape, rng)
            rates = topology.faded_rates(gains)
            if engine == "sparse":
                # Same elementwise feasibility arithmetic, CSR-shaped;
                # the sparse walk returns exactly the dense einsum's
                # booleans, so the realised ratio's bits match "dense".
                sparse = latency.feasibility_sparse(rates, server_order_hint=hint)
                served = sparse.served_matrix(placement_matrix)
                stats.add(
                    float((instance.demand * served).sum() / total_demand)
                )
            else:
                feasible = latency.feasibility(rates)
                stats.add(hit_ratio(instance, placement, feasible))
        return MonteCarloResult(
            mean=stats.mean, std=stats.std, num_realizations=num_realizations
        )
