"""Placement evaluation: expected hit ratio and Rayleigh Monte Carlo.

The paper decides placements from *average* channel gains but scores them
over >10³ Rayleigh-fading channel realisations per topology.
:class:`PlacementEvaluator` reproduces both: :meth:`expected_hit_ratio`
is the optimisation objective ``U(X)``; :meth:`monte_carlo_hit_ratio`
re-draws instantaneous rates per realisation, recomputes the feasibility
indicator, and averages the realised hit ratio.

Per realisation the feasibility indicator is rebuilt as a
:class:`~repro.core.sparse.SparseFeasibility` CSR artifact by default
(``engine="sparse"``) and scored via the sparse ``served_matrix`` walk —
the dense ``(M, K, I)`` tensor is never materialised, dropping the
``O(M·K·I)`` inner loop per realisation. The CSR encodes the identical
indicator and the walk reproduces the dense einsum's booleans exactly,
so the realised hit ratios are **bit-identical** to ``engine="dense"``
(asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement
from repro.network.channel import ChannelModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import RunningStats


@dataclass
class MonteCarloResult:
    """Aggregate of a fading Monte-Carlo evaluation."""

    mean: float
    std: float
    num_realizations: int


class PlacementEvaluator:
    """Evaluate placements on one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def expected_hit_ratio(self, placement: Placement) -> float:
        """``U(X)`` under expected rates (the solver objective)."""
        return hit_ratio(self.scenario.instance, placement)

    def monte_carlo_hit_ratio(
        self,
        placement: Placement,
        num_realizations: int = 1000,
        seed: SeedLike = None,
        engine: str = "sparse",
    ) -> MonteCarloResult:
        """Average hit ratio over Rayleigh fading realisations.

        Each realisation draws i.i.d. ``|h|² ~ Exp(1)`` gains per
        (server, user) pair, recomputes instantaneous rates and the
        feasibility indicator, and scores the *fixed* placement against
        it.

        ``engine="sparse"`` (default) rebuilds the indicator as a CSR
        artifact and walks only the placed pairs' user lists;
        ``engine="dense"`` materialises the ``(M, K, I)`` tensor per
        realisation (the pre-sparse path, kept for pinning). Both
        engines draw the same RNG stream and produce bit-identical
        realised hit ratios.
        """
        if num_realizations < 1:
            raise ValueError("num_realizations must be at least 1")
        if engine not in ("sparse", "dense"):
            raise ValueError(
                f"engine must be 'sparse' or 'dense', got {engine!r}"
            )
        rng = as_generator(seed)
        topology = self.scenario.topology
        latency = self.scenario.latency_model
        instance = self.scenario.instance
        stats = RunningStats()
        shape = (topology.num_servers, topology.num_users)
        placement_matrix = placement.matrix
        total_demand = instance.total_demand
        for _ in range(num_realizations):
            gains = ChannelModel.sample_rayleigh_gains(shape, rng)
            rates = topology.faded_rates(gains)
            if engine == "sparse":
                # Same elementwise feasibility arithmetic, CSR-shaped;
                # the sparse walk returns exactly the dense einsum's
                # booleans, so the realised ratio's bits match "dense".
                sparse = latency.feasibility_sparse(rates)
                served = sparse.served_matrix(placement_matrix)
                stats.add(
                    float((instance.demand * served).sum() / total_demand)
                )
            else:
                feasible = latency.feasibility(rates)
                stats.add(hit_ratio(instance, placement, feasible))
        return MonteCarloResult(
            mean=stats.mean, std=stats.std, num_realizations=num_realizations
        )
