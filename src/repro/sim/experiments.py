"""Per-figure/table reproduction entry points, declared as plans.

Each ``figN_*`` function regenerates the corresponding paper artefact
and returns a structured result whose ``to_table()`` prints the same
rows or series the paper plots. Since the declarative experiment API
landed (:mod:`repro.api`), every solver experiment here is a ~5-line
:class:`~repro.api.plan.ExperimentPlan` declaration (the ``*_plan``
functions) executed by the one generic
:func:`~repro.api.run.run_plan`; the ``figN_*``/``ablation_*``
callables are thin wrappers kept for backward compatibility. The
pre-plan implementations are retained verbatim in
:mod:`repro.sim.legacy` and the equivalence suite asserts the plan path
reproduces them bit-identically.

Scale knobs (`num_topologies`, evaluation mode) default to
laptop-friendly values; pass ``num_topologies=100`` and
``evaluation="monte_carlo"`` for the paper's full averaging.

Index (see DESIGN.md §3):

* :func:`fig1_accuracy_vs_frozen` — motivation curve (substituted model).
* :func:`table1_library_construction` — two-round fine-tuning settings.
* :func:`fig4a_hit_vs_capacity` / :func:`fig4b_hit_vs_servers` /
  :func:`fig4c_hit_vs_users` — special case, Spec vs Gen vs Independent.
* :func:`fig5a_hit_vs_capacity` / :func:`fig5b_hit_vs_servers` /
  :func:`fig5c_hit_vs_users` — general case, Gen vs Independent.
* :func:`fig6a_optimality_gap` / :func:`fig6b_runtime_general` — hit
  ratio and runtime against the exhaustive optimum / Spec.
* :func:`fig7_mobility_robustness` — fixed placement under mobility.
* ``ablation_*`` — our extra studies of the design decisions.

(Fig. 1 and Table I are deterministic artefact renders — no topologies,
solvers or seeds — so they are the only entries without a plan form.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.api.plan import (
    ExperimentPlan,
    MobilitySpec,
    ReplacementSpec,
    SolverSpec,
    SweepSpec,
)
from repro.api.run import ResultSet, run_plan
from repro.core.gen import GenConfig
from repro.core.independent import IndependentConfig
from repro.core.spec import SpecConfig
from repro.models.accuracy import ANIMAL_CURVE, TRANSPORTATION_CURVE
from repro.models.generators import GeneralCaseConfig, build_general_case_library
from repro.sim.runner import (  # noqa: F401 — re-exported for back-compat
    AlgorithmComparison,
    ExperimentResult,
    Fig7Result,
    ReplacementAblation,
)
from repro.utils.tables import format_table
from repro.utils.units import GB

#: The paper's capacity sweep (Figs. 4a / 5a).
CAPACITY_SWEEP_GB = (0.5, 0.75, 1.0, 1.25, 1.5)
#: The paper's server-count sweep (Figs. 4b / 5b).
SERVER_SWEEP = (6, 8, 10, 12, 14)
#: The paper's user-count sweep (Figs. 4c / 5c).
USER_SWEEP = (10, 20, 30, 40, 50)

#: The paper's library has 300 models and each user requests 30 of them
#: ("I = 30" in the figure captions). Both the library and the per-server
#: capacity shrink by ``scale`` in our default runs — the paper itself
#: notes that proportionally reducing storage and library size "will not
#: impact the phenomenon observed" (§VII-A). scale=1.0 restores the full
#: setting.
PAPER_LIBRARY_SIZE = 300
PAPER_REQUESTS_PER_USER = 30
DEFAULT_SCALE = 0.2


def _scaled_library(scale: float) -> int:
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(2, round(PAPER_LIBRARY_SIZE * scale))


def _scaled_requests(scale: float) -> int:
    return min(PAPER_REQUESTS_PER_USER, _scaled_library(scale))


# The reproduced figures deliberately run the solvers' default
# engine="dense": its coverage gains are bit-pinned to the frozen seed
# (repro.core.reference), so every figure stays exactly reproducible
# against earlier revisions. The sparse-primary instances densify lazily
# here — the price of that pinning; pass engine="sparse"/"auto" (as the
# sweep benchmark and the ``--engine`` CLI flag do) to trade it for the
# O(nnz) engine.
def special_solvers(
    epsilon: float = 0.1, engine: str = "dense"
) -> Sequence[SolverSpec]:
    """The special-case comparison set: Spec vs. Gen vs. Independent."""
    return (
        SolverSpec("spec", config=SpecConfig(epsilon=epsilon, engine=engine)),
        SolverSpec("gen", config=GenConfig(engine=engine)),
        SolverSpec("independent", config=IndependentConfig(engine=engine)),
    )


def general_solvers(engine: str = "dense") -> Sequence[SolverSpec]:
    """The general-case comparison set: Gen vs. Independent."""
    return (
        SolverSpec("gen", config=GenConfig(engine=engine)),
        SolverSpec("independent", config=IndependentConfig(engine=engine)),
    )


def _paper_base(library_case: str, scale: float, **extra) -> dict:
    """ScenarioConfig overrides shared by the Figs. 4/5 sweeps."""
    return {
        "library_case": library_case,
        "num_models": _scaled_library(scale),
        "requests_per_user": _scaled_requests(scale),
        **extra,
    }


# ----------------------------------------------------------------------
# Fig. 1 and Table I
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """Accuracy vs. frozen depth for the two Fig. 1 tasks."""

    depths: np.ndarray
    transportation: np.ndarray
    animal: np.ndarray

    @property
    def average_drop_at_90pct(self) -> float:
        """Mean accuracy drop with ~90% of layers frozen (paper: ~4.7%)."""
        index = int(np.searchsorted(self.depths, 97))
        drop_t = self.transportation[0] - self.transportation[index]
        drop_a = self.animal[0] - self.animal[index]
        return float((drop_t + drop_a) / 2.0)

    def to_table(self) -> str:
        """Series table matching Fig. 1's axes."""
        rows = [
            [int(d), float(t), float(a)]
            for d, t, a in zip(self.depths, self.transportation, self.animal)
        ]
        return format_table(
            ["frozen layers", "transportation acc", "animal acc"],
            rows,
            title="Fig. 1 — accuracy vs. frozen bottom layers (ResNet-50)",
        )


def fig1_accuracy_vs_frozen(step: int = 10) -> Fig1Result:
    """Regenerate Fig. 1 from the calibrated degradation curves."""
    if step < 1:
        raise ValueError("step must be at least 1")
    depths = np.arange(0, 107 + 1, step)
    if depths[-1] != 107:
        depths = np.append(depths, 107)
    return Fig1Result(
        depths=depths,
        transportation=TRANSPORTATION_CURVE.curve(depths.tolist()),
        animal=ANIMAL_CURVE.curve(depths.tolist()),
    )


@dataclass
class Table1Result:
    """The general-case construction settings plus realised library stats."""

    groups: dict
    num_models: int
    num_blocks: int
    num_shared_blocks: int
    savings_ratio: float

    def to_table(self) -> str:
        """Render Table I plus the realised sharing statistics."""
        rows = [
            [first, ", ".join(seconds)] for first, seconds in self.groups.items()
        ]
        settings = format_table(
            ["First-round fine-tuning", "Second-round fine-tuning"],
            rows,
            title="Table I — fine-tuning settings",
        )
        stats = format_table(
            ["metric", "value"],
            [
                ["models", self.num_models],
                ["parameter blocks", self.num_blocks],
                ["shared blocks", self.num_shared_blocks],
                ["dedup storage savings", f"{self.savings_ratio:.1%}"],
            ],
            title="Realised general-case library",
        )
        return settings + "\n\n" + stats


def table1_library_construction(
    num_models: int = 300, seed: int = 0
) -> Table1Result:
    """Build the Table-I general library and report its sharing stats."""
    config = GeneralCaseConfig(num_models=num_models)
    library = build_general_case_library(config, seed)
    stats = library.sharing_stats()
    return Table1Result(
        groups=config.groups,
        num_models=stats.num_models,
        num_blocks=stats.num_blocks,
        num_shared_blocks=stats.num_shared_blocks,
        savings_ratio=stats.savings_ratio,
    )


# ----------------------------------------------------------------------
# Figs. 4 and 5 — the sweep family, as plans
# ----------------------------------------------------------------------
def fig4a_plan(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 4(a) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 4(a) — special case: cache hit ratio vs. capacity Q",
        sweep=SweepSpec("capacity", tuple(capacities_gb)),
        solvers=special_solvers(engine=engine),
        base=_paper_base("special", scale, num_servers=10),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig4a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 4(a): special case, hit ratio vs. capacity (M=10, I=30).

    ``capacities_gb`` are the paper's values; both they and the library
    shrink by ``scale`` (see :data:`DEFAULT_SCALE`).
    """
    return run_plan(
        fig4a_plan(
            num_topologies,
            capacities_gb,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


def fig4b_plan(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 4(b) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 4(b) — special case: cache hit ratio vs. number of edge servers M",
        sweep=SweepSpec("servers", tuple(server_counts)),
        solvers=special_solvers(engine=engine),
        base=_paper_base("special", scale, storage_bytes=int(1 * scale * GB)),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig4b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 4(b): special case, hit ratio vs. M (Q=1 GB, I=30)."""
    return run_plan(
        fig4b_plan(
            num_topologies,
            server_counts,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


def fig4c_plan(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 4(c) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 4(c) — special case: cache hit ratio vs. number of users K",
        sweep=SweepSpec("users", tuple(user_counts)),
        solvers=special_solvers(engine=engine),
        base=_paper_base(
            "special",
            scale,
            num_servers=10,
            storage_bytes=int(1 * scale * GB),
        ),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig4c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 4(c): special case, hit ratio vs. K (Q=1 GB, M=10)."""
    return run_plan(
        fig4c_plan(
            num_topologies,
            user_counts,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


def fig5a_plan(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 5(a) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 5(a) — general case: cache hit ratio vs. capacity Q",
        sweep=SweepSpec("capacity", tuple(capacities_gb)),
        solvers=general_solvers(engine=engine),
        base=_paper_base("general", scale, num_servers=10),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig5a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 5(a): general case, hit ratio vs. capacity (M=10, I=30)."""
    return run_plan(
        fig5a_plan(
            num_topologies,
            capacities_gb,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


def fig5b_plan(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 5(b) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 5(b) — general case: cache hit ratio vs. number of edge servers M",
        sweep=SweepSpec("servers", tuple(server_counts)),
        solvers=general_solvers(engine=engine),
        base=_paper_base("general", scale, storage_bytes=int(1 * scale * GB)),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig5b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 5(b): general case, hit ratio vs. M (Q=1 GB, I=30)."""
    return run_plan(
        fig5b_plan(
            num_topologies,
            server_counts,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


def fig5c_plan(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ExperimentPlan:
    """Fig. 5(c) as a declarative plan."""
    return ExperimentPlan(
        name="Fig. 5(c) — general case: cache hit ratio vs. number of users K",
        sweep=SweepSpec("users", tuple(user_counts)),
        solvers=general_solvers(engine=engine),
        base=_paper_base(
            "general",
            scale,
            num_servers=10,
            storage_bytes=int(1 * scale * GB),
        ),
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        scale=scale,
        workers=workers,
    )


def fig5c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
    engine: str = "dense",
) -> ResultSet:
    """Fig. 5(c): general case, hit ratio vs. K (Q=1 GB, M=10)."""
    return run_plan(
        fig5c_plan(
            num_topologies,
            user_counts,
            evaluation,
            num_realizations,
            seed,
            scale,
            workers,
            engine,
        )
    )


# ----------------------------------------------------------------------
# Fig. 6 — optimality gap and runtime, as comparison plans
# ----------------------------------------------------------------------
def fig6a_plan(num_topologies: int = 10, seed: int = 0) -> ExperimentPlan:
    """Fig. 6(a) as a declarative (comparison) plan."""
    return ExperimentPlan(
        name="Fig. 6(a) — special case: hit ratio and runtime vs. optimal",
        solvers=(
            SolverSpec("exhaustive"),
            SolverSpec("spec", config=SpecConfig(epsilon=0.0)),
            SolverSpec("gen"),
        ),
        base={
            "library_case": "special",
            "num_servers": 2,
            "num_users": 6,
            "num_models": 9,
            "area_side_m": 400.0,
            "storage_bytes": int(0.1 * GB),
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def fig6a_optimality_gap(
    num_topologies: int = 10, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(a): Spec (ε=0) and Gen vs. the exhaustive optimum.

    Paper setting: 400 m area, M=2, K=6, Q=0.1 GB, special-case library
    with 9 models requested per user.
    """
    return run_plan(fig6a_plan(num_topologies, seed)).comparison()


def fig6b_plan(num_topologies: int = 5, seed: int = 0) -> ExperimentPlan:
    """Fig. 6(b) as a declarative (comparison) plan."""
    return ExperimentPlan(
        name="Fig. 6(b) — general case: Spec vs. Gen runtime",
        solvers=(
            SolverSpec(
                "spec",
                config=SpecConfig(epsilon=0.0, max_combinations=50_000_000),
            ),
            SolverSpec("gen"),
        ),
        base={
            "library_case": "general",
            "num_servers": 2,
            "num_users": 6,
            "num_models": 27,
            "area_side_m": 400.0,
            "storage_bytes": int(0.2 * GB),
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def fig6b_runtime_general(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(b): Spec vs. Gen on a general-case library.

    Paper setting: Q=0.2 GB, 27 models per user; Spec's combination
    traversal is exponential here, demonstrating why Gen exists.
    """
    return run_plan(fig6b_plan(num_topologies, seed)).comparison()


# ----------------------------------------------------------------------
# Fig. 7 — mobility robustness, as a study plan
# ----------------------------------------------------------------------
def fig7_plan(
    num_runs: int = 5,
    horizon_s: float = 7200.0,
    sample_every: int = 60,
    seed: int = 0,
) -> ExperimentPlan:
    """Fig. 7 as a declarative (mobility-study) plan."""
    return ExperimentPlan(
        name="Fig. 7 — cache hit ratio over time (mobility)",
        solvers=(
            SolverSpec("spec", config=SpecConfig(epsilon=0.1)),
            SolverSpec("gen"),
        ),
        study=MobilitySpec(
            horizon_s=horizon_s, sample_every=sample_every, num_runs=num_runs
        ),
        base={
            "library_case": "special",
            "num_servers": 10,
            "num_users": 10,
            "num_models": 30,
            "storage_bytes": 1 * GB,
        },
        seed=seed,
    )


def fig7_mobility_robustness(
    num_runs: int = 5,
    horizon_s: float = 7200.0,
    sample_every: int = 60,
    seed: int = 0,
) -> Fig7Result:
    """Fig. 7: fixed Spec/Gen placements under 2 h of user mobility.

    Paper setting: M=10, K=10, Q=1 GB, special case; pedestrian/bike/
    vehicle users, 5 s slots.
    """
    return run_plan(
        fig7_plan(num_runs, horizon_s, sample_every, seed)
    ).mobility()


# ----------------------------------------------------------------------
# Ablations (ours), as plans
# ----------------------------------------------------------------------
def ablation_epsilon_plan(
    epsilons: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
    num_topologies: int = 5,
    seed: int = 0,
) -> ExperimentPlan:
    """Spec ε ablation as a declarative plan."""
    solvers = tuple(
        SolverSpec("spec", label=f"Spec (eps={eps})", config=SpecConfig(epsilon=eps))
        for eps in epsilons
    ) + (
        SolverSpec("spec", label="Spec (exact)", config=SpecConfig(epsilon=0.0)),
    )
    return ExperimentPlan(
        name="Ablation — Spec rounding parameter ε",
        solvers=solvers,
        base={
            "library_case": "special",
            "num_servers": 4,
            "num_users": 12,
            "num_models": 12,
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def ablation_epsilon(
    epsilons: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
    num_topologies: int = 5,
    seed: int = 0,
) -> AlgorithmComparison:
    """Hit ratio / runtime of Spec across the rounding parameter ε."""
    return run_plan(
        ablation_epsilon_plan(epsilons, num_topologies, seed)
    ).comparison()


def ablation_lazy_greedy_plan(
    num_topologies: int = 5, seed: int = 0
) -> ExperimentPlan:
    """Lazy-vs-naive Gen ablation as a declarative plan."""
    return ExperimentPlan(
        name="Ablation — lazy vs. naive greedy",
        solvers=(
            SolverSpec("gen", label="Gen (lazy)", config=GenConfig(accelerated=True)),
            SolverSpec("gen", label="Gen (naive)", config=GenConfig(accelerated=False)),
        ),
        base={
            "library_case": "special",
            "num_servers": 8,
            "num_users": 20,
            "num_models": 30,
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def ablation_lazy_greedy(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Lazy vs. naive Gen greedy: identical quality, different runtime."""
    return run_plan(ablation_lazy_greedy_plan(num_topologies, seed)).comparison()


def ablation_server_order_plan(
    num_topologies: int = 5, seed: int = 0
) -> ExperimentPlan:
    """Spec server-order ablation as a declarative plan."""
    return ExperimentPlan(
        name="Ablation — successive-greedy server order",
        solvers=tuple(
            SolverSpec(
                "spec",
                label=f"Spec (order={order})",
                config=SpecConfig(epsilon=0.1, server_order=order),
            )
            for order in ("index", "capacity", "coverage")
        ),
        base={
            "library_case": "special",
            "num_servers": 6,
            "num_users": 15,
            "num_models": 15,
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def ablation_server_order(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Spec's successive-greedy server ordering strategies."""
    return run_plan(ablation_server_order_plan(num_topologies, seed)).comparison()


def ablation_replacement_plan(
    thresholds: Sequence[float] = (0.0, 0.8, 0.9, 1.0),
    num_runs: int = 3,
    horizon_s: float = 7200.0,
    seed: int = 0,
) -> ExperimentPlan:
    """§IV-A re-placement ablation as a declarative (study) plan."""
    return ExperimentPlan(
        name="Ablation — threshold-triggered re-placement (2 h horizon)",
        solvers=(SolverSpec("gen"),),
        study=ReplacementSpec(
            thresholds=tuple(thresholds),
            num_runs=num_runs,
            horizon_s=horizon_s,
            check_every=12,
        ),
        base={
            "library_case": "special",
            "num_servers": 4,
            "num_users": 10,
            "num_models": 15,
            "storage_bytes": 150_000_000,
        },
        seed=seed,
    )


def ablation_replacement(
    thresholds: Sequence[float] = (0.0, 0.8, 0.9, 1.0),
    num_runs: int = 3,
    horizon_s: float = 7200.0,
    seed: int = 0,
) -> ReplacementAblation:
    """§IV-A extension: hit ratio vs. backbone cost of re-placement."""
    return run_plan(
        ablation_replacement_plan(thresholds, num_runs, horizon_s, seed)
    ).replacement()


def ablation_dp_backend_plan(
    num_topologies: int = 5, seed: int = 0
) -> ExperimentPlan:
    """Spec knapsack-backend ablation as a declarative plan."""
    return ExperimentPlan(
        name="Ablation — Spec knapsack backend",
        solvers=(
            SolverSpec(
                "spec",
                label="Spec (value_dp)",
                config=SpecConfig(epsilon=0.1, backend="value_dp"),
            ),
            SolverSpec(
                "spec",
                label="Spec (weight_dp)",
                config=SpecConfig(epsilon=0.1, backend="weight_dp"),
            ),
            SolverSpec(
                "spec",
                label="Spec (exact)",
                config=SpecConfig(epsilon=0.0, backend="exact"),
            ),
        ),
        base={
            "library_case": "special",
            "num_servers": 4,
            "num_users": 12,
            "num_models": 12,
        },
        num_topologies=num_topologies,
        seed=seed,
    )


def ablation_dp_backend(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Value-DP vs. weight-DP vs. exact knapsack backends inside Spec."""
    return run_plan(ablation_dp_backend_plan(num_topologies, seed)).comparison()


#: The canonical index of figure/ablation plan builders (README's
#: migration map and the registry-drift tests iterate it; a future
#: ``sweep --plan`` CLI shortcut would resolve names here).
PLAN_BUILDERS = {
    "fig4a": fig4a_plan,
    "fig4b": fig4b_plan,
    "fig4c": fig4c_plan,
    "fig5a": fig5a_plan,
    "fig5b": fig5b_plan,
    "fig5c": fig5c_plan,
    "fig6a": fig6a_plan,
    "fig6b": fig6b_plan,
    "fig7": fig7_plan,
    "ablation-epsilon": ablation_epsilon_plan,
    "ablation-lazy": ablation_lazy_greedy_plan,
    "ablation-order": ablation_server_order_plan,
    "ablation-replacement": ablation_replacement_plan,
    "ablation-backend": ablation_dp_backend_plan,
}
