"""Per-figure/table reproduction entry points.

Each ``figN_*`` function regenerates the corresponding paper artefact and
returns a structured result whose ``to_table()`` prints the same rows or
series the paper plots. Scale knobs (`num_topologies`, evaluation mode)
default to laptop-friendly values; pass ``num_topologies=100`` and
``evaluation="monte_carlo"`` for the paper's full averaging.

Index (see DESIGN.md §3):

* :func:`fig1_accuracy_vs_frozen` — motivation curve (substituted model).
* :func:`table1_library_construction` — two-round fine-tuning settings.
* :func:`fig4a_hit_vs_capacity` / :func:`fig4b_hit_vs_servers` /
  :func:`fig4c_hit_vs_users` — special case, Spec vs Gen vs Independent.
* :func:`fig5a_hit_vs_capacity` / :func:`fig5b_hit_vs_servers` /
  :func:`fig5c_hit_vs_users` — general case, Gen vs Independent.
* :func:`fig6a_optimality_gap` / :func:`fig6b_runtime_general` — hit
  ratio and runtime against the exhaustive optimum / Spec.
* :func:`fig7_mobility_robustness` — fixed placement under mobility.
* ``ablation_*`` — our extra studies of the design decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.exhaustive import ExhaustiveSearch
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.spec import TrimCachingSpec
from repro.models.accuracy import ANIMAL_CURVE, TRANSPORTATION_CURVE
from repro.models.generators import GeneralCaseConfig, build_general_case_library
from repro.sim.config import ScenarioConfig
from repro.sim.mobility_eval import MobilityStudy
from repro.sim.runner import ExperimentResult, SweepRunner
from repro.sim.scenario import build_scenario
from repro.utils.rng import RngFactory
from repro.utils.stats import RunningStats, SeriesStats
from repro.utils.tables import format_table
from repro.utils.units import GB

#: The paper's capacity sweep (Figs. 4a / 5a).
CAPACITY_SWEEP_GB = (0.5, 0.75, 1.0, 1.25, 1.5)
#: The paper's server-count sweep (Figs. 4b / 5b).
SERVER_SWEEP = (6, 8, 10, 12, 14)
#: The paper's user-count sweep (Figs. 4c / 5c).
USER_SWEEP = (10, 20, 30, 40, 50)

#: The paper's library has 300 models and each user requests 30 of them
#: ("I = 30" in the figure captions). Both the library and the per-server
#: capacity shrink by ``scale`` in our default runs — the paper itself
#: notes that proportionally reducing storage and library size "will not
#: impact the phenomenon observed" (§VII-A). scale=1.0 restores the full
#: setting.
PAPER_LIBRARY_SIZE = 300
PAPER_REQUESTS_PER_USER = 30
DEFAULT_SCALE = 0.2


def _scaled_library(scale: float) -> int:
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(2, round(PAPER_LIBRARY_SIZE * scale))


def _scaled_requests(scale: float) -> int:
    return min(PAPER_REQUESTS_PER_USER, _scaled_library(scale))


# The reproduced figures deliberately run the solvers' default
# engine="dense": its coverage gains are bit-pinned to the frozen seed
# (repro.core.reference), so every figure stays exactly reproducible
# against earlier revisions. The sparse-primary instances densify lazily
# here — the price of that pinning; pass engine="sparse"/"auto" (as the
# sweep benchmark does) to trade it for the O(nnz) engine.
def _special_algorithms(epsilon: float = 0.1, engine: str = "dense") -> Dict[str, Any]:
    return {
        "TrimCaching Spec": TrimCachingSpec(epsilon=epsilon, engine=engine),
        "TrimCaching Gen": TrimCachingGen(engine=engine),
        "Independent Caching": IndependentCaching(engine=engine),
    }


def _general_algorithms(engine: str = "dense") -> Dict[str, Any]:
    return {
        "TrimCaching Gen": TrimCachingGen(engine=engine),
        "Independent Caching": IndependentCaching(engine=engine),
    }


# ----------------------------------------------------------------------
# Fig. 1 and Table I
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """Accuracy vs. frozen depth for the two Fig. 1 tasks."""

    depths: np.ndarray
    transportation: np.ndarray
    animal: np.ndarray

    @property
    def average_drop_at_90pct(self) -> float:
        """Mean accuracy drop with ~90% of layers frozen (paper: ~4.7%)."""
        index = int(np.searchsorted(self.depths, 97))
        drop_t = self.transportation[0] - self.transportation[index]
        drop_a = self.animal[0] - self.animal[index]
        return float((drop_t + drop_a) / 2.0)

    def to_table(self) -> str:
        """Series table matching Fig. 1's axes."""
        rows = [
            [int(d), float(t), float(a)]
            for d, t, a in zip(self.depths, self.transportation, self.animal)
        ]
        return format_table(
            ["frozen layers", "transportation acc", "animal acc"],
            rows,
            title="Fig. 1 — accuracy vs. frozen bottom layers (ResNet-50)",
        )


def fig1_accuracy_vs_frozen(step: int = 10) -> Fig1Result:
    """Regenerate Fig. 1 from the calibrated degradation curves."""
    if step < 1:
        raise ValueError("step must be at least 1")
    depths = np.arange(0, 107 + 1, step)
    if depths[-1] != 107:
        depths = np.append(depths, 107)
    return Fig1Result(
        depths=depths,
        transportation=TRANSPORTATION_CURVE.curve(depths.tolist()),
        animal=ANIMAL_CURVE.curve(depths.tolist()),
    )


@dataclass
class Table1Result:
    """The general-case construction settings plus realised library stats."""

    groups: Mapping[str, Sequence[str]]
    num_models: int
    num_blocks: int
    num_shared_blocks: int
    savings_ratio: float

    def to_table(self) -> str:
        """Render Table I plus the realised sharing statistics."""
        rows = [
            [first, ", ".join(seconds)] for first, seconds in self.groups.items()
        ]
        settings = format_table(
            ["First-round fine-tuning", "Second-round fine-tuning"],
            rows,
            title="Table I — fine-tuning settings",
        )
        stats = format_table(
            ["metric", "value"],
            [
                ["models", self.num_models],
                ["parameter blocks", self.num_blocks],
                ["shared blocks", self.num_shared_blocks],
                ["dedup storage savings", f"{self.savings_ratio:.1%}"],
            ],
            title="Realised general-case library",
        )
        return settings + "\n\n" + stats


def table1_library_construction(
    num_models: int = 300, seed: int = 0
) -> Table1Result:
    """Build the Table-I general library and report its sharing stats."""
    config = GeneralCaseConfig(num_models=num_models)
    library = build_general_case_library(config, seed)
    stats = library.sharing_stats()
    return Table1Result(
        groups=config.groups,
        num_models=stats.num_models,
        num_blocks=stats.num_blocks,
        num_shared_blocks=stats.num_shared_blocks,
        savings_ratio=stats.savings_ratio,
    )


# ----------------------------------------------------------------------
# Figs. 4 and 5 — the sweep family
# ----------------------------------------------------------------------
def _base_config(library_case: str, **overrides) -> ScenarioConfig:
    return ScenarioConfig(library_case=library_case).with_overrides(**overrides)


def _sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    config_for,
    algorithms: Dict[str, Any],
    base: ScenarioConfig,
    num_topologies: int,
    evaluation: str,
    num_realizations: int,
    seed: int,
    workers: int = 1,
) -> ExperimentResult:
    runner = SweepRunner(
        base_config=base,
        algorithms=algorithms,
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        workers=workers,
    )
    return runner.run(name, x_label, x_values, config_for)


def fig4a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(a): special case, hit ratio vs. capacity (M=10, I=30).

    ``capacities_gb`` are the paper's values; both they and the library
    shrink by ``scale`` (see :data:`DEFAULT_SCALE`).
    """
    base = _base_config(
        "special",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
    )
    return _sweep(
        "Fig. 4(a) — special case: cache hit ratio vs. capacity Q",
        "Q (GB, paper scale)",
        list(capacities_gb),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * scale * GB)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig4b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(b): special case, hit ratio vs. M (Q=1 GB, I=30)."""
    base = _base_config(
        "special",
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 4(b) — special case: cache hit ratio vs. number of edge servers M",
        "M",
        list(server_counts),
        lambda cfg, m: cfg.with_overrides(num_servers=int(m)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig4c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(c): special case, hit ratio vs. K (Q=1 GB, M=10)."""
    base = _base_config(
        "special",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 4(c) — special case: cache hit ratio vs. number of users K",
        "K",
        list(user_counts),
        lambda cfg, k: cfg.with_overrides(num_users=int(k)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(a): general case, hit ratio vs. capacity (M=10, I=30)."""
    base = _base_config(
        "general",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
    )
    return _sweep(
        "Fig. 5(a) — general case: cache hit ratio vs. capacity Q",
        "Q (GB, paper scale)",
        list(capacities_gb),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * scale * GB)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(b): general case, hit ratio vs. M (Q=1 GB, I=30)."""
    base = _base_config(
        "general",
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 5(b) — general case: cache hit ratio vs. number of edge servers M",
        "M",
        list(server_counts),
        lambda cfg, m: cfg.with_overrides(num_servers=int(m)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(c): general case, hit ratio vs. K (Q=1 GB, M=10)."""
    base = _base_config(
        "general",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 5(c) — general case: cache hit ratio vs. number of users K",
        "K",
        list(user_counts),
        lambda cfg, k: cfg.with_overrides(num_users=int(k)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


# ----------------------------------------------------------------------
# Fig. 6 — optimality gap and runtime
# ----------------------------------------------------------------------
@dataclass
class AlgorithmComparison:
    """Hit ratio + runtime per algorithm (one Fig. 6 panel)."""

    name: str
    hit_ratios: Dict[str, RunningStats]
    runtimes: Dict[str, RunningStats]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def mean_hit(self, algorithm: str) -> float:
        """Mean hit ratio of one algorithm."""
        return self.hit_ratios[algorithm].mean

    def mean_runtime(self, algorithm: str) -> float:
        """Mean wall-clock runtime of one algorithm."""
        return self.runtimes[algorithm].mean

    def speedup(self, fast: str, slow: str) -> float:
        """How many times faster ``fast`` is than ``slow``."""
        fast_time = self.mean_runtime(fast)
        if fast_time == 0:
            return float("inf")
        return self.mean_runtime(slow) / fast_time

    def to_table(self) -> str:
        """Rows: algorithm, mean/std hit ratio, mean runtime."""
        rows = []
        for algorithm in self.hit_ratios:
            rows.append(
                [
                    algorithm,
                    self.hit_ratios[algorithm].mean,
                    self.hit_ratios[algorithm].std,
                    f"{self.runtimes[algorithm].mean:.3e}",
                ]
            )
        return format_table(
            ["algorithm", "hit ratio (mean)", "hit ratio (std)", "runtime (s)"],
            rows,
            title=self.name,
        )


def _compare_algorithms(
    name: str,
    config: ScenarioConfig,
    algorithms: Dict[str, Any],
    num_topologies: int,
    seed: int,
) -> AlgorithmComparison:
    hit_ratios = {algo: RunningStats() for algo in algorithms}
    runtimes = {algo: RunningStats() for algo in algorithms}
    factory = RngFactory(seed)
    library = None
    for topology_index in range(num_topologies):
        scenario = build_scenario(
            config, hash((seed, topology_index)) % (2**31), library=library
        )
        library = scenario.library  # fixed across topologies
        for algo_name, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            hit_ratios[algo_name].add(result.hit_ratio)
            runtimes[algo_name].add(result.runtime_s)
    return AlgorithmComparison(
        name=name,
        hit_ratios=hit_ratios,
        runtimes=runtimes,
        metadata={"config": config, "num_topologies": num_topologies},
    )


def fig6a_optimality_gap(
    num_topologies: int = 10, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(a): Spec (ε=0) and Gen vs. the exhaustive optimum.

    Paper setting: 400 m area, M=2, K=6, Q=0.1 GB, special-case library
    with 9 models requested per user.
    """
    config = ScenarioConfig(
        library_case="special",
        num_servers=2,
        num_users=6,
        num_models=9,
        area_side_m=400.0,
        storage_bytes=int(0.1 * GB),
    )
    algorithms = {
        "Optimal (exhaustive)": ExhaustiveSearch(),
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.0),
        "TrimCaching Gen": TrimCachingGen(),
    }
    return _compare_algorithms(
        "Fig. 6(a) — special case: hit ratio and runtime vs. optimal",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def fig6b_runtime_general(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(b): Spec vs. Gen on a general-case library.

    Paper setting: Q=0.2 GB, 27 models per user; Spec's combination
    traversal is exponential here, demonstrating why Gen exists.
    """
    config = ScenarioConfig(
        library_case="general",
        num_servers=2,
        num_users=6,
        num_models=27,
        area_side_m=400.0,
        storage_bytes=int(0.2 * GB),
    )
    algorithms = {
        "TrimCaching Spec": TrimCachingSpec(
            epsilon=0.0, max_combinations=50_000_000
        ),
        "TrimCaching Gen": TrimCachingGen(),
    }
    return _compare_algorithms(
        "Fig. 6(b) — general case: Spec vs. Gen runtime",
        config,
        algorithms,
        num_topologies,
        seed,
    )


# ----------------------------------------------------------------------
# Fig. 7 — mobility robustness
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Hit-ratio time series per algorithm under user mobility."""

    times_s: np.ndarray
    series: Dict[str, SeriesStats]

    def degradation(self, algorithm: str) -> float:
        """Relative hit-ratio drop from t=0 to the horizon end."""
        means = self.series[algorithm].means
        if means[0] == 0:
            return 0.0
        return float((means[0] - means[-1]) / means[0])

    def to_table(self) -> str:
        """Rows: time (min), one mean column per algorithm."""
        algorithms = list(self.series)
        headers = ["time (min)"] + algorithms
        rows = []
        for index, t in enumerate(self.times_s):
            row: List[Any] = [float(t / 60.0)]
            row.extend(
                float(self.series[algo].means[index]) for algo in algorithms
            )
            rows.append(row)
        return format_table(
            headers, rows, title="Fig. 7 — cache hit ratio over time (mobility)"
        )


def fig7_mobility_robustness(
    num_runs: int = 5,
    horizon_s: float = 7200.0,
    sample_every: int = 60,
    seed: int = 0,
) -> Fig7Result:
    """Fig. 7: fixed Spec/Gen placements under 2 h of user mobility.

    Paper setting: M=10, K=10, Q=1 GB, special case; pedestrian/bike/
    vehicle users, 5 s slots.
    """
    config = ScenarioConfig(
        library_case="special",
        num_servers=10,
        num_users=10,
        num_models=30,
        storage_bytes=1 * GB,
    )
    algorithms = {
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.1),
        "TrimCaching Gen": TrimCachingGen(),
    }
    times: Optional[np.ndarray] = None
    series: Dict[str, SeriesStats] = {}
    for run_index in range(num_runs):
        scenario = build_scenario(config, hash((seed, run_index)) % (2**31))
        study = MobilityStudy(scenario, sample_every=sample_every)
        for algo_name, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            trace = study.run(
                result.placement, horizon_s=horizon_s, seed=(seed, run_index)
            )
            if times is None:
                times = trace.times_s
            if algo_name not in series:
                series[algo_name] = SeriesStats(times.tolist())
            series[algo_name].add_run(trace.hit_ratios.tolist())
    assert times is not None
    return Fig7Result(times_s=times, series=series)


# ----------------------------------------------------------------------
# Ablations (ours)
# ----------------------------------------------------------------------
def ablation_epsilon(
    epsilons: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
    num_topologies: int = 5,
    seed: int = 0,
) -> AlgorithmComparison:
    """Hit ratio / runtime of Spec across the rounding parameter ε."""
    config = ScenarioConfig(
        library_case="special", num_servers=4, num_users=12, num_models=12
    )
    algorithms: Dict[str, Any] = {
        f"Spec (eps={eps})": TrimCachingSpec(epsilon=eps) for eps in epsilons
    }
    algorithms["Spec (exact)"] = TrimCachingSpec(epsilon=0.0)
    return _compare_algorithms(
        "Ablation — Spec rounding parameter ε",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def ablation_lazy_greedy(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Lazy vs. naive Gen greedy: identical quality, different runtime."""
    config = ScenarioConfig(
        library_case="special", num_servers=8, num_users=20, num_models=30
    )
    algorithms = {
        "Gen (lazy)": TrimCachingGen(accelerated=True),
        "Gen (naive)": TrimCachingGen(accelerated=False),
    }
    return _compare_algorithms(
        "Ablation — lazy vs. naive greedy",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def ablation_server_order(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Spec's successive-greedy server ordering strategies."""
    config = ScenarioConfig(
        library_case="special", num_servers=6, num_users=15, num_models=15
    )
    algorithms = {
        f"Spec (order={order})": TrimCachingSpec(epsilon=0.1, server_order=order)
        for order in ("index", "capacity", "coverage")
    }
    return _compare_algorithms(
        "Ablation — successive-greedy server order",
        config,
        algorithms,
        num_topologies,
        seed,
    )


@dataclass
class ReplacementAblation:
    """Per-threshold outcome of the §IV-A re-placement loop."""

    thresholds: Sequence[float]
    mean_hit: Dict[float, RunningStats]
    replacements: Dict[float, RunningStats]
    bytes_shipped: Dict[float, RunningStats]

    def to_table(self) -> str:
        """Rows: threshold, time-avg hit ratio, replacements, traffic."""
        rows = []
        for threshold in self.thresholds:
            rows.append(
                [
                    "never" if threshold == 0 else f"{threshold:.2f}",
                    self.mean_hit[threshold].mean,
                    self.replacements[threshold].mean,
                    f"{self.bytes_shipped[threshold].mean / 1e6:.0f} MB",
                ]
            )
        return format_table(
            [
                "replace when below",
                "time-avg hit ratio",
                "replacements",
                "backbone traffic",
            ],
            rows,
            title="Ablation — threshold-triggered re-placement (2 h horizon)",
        )


def ablation_replacement(
    thresholds: Sequence[float] = (0.0, 0.8, 0.9, 1.0),
    num_runs: int = 3,
    horizon_s: float = 7200.0,
    seed: int = 0,
) -> ReplacementAblation:
    """§IV-A extension: hit ratio vs. backbone cost of re-placement."""
    from repro.sim.replacement import ReplacementPolicy

    config = ScenarioConfig(
        library_case="special",
        num_servers=4,
        num_users=10,
        num_models=15,
        storage_bytes=150_000_000,
    )
    mean_hit = {t: RunningStats() for t in thresholds}
    replacements = {t: RunningStats() for t in thresholds}
    bytes_shipped = {t: RunningStats() for t in thresholds}
    for run_index in range(num_runs):
        scenario = build_scenario(config, hash((seed, run_index)) % (2**31))
        for threshold in thresholds:
            policy = ReplacementPolicy(
                scenario, TrimCachingGen(), threshold=threshold, check_every=12
            )
            trace = policy.run(horizon_s=horizon_s, seed=(seed, run_index))
            mean_hit[threshold].add(trace.mean_hit_ratio)
            replacements[threshold].add(trace.num_replacements)
            bytes_shipped[threshold].add(trace.total_bytes_shipped)
    return ReplacementAblation(
        thresholds=list(thresholds),
        mean_hit=mean_hit,
        replacements=replacements,
        bytes_shipped=bytes_shipped,
    )


def ablation_dp_backend(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Value-DP vs. weight-DP vs. exact knapsack backends inside Spec."""
    config = ScenarioConfig(
        library_case="special", num_servers=4, num_users=12, num_models=12
    )
    algorithms = {
        "Spec (value_dp)": TrimCachingSpec(epsilon=0.1, backend="value_dp"),
        "Spec (weight_dp)": TrimCachingSpec(epsilon=0.1, backend="weight_dp"),
        "Spec (exact)": TrimCachingSpec(epsilon=0.0, backend="exact"),
    }
    return _compare_algorithms(
        "Ablation — Spec knapsack backend",
        config,
        algorithms,
        num_topologies,
        seed,
    )
