"""Per-request latency accounting, including cloud-fallback misses.

The paper optimises the cache *hit ratio* and notes that misses are
forwarded to the cloud, "much slower" than edge delivery. This module
quantifies that: given a placement, it computes the expected end-to-end
delivery latency per request with misses served over a (configurable)
cloud link — the user-facing metric a hit ratio ultimately stands for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.placement import Placement
from repro.errors import ConfigurationError
from repro.sim.scenario import Scenario
from repro.utils.units import MBPS


@dataclass(frozen=True)
class LatencyReport:
    """Expected request latency under one placement.

    Attributes
    ----------
    hit_ratio:
        Fraction of demand served by edge servers within deadline.
    mean_latency_s:
        Demand-weighted expected delivery latency across all requests
        (hits at their best edge latency, misses via the cloud link).
    mean_hit_latency_s / mean_miss_latency_s:
        Conditional means (``nan`` when the condition never occurs).
    deadline_satisfaction:
        Fraction of demand whose *realised* latency (edge or cloud)
        meets the request deadline — cloud delivery may still make some
        deadlines when they are loose.
    """

    hit_ratio: float
    mean_latency_s: float
    mean_hit_latency_s: float
    mean_miss_latency_s: float
    deadline_satisfaction: float


class LatencyAnalyzer:
    """Compute :class:`LatencyReport` objects for placements.

    Parameters
    ----------
    scenario:
        The snapshot under analysis.
    cloud_rate_bps:
        Effective per-user throughput of the cloud path (paper: "much
        slower" than the edge; default 50 Mbps — a congested WAN share).
    cloud_extra_delay_s:
        Fixed extra delay of the cloud path (propagation + backbone).
    """

    def __init__(
        self,
        scenario: Scenario,
        cloud_rate_bps: float = 50 * MBPS,
        cloud_extra_delay_s: float = 0.1,
    ) -> None:
        if cloud_rate_bps <= 0:
            raise ConfigurationError("cloud_rate_bps must be positive")
        if cloud_extra_delay_s < 0:
            raise ConfigurationError("cloud_extra_delay_s must be non-negative")
        self.scenario = scenario
        self.cloud_rate_bps = cloud_rate_bps
        self.cloud_extra_delay_s = cloud_extra_delay_s

    def report(self, placement: Placement) -> LatencyReport:
        """Expected latency metrics for ``placement``."""
        instance = self.scenario.instance
        latency_model = self.scenario.latency_model

        latency = latency_model.latency()  # (M, K, I); inf = unreachable
        feasible = instance.feasible
        cached = placement.matrix  # (M, I)

        # Best edge latency per (k, i) over servers that cache the model.
        masked = np.where(cached[:, None, :], latency, np.inf)
        best_edge = masked.min(axis=0)  # (K, I)
        # A hit also requires meeting the deadline (I1 on some caching
        # server) — equivalent to best_edge <= deadline since I1 was
        # derived from the same latency tensor.
        hit = np.einsum("mki,mi->ki", feasible, cached) > 0

        # Cloud path for misses.
        cloud = latency_model.model_bits / self.cloud_rate_bps
        cloud_latency = (
            cloud[None, :] + latency_model.inference + self.cloud_extra_delay_s
        )  # (K, I)

        realised = np.where(hit, best_edge, cloud_latency)
        weights = instance.demand / instance.total_demand

        hit_mass = float((weights * hit).sum())
        miss_mass = float((weights * ~hit).sum())
        mean_latency = float((weights * realised).sum())
        mean_hit = (
            float((weights * np.where(hit, best_edge, 0.0)).sum() / hit_mass)
            if hit_mass > 0
            else float("nan")
        )
        mean_miss = (
            float(
                (weights * np.where(~hit, cloud_latency, 0.0)).sum() / miss_mass
            )
            if miss_mass > 0
            else float("nan")
        )
        meets = realised <= latency_model.deadlines
        return LatencyReport(
            hit_ratio=hit_mass,
            mean_latency_s=mean_latency,
            mean_hit_latency_s=mean_hit,
            mean_miss_latency_s=mean_miss,
            deadline_satisfaction=float((weights * meets).sum()),
        )
