"""Pre-plan-API figure implementations, retained as equivalence anchors.

These are the per-figure functions exactly as they existed before the
declarative experiment API (``repro.api``): hand-wired solver dicts and
one hard-coded function per paper panel. They are **not** the public
entry points any more — :mod:`repro.sim.experiments` now declares each
figure as an :class:`~repro.api.plan.ExperimentPlan` — but they are kept
verbatim so the equivalence suite (``tests/api/test_plan_equivalence.py``)
can assert, for every migrated figure, that the plan path produces
bit-identical hit-ratio series at a fixed seed.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.exhaustive import ExhaustiveSearch
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.spec import TrimCachingSpec
from repro.sim.config import ScenarioConfig
from repro.sim.experiments import (
    CAPACITY_SWEEP_GB,
    DEFAULT_SCALE,
    SERVER_SWEEP,
    USER_SWEEP,
    _scaled_library,
    _scaled_requests,
)
from repro.sim.mobility_eval import MobilityStudy
from repro.sim.runner import (
    AlgorithmComparison,
    ExperimentResult,
    Fig7Result,
    ReplacementAblation,
    SweepRunner,
)
from repro.sim.scenario import build_scenario
from repro.utils.rng import RngFactory
from repro.utils.stats import RunningStats, SeriesStats
from repro.utils.units import GB


def _special_algorithms(epsilon: float = 0.1, engine: str = "dense") -> Dict[str, Any]:
    return {
        "TrimCaching Spec": TrimCachingSpec(epsilon=epsilon, engine=engine),
        "TrimCaching Gen": TrimCachingGen(engine=engine),
        "Independent Caching": IndependentCaching(engine=engine),
    }


def _general_algorithms(engine: str = "dense") -> Dict[str, Any]:
    return {
        "TrimCaching Gen": TrimCachingGen(engine=engine),
        "Independent Caching": IndependentCaching(engine=engine),
    }


def _base_config(library_case: str, **overrides) -> ScenarioConfig:
    return ScenarioConfig(library_case=library_case).with_overrides(**overrides)


def _sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    config_for,
    algorithms: Dict[str, Any],
    base: ScenarioConfig,
    num_topologies: int,
    evaluation: str,
    num_realizations: int,
    seed: int,
    workers: int = 1,
) -> ExperimentResult:
    runner = SweepRunner(
        base_config=base,
        algorithms=algorithms,
        num_topologies=num_topologies,
        evaluation=evaluation,
        num_realizations=num_realizations,
        seed=seed,
        workers=workers,
    )
    return runner.run(name, x_label, x_values, config_for)


def fig4a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(a), pre-plan implementation."""
    base = _base_config(
        "special",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
    )
    return _sweep(
        "Fig. 4(a) — special case: cache hit ratio vs. capacity Q",
        "Q (GB, paper scale)",
        list(capacities_gb),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * scale * GB)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig4b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(b), pre-plan implementation."""
    base = _base_config(
        "special",
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 4(b) — special case: cache hit ratio vs. number of edge servers M",
        "M",
        list(server_counts),
        lambda cfg, m: cfg.with_overrides(num_servers=int(m)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig4c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 4(c), pre-plan implementation."""
    base = _base_config(
        "special",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 4(c) — special case: cache hit ratio vs. number of users K",
        "K",
        list(user_counts),
        lambda cfg, k: cfg.with_overrides(num_users=int(k)),
        _special_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5a_hit_vs_capacity(
    num_topologies: int = 20,
    capacities_gb: Sequence[float] = CAPACITY_SWEEP_GB,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(a), pre-plan implementation."""
    base = _base_config(
        "general",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
    )
    return _sweep(
        "Fig. 5(a) — general case: cache hit ratio vs. capacity Q",
        "Q (GB, paper scale)",
        list(capacities_gb),
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * scale * GB)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5b_hit_vs_servers(
    num_topologies: int = 20,
    server_counts: Sequence[int] = SERVER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(b), pre-plan implementation."""
    base = _base_config(
        "general",
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 5(b) — general case: cache hit ratio vs. number of edge servers M",
        "M",
        list(server_counts),
        lambda cfg, m: cfg.with_overrides(num_servers=int(m)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def fig5c_hit_vs_users(
    num_topologies: int = 20,
    user_counts: Sequence[int] = USER_SWEEP,
    evaluation: str = "expected",
    num_realizations: int = 200,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    workers: int = 1,
) -> ExperimentResult:
    """Fig. 5(c), pre-plan implementation."""
    base = _base_config(
        "general",
        num_servers=10,
        num_models=_scaled_library(scale),
        requests_per_user=_scaled_requests(scale),
        storage_bytes=int(1 * scale * GB),
    )
    return _sweep(
        "Fig. 5(c) — general case: cache hit ratio vs. number of users K",
        "K",
        list(user_counts),
        lambda cfg, k: cfg.with_overrides(num_users=int(k)),
        _general_algorithms(),
        base,
        num_topologies,
        evaluation,
        num_realizations,
        seed,
        workers,
    )


def _compare_algorithms(
    name: str,
    config: ScenarioConfig,
    algorithms: Dict[str, Any],
    num_topologies: int,
    seed: int,
) -> AlgorithmComparison:
    hit_ratios = {algo: RunningStats() for algo in algorithms}
    runtimes = {algo: RunningStats() for algo in algorithms}
    factory = RngFactory(seed)
    library = None
    for topology_index in range(num_topologies):
        scenario = build_scenario(
            config, hash((seed, topology_index)) % (2**31), library=library
        )
        library = scenario.library  # fixed across topologies
        for algo_name, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            hit_ratios[algo_name].add(result.hit_ratio)
            runtimes[algo_name].add(result.runtime_s)
    return AlgorithmComparison(
        name=name,
        hit_ratios=hit_ratios,
        runtimes=runtimes,
        metadata={"config": config, "num_topologies": num_topologies},
    )


def fig6a_optimality_gap(
    num_topologies: int = 10, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(a), pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special",
        num_servers=2,
        num_users=6,
        num_models=9,
        area_side_m=400.0,
        storage_bytes=int(0.1 * GB),
    )
    algorithms = {
        "Optimal (exhaustive)": ExhaustiveSearch(),
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.0),
        "TrimCaching Gen": TrimCachingGen(),
    }
    return _compare_algorithms(
        "Fig. 6(a) — special case: hit ratio and runtime vs. optimal",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def fig6b_runtime_general(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Fig. 6(b), pre-plan implementation."""
    config = ScenarioConfig(
        library_case="general",
        num_servers=2,
        num_users=6,
        num_models=27,
        area_side_m=400.0,
        storage_bytes=int(0.2 * GB),
    )
    algorithms = {
        "TrimCaching Spec": TrimCachingSpec(
            epsilon=0.0, max_combinations=50_000_000
        ),
        "TrimCaching Gen": TrimCachingGen(),
    }
    return _compare_algorithms(
        "Fig. 6(b) — general case: Spec vs. Gen runtime",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def fig7_mobility_robustness(
    num_runs: int = 5,
    horizon_s: float = 7200.0,
    sample_every: int = 60,
    seed: int = 0,
) -> Fig7Result:
    """Fig. 7, pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special",
        num_servers=10,
        num_users=10,
        num_models=30,
        storage_bytes=1 * GB,
    )
    algorithms = {
        "TrimCaching Spec": TrimCachingSpec(epsilon=0.1),
        "TrimCaching Gen": TrimCachingGen(),
    }
    times: Optional[np.ndarray] = None
    series: Dict[str, SeriesStats] = {}
    for run_index in range(num_runs):
        scenario = build_scenario(config, hash((seed, run_index)) % (2**31))
        study = MobilityStudy(scenario, sample_every=sample_every)
        for algo_name, solver in algorithms.items():
            result = solver.solve(scenario.instance)
            trace = study.run(
                result.placement, horizon_s=horizon_s, seed=(seed, run_index)
            )
            if times is None:
                times = trace.times_s
            if algo_name not in series:
                series[algo_name] = SeriesStats(times.tolist())
            series[algo_name].add_run(trace.hit_ratios.tolist())
    assert times is not None
    return Fig7Result(times_s=times, series=series)


def ablation_epsilon(
    epsilons: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
    num_topologies: int = 5,
    seed: int = 0,
) -> AlgorithmComparison:
    """Spec ε ablation, pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special", num_servers=4, num_users=12, num_models=12
    )
    algorithms: Dict[str, Any] = {
        f"Spec (eps={eps})": TrimCachingSpec(epsilon=eps) for eps in epsilons
    }
    algorithms["Spec (exact)"] = TrimCachingSpec(epsilon=0.0)
    return _compare_algorithms(
        "Ablation — Spec rounding parameter ε",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def ablation_lazy_greedy(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Lazy-vs-naive Gen ablation, pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special", num_servers=8, num_users=20, num_models=30
    )
    algorithms = {
        "Gen (lazy)": TrimCachingGen(accelerated=True),
        "Gen (naive)": TrimCachingGen(accelerated=False),
    }
    return _compare_algorithms(
        "Ablation — lazy vs. naive greedy",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def ablation_server_order(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Spec server-order ablation, pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special", num_servers=6, num_users=15, num_models=15
    )
    algorithms = {
        f"Spec (order={order})": TrimCachingSpec(epsilon=0.1, server_order=order)
        for order in ("index", "capacity", "coverage")
    }
    return _compare_algorithms(
        "Ablation — successive-greedy server order",
        config,
        algorithms,
        num_topologies,
        seed,
    )


def ablation_replacement(
    thresholds: Sequence[float] = (0.0, 0.8, 0.9, 1.0),
    num_runs: int = 3,
    horizon_s: float = 7200.0,
    seed: int = 0,
) -> ReplacementAblation:
    """§IV-A re-placement ablation, pre-plan implementation."""
    from repro.sim.replacement import ReplacementPolicy

    config = ScenarioConfig(
        library_case="special",
        num_servers=4,
        num_users=10,
        num_models=15,
        storage_bytes=150_000_000,
    )
    mean_hit = {t: RunningStats() for t in thresholds}
    replacements = {t: RunningStats() for t in thresholds}
    bytes_shipped = {t: RunningStats() for t in thresholds}
    for run_index in range(num_runs):
        scenario = build_scenario(config, hash((seed, run_index)) % (2**31))
        for threshold in thresholds:
            policy = ReplacementPolicy(
                scenario, TrimCachingGen(), threshold=threshold, check_every=12
            )
            trace = policy.run(horizon_s=horizon_s, seed=(seed, run_index))
            mean_hit[threshold].add(trace.mean_hit_ratio)
            replacements[threshold].add(trace.num_replacements)
            bytes_shipped[threshold].add(trace.total_bytes_shipped)
    return ReplacementAblation(
        thresholds=list(thresholds),
        mean_hit=mean_hit,
        replacements=replacements,
        bytes_shipped=bytes_shipped,
    )


def ablation_dp_backend(
    num_topologies: int = 5, seed: int = 0
) -> AlgorithmComparison:
    """Spec knapsack-backend ablation, pre-plan implementation."""
    config = ScenarioConfig(
        library_case="special", num_servers=4, num_users=12, num_models=12
    )
    algorithms = {
        "Spec (value_dp)": TrimCachingSpec(epsilon=0.1, backend="value_dp"),
        "Spec (weight_dp)": TrimCachingSpec(epsilon=0.1, backend="weight_dp"),
        "Spec (exact)": TrimCachingSpec(epsilon=0.0, backend="exact"),
    }
    return _compare_algorithms(
        "Ablation — Spec knapsack backend",
        config,
        algorithms,
        num_topologies,
        seed,
    )
