"""The §VII-E mobility-robustness study (Fig. 7).

A placement is computed once on the initial snapshot, then users move for
a long horizon (2 h of 5 s slots in the paper) while the placement stays
*fixed*; the hit ratio is re-evaluated as coverage and rates drift. The
paper's finding — only a few percent degradation over 2 h — is what the
Fig. 7 benchmark checks for shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement
from repro.network.mobility import DEFAULT_CLASSES, MobilityClass, MobilityModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator


@dataclass
class MobilityTrace:
    """Hit ratio of one fixed placement over time."""

    times_s: np.ndarray
    hit_ratios: np.ndarray

    @property
    def initial(self) -> float:
        """Hit ratio at t = 0."""
        return float(self.hit_ratios[0])

    @property
    def final(self) -> float:
        """Hit ratio at the end of the horizon."""
        return float(self.hit_ratios[-1])

    @property
    def degradation(self) -> float:
        """Relative drop from the initial hit ratio (paper's headline)."""
        if self.initial == 0:
            return 0.0
        return (self.initial - self.final) / self.initial


class MobilityStudy:
    """Run the fixed-placement mobility evaluation.

    Parameters
    ----------
    scenario:
        The initial snapshot (placement decisions are made here).
    slot_duration_s:
        Mobility slot length (paper: 5 s).
    sample_every:
        Evaluate the hit ratio every this many slots (evaluating every
        5 s slot over 2 h is wasteful; the paper plots minutes).
    classes:
        Mobility classes assigned to users round-robin.
    """

    def __init__(
        self,
        scenario: Scenario,
        slot_duration_s: float = 5.0,
        sample_every: int = 12,
        classes: Sequence[MobilityClass] = DEFAULT_CLASSES,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.scenario = scenario
        self.model = MobilityModel(
            side_length=scenario.config.area_side_m,
            slot_duration_s=slot_duration_s,
            classes=classes,
        )
        self.sample_every = sample_every

    def run(
        self,
        placement: Placement,
        horizon_s: float = 7200.0,
        seed: SeedLike = 0,
    ) -> MobilityTrace:
        """Evaluate ``placement`` while users move for ``horizon_s``."""
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        rng = as_generator(seed)
        num_slots = int(horizon_s / self.model.slot_duration_s)
        positions = [user.position for user in self.scenario.topology.users]
        states = self.model.initial_states(positions, rng)

        times: List[float] = [0.0]
        ratios: List[float] = [
            hit_ratio(self.scenario.instance, placement)
        ]
        for slot in range(1, num_slots + 1):
            states = self.model.step(states, rng)
            if slot % self.sample_every != 0 and slot != num_slots:
                continue
            topology = self.scenario.topology.with_user_positions(
                [state.position for state in states]
            )
            instance = self.scenario.rebuild_instance(topology)
            times.append(slot * self.model.slot_duration_s)
            ratios.append(hit_ratio(instance, placement))
        return MobilityTrace(
            times_s=np.array(times), hit_ratios=np.array(ratios)
        )
