"""Threshold-triggered model re-placement under mobility.

The paper solves a snapshot problem and argues (§IV-A) that in practice
the operator would "re-initiate model placement when the performance
degrades to a certain threshold", trading hit ratio against the backbone
bandwidth that shipping models to edge servers consumes. Fig. 7 shows the
degradation is slow, so replacement can be rare.

This module implements that loop — the paper describes it but never
builds it: users move, the hit ratio of the standing placement is
monitored, and when it drops below ``threshold`` times the value it had
when last (re)placed, the solver runs again on the current snapshot. The
run records every replacement and the backhaul bytes it moved (the cost
the paper wants to keep low).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.objective import hit_ratio
from repro.core.placement import Placement
from repro.errors import ConfigurationError
from repro.network.mobility import DEFAULT_CLASSES, MobilityClass, MobilityModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator


@dataclass
class ReplacementEvent:
    """One re-placement: when it fired and what it cost."""

    time_s: float
    hit_ratio_before: float
    hit_ratio_after: float
    bytes_shipped: int


@dataclass
class ReplacementTrace:
    """Outcome of a monitored run with threshold-triggered replacement."""

    times_s: np.ndarray
    hit_ratios: np.ndarray
    events: List[ReplacementEvent] = field(default_factory=list)

    @property
    def num_replacements(self) -> int:
        """How many times placement was re-initiated."""
        return len(self.events)

    @property
    def total_bytes_shipped(self) -> int:
        """Backbone traffic spent on re-placements."""
        return sum(event.bytes_shipped for event in self.events)

    @property
    def mean_hit_ratio(self) -> float:
        """Time-averaged hit ratio over the horizon."""
        return float(self.hit_ratios.mean())


def placement_delta_bytes(
    scenario: Scenario, old: Placement, new: Placement
) -> int:
    """Bytes the backbone must ship to turn ``old`` into ``new``.

    Per server, the cost is the total size of parameter blocks needed by
    the new cached set that the old cached set did not already hold
    (evictions are free; shared blocks already present are reused).
    """
    instance = scenario.instance
    total = 0
    for server in range(instance.num_servers):
        old_blocks = set()
        for model_index in old.models_on(server):
            old_blocks |= instance.model_blocks[model_index]
        new_blocks = set()
        for model_index in new.models_on(server):
            new_blocks |= instance.model_blocks[model_index]
        for block_id in new_blocks - old_blocks:
            total += instance.block_sizes[block_id]
    return total


class ReplacementPolicy:
    """Monitor a placement under mobility; re-solve when it degrades.

    Parameters
    ----------
    scenario:
        The initial snapshot.
    solver:
        Any placement solver (``solve(instance) -> SolverResult``).
    threshold:
        Re-place when the current hit ratio falls below
        ``threshold * hit_ratio_at_last_placement``. ``0`` never
        replaces (reproduces :class:`~repro.sim.mobility_eval.MobilityStudy`).
    slot_duration_s / check_every / classes:
        Mobility settings; the hit ratio is evaluated (and the trigger
        checked) every ``check_every`` slots.
    """

    def __init__(
        self,
        scenario: Scenario,
        solver: Any,
        threshold: float = 0.9,
        slot_duration_s: float = 5.0,
        check_every: int = 12,
        classes: Sequence[MobilityClass] = DEFAULT_CLASSES,
    ) -> None:
        if not 0 <= threshold <= 1:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        if check_every < 1:
            raise ConfigurationError("check_every must be at least 1")
        self.scenario = scenario
        self.solver = solver
        self.threshold = threshold
        self.check_every = check_every
        self.model = MobilityModel(
            side_length=scenario.config.area_side_m,
            slot_duration_s=slot_duration_s,
            classes=classes,
        )

    def run(self, horizon_s: float = 7200.0, seed: SeedLike = 0) -> ReplacementTrace:
        """Simulate the monitor-and-replace loop over ``horizon_s``."""
        if horizon_s < 0:
            raise ConfigurationError("horizon_s must be non-negative")
        rng = as_generator(seed)
        num_slots = int(horizon_s / self.model.slot_duration_s)

        placement = self.solver.solve(self.scenario.instance).placement
        reference = hit_ratio(self.scenario.instance, placement)

        positions = [user.position for user in self.scenario.topology.users]
        states = self.model.initial_states(positions, rng)

        times: List[float] = [0.0]
        ratios: List[float] = [reference]
        events: List[ReplacementEvent] = []
        for slot in range(1, num_slots + 1):
            states = self.model.step(states, rng)
            if slot % self.check_every != 0 and slot != num_slots:
                continue
            now = slot * self.model.slot_duration_s
            topology = self.scenario.topology.with_user_positions(
                [state.position for state in states]
            )
            instance = self.scenario.rebuild_instance(topology)
            current = hit_ratio(instance, placement)
            if self.threshold > 0 and current < self.threshold * reference:
                new_placement = self.solver.solve(instance).placement
                after = hit_ratio(instance, new_placement)
                events.append(
                    ReplacementEvent(
                        time_s=now,
                        hit_ratio_before=current,
                        hit_ratio_after=after,
                        bytes_shipped=placement_delta_bytes(
                            self.scenario, placement, new_placement
                        ),
                    )
                )
                placement = new_placement
                reference = after
                current = after
            times.append(now)
            ratios.append(current)
        return ReplacementTrace(
            times_s=np.array(times), hit_ratios=np.array(ratios), events=events
        )
