"""Discrete-event request-level simulation.

The paper's objective ``U(X)`` (eq. 2) is an *expectation* over the
request distribution. This module grounds that expectation in an actual
request stream: users become active with probability ``p_A`` per slot,
draw a model from their personal distribution ``p_{k,i}``, and the
request either hits (some server delivers within deadline, optionally
under a fresh Rayleigh fade) or misses to the cloud.

Two uses:

* **validation** — the empirical hit ratio converges to ``U(X)`` as the
  number of slots grows (tested in the suite), confirming the objective
  implementation and eq. (2) agree;
* **operations** — per-request latency samples and per-server load
  (requests served) that the analytic objective cannot expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.placement import Placement
from repro.errors import ConfigurationError
from repro.network.channel import ChannelModel
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedLike, as_generator


@dataclass
class RequestLog:
    """Aggregate outcome of a simulated request stream."""

    num_requests: int
    num_hits: int
    latencies_s: np.ndarray
    server_load: np.ndarray

    @property
    def hit_ratio(self) -> float:
        """Empirical hit ratio (0.0 when no requests arrived)."""
        if self.num_requests == 0:
            return 0.0
        return self.num_hits / self.num_requests

    @property
    def mean_hit_latency_s(self) -> float:
        """Mean delivery latency over hits (``nan`` with no hits)."""
        if len(self.latencies_s) == 0:
            return float("nan")
        return float(self.latencies_s.mean())

    def busiest_server(self) -> int:
        """Server that served the most hits."""
        return int(np.argmax(self.server_load))


class RequestSimulator:
    """Simulate slotted request arrivals against a fixed placement.

    Parameters
    ----------
    scenario:
        The snapshot (topology, demand, QoS).
    fading:
        ``True`` draws an independent Rayleigh fade per slot, matching
        the paper's evaluation; ``False`` uses expected rates, in which
        case the empirical hit ratio estimates exactly ``U(X)``.
    """

    def __init__(self, scenario: Scenario, fading: bool = False) -> None:
        self.scenario = scenario
        self.fading = fading

    def run(
        self,
        placement: Placement,
        num_slots: int = 1000,
        seed: SeedLike = None,
    ) -> RequestLog:
        """Simulate ``num_slots`` slots of user activity."""
        if num_slots < 1:
            raise ConfigurationError("num_slots must be at least 1")
        rng = as_generator(seed)
        scenario = self.scenario
        instance = scenario.instance
        topology = scenario.topology
        latency_model = scenario.latency_model

        num_servers = topology.num_servers
        num_users = topology.num_users
        active_prob = np.array(
            [user.active_probability for user in topology.users]
        )
        # Per-user request distribution (rows of the demand matrix).
        demand = instance.demand
        row_sums = demand.sum(axis=1)
        cached = placement.matrix  # (M, I)

        expected_latency = latency_model.latency()
        num_requests = 0
        num_hits = 0
        latencies: List[float] = []
        server_load = np.zeros(num_servers, dtype=np.int64)

        for _ in range(num_slots):
            active = rng.uniform(size=num_users) < active_prob
            if not active.any():
                continue
            if self.fading:
                gains = ChannelModel.sample_rayleigh_gains(
                    (num_servers, num_users), rng
                )
                latency = latency_model.latency(topology.faded_rates(gains))
            else:
                latency = expected_latency
            for user in np.flatnonzero(active):
                if row_sums[user] <= 0:
                    continue
                probs = demand[user] / row_sums[user]
                model_index = int(rng.choice(instance.num_models, p=probs))
                num_requests += 1
                deadline = latency_model.deadlines[user, model_index]
                # Best caching server within deadline.
                options = latency[:, user, model_index]
                options = np.where(cached[:, model_index], options, np.inf)
                best_server = int(np.argmin(options))
                best_latency = float(options[best_server])
                if best_latency <= deadline:
                    num_hits += 1
                    latencies.append(best_latency)
                    server_load[best_server] += 1
        return RequestLog(
            num_requests=num_requests,
            num_hits=num_hits,
            latencies_s=np.array(latencies),
            server_load=server_load,
        )
