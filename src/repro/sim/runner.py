"""Multi-topology sweep runner and experiment results.

The paper's figures sweep one parameter (capacity, server count, user
count), averaging each point over 100 random topologies. ``SweepRunner``
reproduces that shape: for every sweep value and topology seed it builds a
scenario, runs each algorithm, scores the placement (expected hit ratio by
default, Rayleigh Monte Carlo optionally), and aggregates mean/std series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.result import SolverResult
from repro.sim.config import ScenarioConfig
from repro.sim.evaluator import PlacementEvaluator
from repro.sim.scenario import Scenario, build_scenario
from repro.utils.stats import SeriesStats
from repro.utils.tables import format_table

#: An algorithm is anything with ``solve(instance) -> SolverResult``.
Solver = Any


@dataclass
class ExperimentResult:
    """One reproduced figure/table: x values + one series per algorithm."""

    name: str
    x_label: str
    x_values: Sequence[float]
    series: Dict[str, SeriesStats]
    runtimes: Dict[str, SeriesStats] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def mean_of(self, algorithm: str) -> np.ndarray:
        """Mean hit-ratio series of one algorithm."""
        return self.series[algorithm].means

    def to_table(self, float_format: str = ".4f") -> str:
        """Render the result as a paper-style ASCII table."""
        algorithms = list(self.series)
        headers = [self.x_label]
        for algorithm in algorithms:
            headers.extend([f"{algorithm} (mean)", f"{algorithm} (std)"])
        rows = []
        for index, x_value in enumerate(self.x_values):
            row: List[Any] = [x_value]
            for algorithm in algorithms:
                stats = self.series[algorithm]
                row.extend([float(stats.means[index]), float(stats.stds[index])])
            rows.append(row)
        return format_table(headers, rows, float_format=float_format, title=self.name)


class SweepRunner:
    """Run algorithms over a one-parameter sweep of scenarios.

    Parameters
    ----------
    base_config:
        Scenario configuration shared by all sweep points.
    algorithms:
        Mapping name -> solver. Fresh solver state is the caller's
        responsibility (all built-in solvers are stateless).
    num_topologies:
        Independent topologies per sweep point (paper: 100).
    evaluation:
        ``"expected"`` scores with the objective ``U(X)``;
        ``"monte_carlo"`` additionally averages over Rayleigh fading.
    num_realizations:
        Fading draws per topology for Monte-Carlo evaluation.
    seed:
        Root seed; topology ``t`` of sweep point ``v`` derives its own
        stream, so points and repetitions are independent.
    share_library:
        Build the model library once per sweep point and reuse it across
        topologies (the paper fixes the library; topologies vary only in
        geometry/QoS/demand).
    """

    def __init__(
        self,
        base_config: ScenarioConfig,
        algorithms: Mapping[str, Solver],
        num_topologies: int = 20,
        evaluation: str = "expected",
        num_realizations: int = 200,
        seed: int = 0,
        share_library: bool = True,
    ) -> None:
        if not algorithms:
            raise ValueError("at least one algorithm is required")
        if num_topologies < 1:
            raise ValueError("num_topologies must be at least 1")
        if evaluation not in ("expected", "monte_carlo"):
            raise ValueError(
                f"evaluation must be 'expected' or 'monte_carlo', got {evaluation!r}"
            )
        self.base_config = base_config
        self.algorithms = dict(algorithms)
        self.num_topologies = num_topologies
        self.evaluation = evaluation
        self.num_realizations = num_realizations
        self.seed = seed
        self.share_library = share_library

    # ------------------------------------------------------------------
    def _score(
        self, scenario: Scenario, result: SolverResult, seed: int
    ) -> float:
        if self.evaluation == "expected":
            return result.hit_ratio
        evaluator = PlacementEvaluator(scenario)
        outcome = evaluator.monte_carlo_hit_ratio(
            result.placement, self.num_realizations, seed
        )
        return outcome.mean

    def run(
        self,
        name: str,
        x_label: str,
        x_values: Sequence[float],
        config_for: Callable[[ScenarioConfig, float], ScenarioConfig],
    ) -> ExperimentResult:
        """Execute the sweep.

        Parameters
        ----------
        config_for:
            Maps ``(base_config, x_value)`` to the sweep point's config.
        """
        series = {
            algo: SeriesStats(list(x_values)) for algo in self.algorithms
        }
        runtimes = {
            algo: SeriesStats(list(x_values)) for algo in self.algorithms
        }
        from repro.sim.scenario import build_library  # local: avoids cycle
        from repro.utils.rng import RngFactory

        for x_index, x_value in enumerate(x_values):
            config = config_for(self.base_config, x_value)
            library = None
            if self.share_library:
                factory = RngFactory(self.seed)
                library = build_library(
                    config, factory.child(f"library-x{x_index}")
                )
            for topology_index in range(self.num_topologies):
                scenario_seed = hash((self.seed, x_index, topology_index)) % (2**31)
                scenario = build_scenario(config, scenario_seed, library=library)
                for algo_name, solver in self.algorithms.items():
                    result = solver.solve(scenario.instance)
                    score = self._score(scenario, result, scenario_seed)
                    series[algo_name].add(x_index, score)
                    runtimes[algo_name].add(x_index, result.runtime_s)
        return ExperimentResult(
            name=name,
            x_label=x_label,
            x_values=list(x_values),
            series=series,
            runtimes=runtimes,
            metadata={
                "num_topologies": self.num_topologies,
                "evaluation": self.evaluation,
                "seed": self.seed,
            },
        )
