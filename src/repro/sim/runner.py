"""Multi-topology sweep runner and experiment results.

The paper's figures sweep one parameter (capacity, server count, user
count), averaging each point over 100 random topologies. ``SweepRunner``
reproduces that shape: for every sweep value and topology seed it builds a
scenario (a sparse-primary :class:`~repro.core.placement.
PlacementInstance` — one problem artifact shared from the topology layer
down to the solvers), runs each algorithm, scores the placement (expected
hit ratio by default, Rayleigh Monte Carlo optionally), and aggregates
mean/std series.

Topology seeds are mutually independent, so ``workers=N`` fans the
per-(sweep point, topology-slice) tasks across a process pool. Every
task's scenario seed is fixed up front in the parent (deterministic
seed-per-task scheduling), each worker runs exactly the code the serial
loop runs, and results are folded into the series accumulators in the
serial loop's order — so the resulting ``ExperimentResult`` hit-ratio
series are *bit-identical* to ``workers=1`` (asserted by the test
suite). Only the measured ``runtimes`` vary, as wall-clock always does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import SolverResult
from repro.sim.config import ScenarioConfig
from repro.sim.evaluator import EvalSpec, PlacementEvaluator
from repro.sim.scenario import Scenario, build_scenario
from repro.utils.stats import RunningStats, SeriesStats
from repro.utils.tables import format_table

#: An algorithm is anything with ``solve(instance) -> SolverResult``.
Solver = Any


def scenario_seed(root_seed: int, x_index: int, topology_index: int) -> int:
    """The scenario seed of one (sweep point, topology) grid cell.

    The single source of truth for the sweep seed derivation: the
    serial loop, the process fan-out and the ``repro.exec`` task grid
    all call this, so cached/resumed tasks can never fold outcomes
    computed under a different stream. (Python hashes of int tuples are
    process-stable; ``PYTHONHASHSEED`` only perturbs str/bytes.)
    """
    return hash((root_seed, x_index, topology_index)) % (2**31)


def library_rng_tag(x_index: int) -> str:
    """RNG-child tag of sweep point ``x_index``'s shared model library."""
    return f"library-x{x_index}"


def sweep_metadata(
    num_topologies: int, evaluation: str, seed: int, workers: int
) -> Dict[str, Any]:
    """The metadata dict every executed sweep carries.

    Shared by :meth:`SweepRunner.run` and the ``repro.exec`` grid
    executor so their results stay byte-identical — a key added to one
    path cannot silently diverge from the other (cached artifacts
    embed this dict verbatim).
    """
    return {
        "num_topologies": num_topologies,
        "evaluation": evaluation,
        "seed": seed,
        "workers": workers,
    }


@dataclass
class ExperimentResult:
    """One reproduced figure/table: x values + one series per algorithm."""

    name: str
    x_label: str
    x_values: Sequence[float]
    series: Dict[str, SeriesStats]
    runtimes: Dict[str, SeriesStats] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def mean_of(self, algorithm: str) -> np.ndarray:
        """Mean hit-ratio series of one algorithm."""
        return self.series[algorithm].means

    def to_table(self, float_format: str = ".4f") -> str:
        """Render the result as a paper-style ASCII table."""
        algorithms = list(self.series)
        headers = [self.x_label]
        for algorithm in algorithms:
            headers.extend([f"{algorithm} (mean)", f"{algorithm} (std)"])
        rows = []
        for index, x_value in enumerate(self.x_values):
            row: List[Any] = [x_value]
            for algorithm in algorithms:
                stats = self.series[algorithm]
                row.extend([float(stats.means[index]), float(stats.stds[index])])
            rows.append(row)
        return format_table(headers, rows, float_format=float_format, title=self.name)


@dataclass
class AlgorithmComparison:
    """Hit ratio + runtime per algorithm at one fixed setting.

    The shape of the Fig. 6 panels and the point ablations: no sweep
    axis, one accumulator pair per algorithm.
    """

    name: str
    hit_ratios: Dict[str, RunningStats]
    runtimes: Dict[str, RunningStats]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def mean_hit(self, algorithm: str) -> float:
        """Mean hit ratio of one algorithm."""
        return self.hit_ratios[algorithm].mean

    def mean_runtime(self, algorithm: str) -> float:
        """Mean wall-clock runtime of one algorithm."""
        return self.runtimes[algorithm].mean

    def speedup(self, fast: str, slow: str) -> float:
        """How many times faster ``fast`` is than ``slow``."""
        fast_time = self.mean_runtime(fast)
        if fast_time == 0:
            return float("inf")
        return self.mean_runtime(slow) / fast_time

    def to_table(self) -> str:
        """Rows: algorithm, mean/std hit ratio, mean runtime."""
        rows = []
        for algorithm in self.hit_ratios:
            rows.append(
                [
                    algorithm,
                    self.hit_ratios[algorithm].mean,
                    self.hit_ratios[algorithm].std,
                    f"{self.runtimes[algorithm].mean:.3e}",
                ]
            )
        return format_table(
            ["algorithm", "hit ratio (mean)", "hit ratio (std)", "runtime (s)"],
            rows,
            title=self.name,
        )


@dataclass
class Fig7Result:
    """Hit-ratio time series per algorithm under user mobility."""

    times_s: np.ndarray
    series: Dict[str, SeriesStats]

    def degradation(self, algorithm: str) -> float:
        """Relative hit-ratio drop from t=0 to the horizon end."""
        means = self.series[algorithm].means
        if means[0] == 0:
            return 0.0
        return float((means[0] - means[-1]) / means[0])

    def to_table(self) -> str:
        """Rows: time (min), one mean column per algorithm."""
        algorithms = list(self.series)
        headers = ["time (min)"] + algorithms
        rows = []
        for index, t in enumerate(self.times_s):
            row: List[Any] = [float(t / 60.0)]
            row.extend(
                float(self.series[algo].means[index]) for algo in algorithms
            )
            rows.append(row)
        return format_table(
            headers, rows, title="Fig. 7 — cache hit ratio over time (mobility)"
        )


@dataclass
class ReplacementAblation:
    """Per-threshold outcome of the §IV-A re-placement loop."""

    thresholds: Sequence[float]
    mean_hit: Dict[float, RunningStats]
    replacements: Dict[float, RunningStats]
    bytes_shipped: Dict[float, RunningStats]

    def to_table(self) -> str:
        """Rows: threshold, time-avg hit ratio, replacements, traffic."""
        rows = []
        for threshold in self.thresholds:
            rows.append(
                [
                    "never" if threshold == 0 else f"{threshold:.2f}",
                    self.mean_hit[threshold].mean,
                    self.replacements[threshold].mean,
                    f"{self.bytes_shipped[threshold].mean / 1e6:.0f} MB",
                ]
            )
        return format_table(
            [
                "replace when below",
                "time-avg hit ratio",
                "replacements",
                "backbone traffic",
            ],
            rows,
            title="Ablation — threshold-triggered re-placement (2 h horizon)",
        )


def _score_result(
    scenario: Scenario,
    result: SolverResult,
    evaluation: str,
    num_realizations: int,
    seed: int,
    sample_users: Optional[int] = None,
    sample_strata: int = 4,
) -> float:
    """Score one solver result (shared by the serial and worker paths)."""
    if evaluation == "expected":
        return result.hit_ratio
    evaluator = PlacementEvaluator(scenario)
    if evaluation == "sampled":
        spec = EvalSpec(
            sample_users=int(sample_users),
            strata=sample_strata,
            seed=seed,
        )
        return evaluator.sampled_hit_ratio(result.placement, spec).estimate
    outcome = evaluator.monte_carlo_hit_ratio(
        result.placement, num_realizations, seed
    )
    return outcome.mean


def _run_sweep_slice(
    task: Tuple,
) -> List[Dict[str, Tuple[float, float]]]:
    """Run one (sweep point, topology-slice) task.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; the serial path calls it directly, which is what makes the
    parallel results bit-identical — both paths are literally this code.
    Returns, per topology seed in order, ``{algo: (score, runtime_s)}``.
    """
    (
        config,
        scenario_seeds,
        algorithms,
        evaluation,
        num_realizations,
        library,
        feasibility,
        sample_users,
        sample_strata,
    ) = task
    from repro import obs

    outcomes: List[Dict[str, Tuple[float, float]]] = []
    for scenario_seed in scenario_seeds:
        with obs.span("task.scenario_build"):
            scenario = build_scenario(
                config, scenario_seed, library=library, feasibility=feasibility
            )
        per_algo: Dict[str, Tuple[float, float]] = {}
        for algo_name, solver in algorithms.items():
            with obs.span("task.solve", algo=algo_name):
                result = solver.solve(scenario.instance)
            with obs.span("task.eval", evaluation=evaluation):
                score = _score_result(
                    scenario,
                    result,
                    evaluation,
                    num_realizations,
                    scenario_seed,
                    sample_users,
                    sample_strata,
                )
            per_algo[algo_name] = (score, result.runtime_s)
        outcomes.append(per_algo)
    return outcomes


class SweepRunner:
    """Run algorithms over a one-parameter sweep of scenarios.

    Parameters
    ----------
    base_config:
        Scenario configuration shared by all sweep points.
    algorithms:
        Mapping name -> solver. Fresh solver state is the caller's
        responsibility (all built-in solvers are stateless).
    num_topologies:
        Independent topologies per sweep point (paper: 100).
    evaluation:
        ``"expected"`` scores with the objective ``U(X)``;
        ``"monte_carlo"`` additionally averages over Rayleigh fading;
        ``"sampled"`` estimates the expected hit ratio from a
        stratified user sample (``sample_users`` required) — the
        million-user sweeps' evaluator.
    num_realizations:
        Fading draws per topology for Monte-Carlo evaluation.
    seed:
        Root seed; topology ``t`` of sweep point ``v`` derives its own
        stream, so points and repetitions are independent.
    share_library:
        Build the model library once per sweep point and reuse it across
        topologies (the paper fixes the library; topologies vary only in
        geometry/QoS/demand).
    workers:
        Process-pool width for the topology fan-out. ``1`` (default)
        runs in-process; any value yields bit-identical hit-ratio series
        because every task's seed is fixed in the parent and aggregation
        replays the serial order. Tasks are sliced so each worker keeps
        one shared library (and its solver-side caches) warm per slice.
    feasibility:
        Instance representation passed to ``build_scenario``:
        ``"sparse"`` (default, CSR-primary) or ``"dense"`` (the seed's
        up-front tensor; kept for benchmarking the old pipeline).
    backend:
        An explicit :class:`~repro.exec.backends.ExecutionBackend` for
        the task fan-out. ``None`` (default) derives one from
        ``workers``: in-process for ``workers=1``, a process pool
        otherwise — the pre-backend behaviour. Any backend yields
        bit-identical series (seeds are parent-fixed, folding replays
        the serial order).
    sample_users:
        Stratified sample size per topology for ``evaluation="sampled"``
        (sampling seed = the cell's scenario seed, so runs reproduce).
    sample_strata:
        Number of contiguous index strata for the sampled evaluator.
    """

    def __init__(
        self,
        base_config: ScenarioConfig,
        algorithms: Mapping[str, Solver],
        num_topologies: int = 20,
        evaluation: str = "expected",
        num_realizations: int = 200,
        seed: int = 0,
        share_library: bool = True,
        workers: int = 1,
        feasibility: str = "sparse",
        backend: Optional[Any] = None,
        sample_users: Optional[int] = None,
        sample_strata: int = 4,
    ) -> None:
        if not algorithms:
            raise ValueError("at least one algorithm is required")
        if num_topologies < 1:
            raise ValueError("num_topologies must be at least 1")
        if evaluation not in ("expected", "monte_carlo", "sampled"):
            raise ValueError(
                f"evaluation must be 'expected', 'monte_carlo' or "
                f"'sampled', got {evaluation!r}"
            )
        if evaluation == "sampled" and sample_users is None:
            raise ValueError("evaluation='sampled' requires sample_users")
        if sample_users is not None and evaluation != "sampled":
            raise ValueError(
                "sample_users only applies to evaluation='sampled'"
            )
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if feasibility not in ("sparse", "dense"):
            raise ValueError(
                f"feasibility must be 'sparse' or 'dense', got {feasibility!r}"
            )
        self.base_config = base_config
        self.algorithms = dict(algorithms)
        self.num_topologies = num_topologies
        self.evaluation = evaluation
        self.num_realizations = num_realizations
        self.seed = seed
        self.share_library = share_library
        self.workers = workers
        self.feasibility = feasibility
        self.backend = backend
        self.sample_users = sample_users
        self.sample_strata = sample_strata

    # ------------------------------------------------------------------
    def _build_tasks(
        self, x_values: Sequence[float], config_for
    ) -> List[Tuple[int, Tuple]]:
        """Deterministic (x_index, task) list, seeds fixed in the parent.

        Each sweep point's topologies are split into ``workers``
        contiguous slices; a slice carries its shared library once, so
        workers amortise library pickling and per-library solver caches
        across the slice exactly like the serial loop does.
        """
        from repro.sim.scenario import build_library  # local: avoids cycle
        from repro.utils.rng import RngFactory

        slices = max(1, min(self.workers, self.num_topologies))
        per_slice = -(-self.num_topologies // slices)  # ceil division
        tasks: List[Tuple[int, Tuple]] = []
        for x_index, x_value in enumerate(x_values):
            config = config_for(self.base_config, x_value)
            library = None
            if self.share_library:
                factory = RngFactory(self.seed)
                library = build_library(
                    config, factory.child(library_rng_tag(x_index))
                )
            seeds = [
                scenario_seed(self.seed, x_index, topology_index)
                for topology_index in range(self.num_topologies)
            ]
            for start in range(0, self.num_topologies, per_slice):
                tasks.append(
                    (
                        x_index,
                        (
                            config,
                            seeds[start : start + per_slice],
                            self.algorithms,
                            self.evaluation,
                            self.num_realizations,
                            library,
                            self.feasibility,
                            self.sample_users,
                            self.sample_strata,
                        ),
                    )
                )
        return tasks

    def run(
        self,
        name: str,
        x_label: str,
        x_values: Sequence[float],
        config_for: Callable[[ScenarioConfig, float], ScenarioConfig],
    ) -> ExperimentResult:
        """Execute the sweep.

        Parameters
        ----------
        config_for:
            Maps ``(base_config, x_value)`` to the sweep point's config.
        """
        series = {
            algo: SeriesStats(list(x_values)) for algo in self.algorithms
        }
        runtimes = {
            algo: SeriesStats(list(x_values)) for algo in self.algorithms
        }
        # The fan-out lives in the execution-backend layer; the legacy
        # ``workers`` knob maps onto serial / process-pool backends.
        # Local import: repro.exec.executor imports this module.
        from repro.exec.backends import ProcessBackend, SerialBackend

        tasks = self._build_tasks(x_values, config_for)
        payloads = [payload for _, payload in tasks]
        backend = self.backend
        if backend is None:
            backend = (
                ProcessBackend(workers=self.workers)
                if self.workers > 1
                else SerialBackend()
            )
        outcomes = list(backend.map(_run_sweep_slice, payloads))
        # Fold in submission order — exactly the serial nesting, so the
        # accumulated series are bit-identical for any worker count.
        for (x_index, _), slice_outcomes in zip(tasks, outcomes):
            for per_algo in slice_outcomes:
                for algo_name in self.algorithms:
                    score, runtime_s = per_algo[algo_name]
                    series[algo_name].add(x_index, score)
                    runtimes[algo_name].add(x_index, runtime_s)
        return ExperimentResult(
            name=name,
            x_label=x_label,
            x_values=list(x_values),
            series=series,
            runtimes=runtimes,
            metadata=sweep_metadata(
                self.num_topologies, self.evaluation, self.seed, self.workers
            ),
        )
