"""Scenario assembly: config + RNG -> one solvable snapshot.

A :class:`Scenario` bundles the network topology, model library, demand
matrix and the derived :class:`~repro.core.placement.PlacementInstance`.
Construction is fully deterministic given ``(config, seed)``; independent
seeds yield the independent topologies the paper averages over.

Instances are built *sparse-primary* by default: the feasibility
indicator is produced as a :class:`~repro.core.sparse.SparseFeasibility`
CSR artifact (the ``(M, K, I)`` float latency tensor is never
materialised) and the dense boolean tensor is derived lazily only if a
dense consumer asks for it. The CSR encodes a bit-identical indicator,
so this is purely a representation change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.placement import PlacementInstance
from repro.models.generators import (
    GeneralCaseConfig,
    SpecialCaseConfig,
    build_general_case_library,
    build_special_case_library,
)
from repro.models.library import ModelLibrary
from repro.models.popularity import ZipfPopularity
from repro.network.backhaul import Backhaul
from repro.network.channel import ChannelModel
from repro.network.geometry import uniform_coords, uniform_points
from repro.network.latency import LatencyModel
from repro.network.servers import EdgeServer
from repro.network.topology import NetworkTopology
from repro.network.users import User, UserBatch, users_from_batch
from repro.sim.config import ScenarioConfig
from repro.utils.rng import RngFactory


@dataclass
class Scenario:
    """One fully materialised simulation snapshot."""

    config: ScenarioConfig
    topology: NetworkTopology
    library: ModelLibrary
    demand: np.ndarray
    latency_model: LatencyModel
    instance: PlacementInstance
    seed: Optional[int] = None

    @property
    def num_servers(self) -> int:
        """``M``."""
        return self.topology.num_servers

    @property
    def num_users(self) -> int:
        """``K``."""
        return self.topology.num_users

    @property
    def num_models(self) -> int:
        """``I``."""
        return self.library.num_models

    def rebuild_instance(self, topology: NetworkTopology) -> PlacementInstance:
        """A new instance for moved users (same library/demand/capacity)."""
        latency = LatencyModel(topology, self._model_sizes())
        return PlacementInstance(
            library=self.library,
            demand=self.demand,
            feasible=latency.feasibility_sparse(),
            capacities=self.instance.capacities,
        )

    def _model_sizes(self) -> np.ndarray:
        return np.array(
            [self.library.model_size(i) for i in self.library.model_ids],
            dtype=float,
        )


def build_library(config: ScenarioConfig, seed) -> ModelLibrary:
    """Build the library dictated by ``config.library_case``."""
    if config.library_case == "special":
        return build_special_case_library(
            SpecialCaseConfig(num_models=config.num_models), seed
        )
    return build_general_case_library(
        GeneralCaseConfig(num_models=config.num_models), seed
    )


def _build_demand(config: ScenarioConfig, rng) -> np.ndarray:
    """Zipf demand, optionally restricted to per-user request subsets.

    The paper's per-figure "I = 30" denotes how many models each user may
    request from the (much larger) library; requests within the subset
    are Zipf-distributed and each row sums to one.

    ``rng_scheme="v1"`` is the seed's per-user draw order, verbatim —
    default series depend on it bit-for-bit. ``"v2"`` draws the same
    distributions in batched passes (:func:`_build_demand_v2`).
    """
    if config.rng_scheme == "v2":
        if config.chunk_size is not None:
            return _build_demand_v2_chunked(config, rng, config.chunk_size)
        return _build_demand_v2(config, rng)
    popularity = ZipfPopularity(
        exponent=config.zipf_exponent,
        per_user_permutation=config.per_user_popularity,
    )
    if config.requests_per_user is None:
        return popularity.probabilities(
            config.num_users, config.num_models, rng
        )
    subset_size = config.requests_per_user
    compact = popularity.probabilities(config.num_users, subset_size, rng)
    demand = np.zeros((config.num_users, config.num_models))
    for user in range(config.num_users):
        chosen = rng.choice(config.num_models, size=subset_size, replace=False)
        demand[user, chosen] = compact[user]
    return demand


def _build_demand_v2(config: ScenarioConfig, rng) -> np.ndarray:
    """Batched Zipf demand (``rng_scheme="v2"``).

    The per-user subset draw is one ``rng.permuted`` pass: each row of a
    tiled ``arange`` is shuffled independently and its first
    ``requests_per_user`` entries are that user's subset — an ordered
    uniform sample without replacement, exactly the distribution of the
    v1 per-user ``rng.choice(..., replace=False)`` calls. A single
    ``put_along_axis`` gather then scatters the compact Zipf rows into
    the full demand matrix.
    """
    popularity = ZipfPopularity(
        exponent=config.zipf_exponent,
        per_user_permutation=config.per_user_popularity,
    )
    if config.requests_per_user is None:
        return popularity.probabilities_batched(
            config.num_users, config.num_models, rng
        )
    subset_size = config.requests_per_user
    compact = popularity.probabilities_batched(
        config.num_users, subset_size, rng
    )
    shuffled = rng.permuted(
        np.tile(np.arange(config.num_models), (config.num_users, 1)), axis=1
    )
    chosen = shuffled[:, :subset_size]
    demand = np.zeros((config.num_users, config.num_models))
    np.put_along_axis(demand, chosen, compact, axis=1)
    return demand


def _build_demand_v2_chunked(
    config: ScenarioConfig, rng, chunk_size: int
) -> np.ndarray:
    """Row-blocked :func:`_build_demand_v2` — identical matrix.

    Per-row draws (``rng.permuted`` shuffles, row gathers) consume the
    stream row by row, so running them over user blocks reproduces the
    full-matrix calls exactly — provided the *stage* order is preserved:
    the unchunked build draws ALL popularity rows first, then ALL subset
    permutations, so the chunked build loops users within each stage
    rather than interleaving stages per chunk. The tiled shuffle scratch
    shrinks from ``(K, I)`` to ``(chunk_size, I)``; the compact Zipf rows
    must persist between the stages, which is the price of bit-identity.
    """
    popularity = ZipfPopularity(
        exponent=config.zipf_exponent,
        per_user_permutation=config.per_user_popularity,
    )
    if config.requests_per_user is None:
        return popularity.probabilities_batched_chunked(
            config.num_users, config.num_models, chunk_size, rng
        )
    subset_size = config.requests_per_user
    compact = popularity.probabilities_batched_chunked(
        config.num_users, subset_size, chunk_size, rng
    )
    demand = np.zeros((config.num_users, config.num_models))
    for start in range(0, config.num_users, chunk_size):
        stop = min(start + chunk_size, config.num_users)
        shuffled = rng.permuted(
            np.tile(np.arange(config.num_models), (stop - start, 1)), axis=1
        )
        np.put_along_axis(
            demand[start:stop],
            shuffled[:, :subset_size],
            compact[start:stop],
            axis=1,
        )
    return demand


def build_scenario(
    config: ScenarioConfig = ScenarioConfig(),
    seed: Optional[int] = 0,
    library: Optional[ModelLibrary] = None,
    feasibility: str = "sparse",
) -> Scenario:
    """Materialise one snapshot of the paper's §VII-A setup.

    Parameters
    ----------
    config:
        Scenario knobs.
    seed:
        Root seed; child streams are derived per component, so two
        scenarios differing only in the seed share no randomness.
    library:
        Reuse an existing library instead of generating one (the paper
        fixes the library across topologies; the sweep runner uses this).
    feasibility:
        ``"sparse"`` (default) stores the indicator as a CSR artifact;
        ``"dense"`` materialises the seed's boolean tensor up front. The
        two instances are interchangeable (bit-identical indicator);
        ``"dense"`` exists for benchmarking the pre-sparse pipeline.
    """
    if feasibility not in ("sparse", "dense"):
        raise ValueError(
            f"feasibility must be 'sparse' or 'dense', got {feasibility!r}"
        )
    chunked = config.rng_scheme == "v2" and config.chunk_size is not None
    if chunked and feasibility != "sparse":
        raise ValueError(
            "chunk_size requires feasibility='sparse': the dense tensor "
            "the chunked build exists to avoid cannot be materialised"
        )
    factory = RngFactory(seed)
    if library is None:
        library = build_library(config, factory.child("library"))
    if library.num_models != config.num_models:
        # The caller supplied a pre-built library; follow its size.
        config = config.with_overrides(num_models=library.num_models)

    channel = ChannelModel(
        antenna_gain=config.antenna_gain,
        path_loss_exponent=config.path_loss_exponent,
    )
    backhaul = Backhaul(default_rate_bps=config.backhaul_rate_bps)

    server_positions = uniform_points(
        config.num_servers, config.area_side_m, factory.child("server-positions")
    )
    capacities = (
        list(config.storage_bytes_per_server)
        if config.storage_bytes_per_server is not None
        else [config.storage_bytes] * config.num_servers
    )
    servers = [
        EdgeServer(
            server_id=index,
            position=position,
            storage_bytes=capacities[index],
            total_bandwidth_hz=config.total_bandwidth_hz,
            total_power_watts=config.total_power_watts,
            coverage_radius_m=config.coverage_radius_m,
        )
        for index, position in enumerate(server_positions)
    ]

    user_pos_rng = factory.child("user-positions")
    if chunked:
        # Raw coordinates only: same uniform draw as uniform_points,
        # without K Point objects. The batch path below keeps the whole
        # population array-backed end to end.
        user_coords = uniform_coords(
            config.num_users, config.area_side_m, user_pos_rng
        )
        user_positions = None
    else:
        user_positions = uniform_points(
            config.num_users, config.area_side_m, user_pos_rng
        )
    qos_rng = factory.child("qos")
    if config.rng_scheme == "v2":
        # Batched QoS: one (K, I) uniform block per quantity instead of
        # two K-long loops of per-user draws, then the batch-validated
        # constructor. Same distributions, different stream layout. The
        # matrices are retained by the topology either way, so the
        # chunked build draws them whole too (chunking the draw would
        # be stream-identical but save nothing).
        deadlines = qos_rng.uniform(
            config.deadline_range_s[0],
            config.deadline_range_s[1],
            size=(config.num_users, config.num_models),
        )
        inference = qos_rng.uniform(
            config.inference_latency_range_s[0],
            config.inference_latency_range_s[1],
            size=(config.num_users, config.num_models),
        )
        if chunked:
            users: "UserBatch | list[User]" = UserBatch(
                user_coords, deadlines, inference, config.active_probability
            )
        else:
            users = users_from_batch(
                user_positions, deadlines, inference, config.active_probability
            )
    else:
        users = [
            User(
                user_id=index,
                position=position,
                deadlines_s=qos_rng.uniform(
                    config.deadline_range_s[0],
                    config.deadline_range_s[1],
                    size=config.num_models,
                ),
                inference_latency_s=qos_rng.uniform(
                    config.inference_latency_range_s[0],
                    config.inference_latency_range_s[1],
                    size=config.num_models,
                ),
                active_probability=config.active_probability,
            )
            for index, position in enumerate(user_positions)
        ]

    from repro import obs

    topology = NetworkTopology(servers, users, channel, backhaul)
    with obs.span("scenario.demand"):
        demand = _build_demand(config, factory.child("demand"))

    sizes = np.array(
        [library.model_size(i) for i in library.model_ids], dtype=float
    )
    latency_model = LatencyModel(topology, sizes)
    instance = PlacementInstance(
        library=library,
        demand=demand,
        feasible=(
            latency_model.feasibility_sparse_chunked(config.chunk_size)
            if chunked
            else latency_model.feasibility_sparse()
            if feasibility == "sparse"
            else latency_model.feasibility()
        ),
        capacities=capacities,
    )
    return Scenario(
        config=config,
        topology=topology,
        library=library,
        demand=demand,
        latency_model=latency_model,
        instance=instance,
        seed=seed,
    )
