"""Persist placements, experiment results and executed plans.

Operators need placement decisions to outlive the process that computed
them (the cloud pushes models in an offline stage, §III-A), and
reproduced figures should be comparable across runs. This module
round-trips :class:`~repro.core.placement.Placement` objects,
:class:`~repro.sim.runner.ExperimentResult` series and executed-plan
:class:`~repro.api.run.ResultSet` payloads as JSON (and exports series
as CSV). Every ``*_to_json`` here has a matching ``*_from_json`` and the
``to_json → from_json → to_json`` composition is the identity (property-
tested in ``tests/sim/test_serialization.py``).
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Dict, Optional

from repro.core.placement import Placement
from repro.errors import PlacementError, ReproError
from repro.sim.runner import ExperimentResult
from repro.utils.stats import SeriesStats

#: Format tag embedded in every serialised placement.
_PLACEMENT_FORMAT = "trimcaching-placement-v1"
#: Format tag embedded in every serialised experiment result.
_EXPERIMENT_FORMAT = "trimcaching-experiment-v1"
#: Format tag embedded in every serialised executed plan (ResultSet).
_RESULT_SET_FORMAT = "trimcaching-result-set-v1"


def placement_to_dict(placement: Placement) -> Dict[str, Any]:
    """A JSON-ready description of a placement."""
    return {
        "format": _PLACEMENT_FORMAT,
        "num_servers": placement.num_servers,
        "num_models": placement.num_models,
        "servers": {
            str(server): placement.models_on(server)
            for server in range(placement.num_servers)
            if placement.models_on(server)
        },
    }


def placement_from_dict(payload: Dict[str, Any]) -> Placement:
    """Rebuild a placement from :func:`placement_to_dict` output."""
    if payload.get("format") != _PLACEMENT_FORMAT:
        raise PlacementError(
            f"unrecognised placement payload format: {payload.get('format')!r}"
        )
    try:
        num_servers = int(payload["num_servers"])
        num_models = int(payload["num_models"])
        servers = payload["servers"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PlacementError(f"malformed placement payload: {exc}") from exc
    placement = Placement.from_server_sets(
        num_servers,
        num_models,
        {int(server): indices for server, indices in servers.items()},
    )
    return placement


def placement_to_json(placement: Placement) -> str:
    """Serialise a placement to a JSON string."""
    return json.dumps(placement_to_dict(placement), indent=1, sort_keys=True)


def placement_from_json(text: str) -> Placement:
    """Parse a placement from :func:`placement_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlacementError(f"invalid placement JSON: {exc}") from exc
    return placement_from_dict(payload)


def _extremum(value: float) -> Optional[float]:
    # Non-finite extrema (empty accumulator's ±inf, legacy-restored NaN)
    # serialise as null: bare NaN/Infinity tokens are not RFC 8259 JSON
    # and would make the files unreadable outside Python.
    return float(value) if math.isfinite(value) else None


def _series_to_dict(series: Dict[str, SeriesStats]) -> Dict[str, Any]:
    # min/max ride along with the Welford moments so a restored
    # accumulator reports the true observed extrema (not a NaN
    # placeholder) and the to_json -> from_json round trip is lossless.
    return {
        algo: {
            "mean": [float(v) for v in stats.means],
            "std": [float(v) for v in stats.stds],
            "count": [int(v) for v in stats.counts],
            "min": [_extremum(v) for v in stats.minima],
            "max": [_extremum(v) for v in stats.maxima],
        }
        for algo, stats in series.items()
    }


def _series_from_dict(
    payload: Dict[str, Any], x_values: list
) -> Dict[str, SeriesStats]:
    # "min"/"max" are absent from pre-extrema payloads; from_moments
    # then falls back to the NaN placeholder for non-empty accumulators.
    return {
        algo: SeriesStats.from_moments(
            x_values,
            moments["mean"],
            moments["std"],
            moments["count"],
            minima=moments.get("min"),
            maxima=moments.get("max"),
        )
        for algo, moments in payload.items()
    }


def experiment_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-ready description of a reproduced figure."""
    return {
        "format": _EXPERIMENT_FORMAT,
        "name": result.name,
        "x_label": result.x_label,
        "x_values": [float(x) for x in result.x_values],
        "series": _series_to_dict(result.series),
        "runtimes": _series_to_dict(result.runtimes),
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if isinstance(value, (str, int, float, bool))
        },
    }


def experiment_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`experiment_to_dict`."""
    if payload.get("format") != _EXPERIMENT_FORMAT:
        raise ReproError(
            f"unrecognised experiment payload format: {payload.get('format')!r}"
        )
    try:
        x_values = [float(x) for x in payload["x_values"]]
        return ExperimentResult(
            name=payload["name"],
            x_label=payload["x_label"],
            x_values=x_values,
            series=_series_from_dict(payload["series"], x_values),
            runtimes=_series_from_dict(payload.get("runtimes", {}), x_values),
            metadata=dict(payload.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed experiment payload: {exc}") from exc


def experiment_to_json(result: ExperimentResult) -> str:
    """Serialise a reproduced figure to JSON."""
    return json.dumps(experiment_to_dict(result), indent=1, sort_keys=True)


def experiment_from_json(text: str) -> ExperimentResult:
    """Parse a reproduced figure from :func:`experiment_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid experiment JSON: {exc}") from exc
    return experiment_from_dict(payload)


def result_set_to_dict(result) -> Dict[str, Any]:
    """A JSON-ready description of an executed plan (result + plan)."""
    from repro.api.plan import plan_to_dict

    payload = {
        "format": _RESULT_SET_FORMAT,
        "experiment": experiment_to_dict(result),
        "plan": None,
    }
    plan = getattr(result, "plan", None)
    if plan is not None:
        payload["plan"] = plan_to_dict(plan)
    return payload


def result_set_from_dict(payload: Dict[str, Any], registry=None):
    """Rebuild a :class:`~repro.api.run.ResultSet` from its dict form."""
    from repro.api.plan import plan_from_dict
    from repro.api.registry import SOLVERS
    from repro.api.run import ResultSet

    if payload.get("format") != _RESULT_SET_FORMAT:
        raise ReproError(
            f"unrecognised result-set payload format: {payload.get('format')!r}"
        )
    plan = None
    if payload.get("plan") is not None:
        plan = plan_from_dict(payload["plan"], registry or SOLVERS)
    experiment = experiment_from_dict(payload["experiment"])
    return ResultSet.from_experiment(experiment, plan)


def result_set_to_json(result) -> str:
    """Serialise an executed plan (result + plan provenance) to JSON."""
    return json.dumps(result_set_to_dict(result), indent=1, sort_keys=True)


def result_set_from_json(text: str, registry=None):
    """Parse a :class:`~repro.api.run.ResultSet` from its JSON form."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid result-set JSON: {exc}") from exc
    return result_set_from_dict(payload, registry)


def result_set_content_json(source) -> str:
    """Canonical JSON of everything **deterministic** in a result set.

    The repo invariant says every execution substrate must produce the
    same bits — but a result set also embeds per-solver wall-clock
    *runtimes*, which are measurements of the machine, not of the
    experiment: they differ between two serial runs of the very same
    plan. This view drops that one series and serialises the rest
    canonically (sorted keys, compact separators), so the equivalence
    suites and CI can compare executions with ``==``/``cmp`` — exact,
    never approximate — across backends, chaos schedules and resumes.

    ``source`` is a :class:`~repro.api.run.ResultSet` or its JSON text.
    """
    if isinstance(source, str):
        try:
            payload = json.loads(source)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid result-set JSON: {exc}") from exc
    else:
        payload = result_set_to_dict(source)
    if isinstance(payload.get("experiment"), dict):
        payload["experiment"].pop("runtimes", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def experiment_to_csv(result: ExperimentResult) -> str:
    """Serialise a reproduced figure to CSV (one row per sweep point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    algorithms = list(result.series)
    header = [result.x_label]
    for algo in algorithms:
        header.extend([f"{algo} mean", f"{algo} std"])
    writer.writerow(header)
    for index, x_value in enumerate(result.x_values):
        row = [x_value]
        for algo in algorithms:
            stats = result.series[algo]
            row.extend(
                [f"{stats.means[index]:.6f}", f"{stats.stds[index]:.6f}"]
            )
        writer.writerow(row)
    return buffer.getvalue()
