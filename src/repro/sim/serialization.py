"""Persist placements and experiment results.

Operators need placement decisions to outlive the process that computed
them (the cloud pushes models in an offline stage, §III-A), and
reproduced figures should be comparable across runs. This module
round-trips :class:`~repro.core.placement.Placement` objects and exports
:class:`~repro.sim.runner.ExperimentResult` series as JSON and CSV.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.sim.runner import ExperimentResult

#: Format tag embedded in every serialised placement.
_PLACEMENT_FORMAT = "trimcaching-placement-v1"


def placement_to_dict(placement: Placement) -> Dict[str, Any]:
    """A JSON-ready description of a placement."""
    return {
        "format": _PLACEMENT_FORMAT,
        "num_servers": placement.num_servers,
        "num_models": placement.num_models,
        "servers": {
            str(server): placement.models_on(server)
            for server in range(placement.num_servers)
            if placement.models_on(server)
        },
    }


def placement_from_dict(payload: Dict[str, Any]) -> Placement:
    """Rebuild a placement from :func:`placement_to_dict` output."""
    if payload.get("format") != _PLACEMENT_FORMAT:
        raise PlacementError(
            f"unrecognised placement payload format: {payload.get('format')!r}"
        )
    try:
        num_servers = int(payload["num_servers"])
        num_models = int(payload["num_models"])
        servers = payload["servers"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PlacementError(f"malformed placement payload: {exc}") from exc
    placement = Placement.from_server_sets(
        num_servers,
        num_models,
        {int(server): indices for server, indices in servers.items()},
    )
    return placement


def placement_to_json(placement: Placement) -> str:
    """Serialise a placement to a JSON string."""
    return json.dumps(placement_to_dict(placement), indent=1, sort_keys=True)


def placement_from_json(text: str) -> Placement:
    """Parse a placement from :func:`placement_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlacementError(f"invalid placement JSON: {exc}") from exc
    return placement_from_dict(payload)


def experiment_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-ready description of a reproduced figure."""
    return {
        "name": result.name,
        "x_label": result.x_label,
        "x_values": [float(x) for x in result.x_values],
        "series": {
            algo: {
                "mean": [float(v) for v in stats.means],
                "std": [float(v) for v in stats.stds],
                "count": [int(v) for v in stats.counts],
            }
            for algo, stats in result.series.items()
        },
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if isinstance(value, (str, int, float, bool))
        },
    }


def experiment_to_json(result: ExperimentResult) -> str:
    """Serialise a reproduced figure to JSON."""
    return json.dumps(experiment_to_dict(result), indent=1, sort_keys=True)


def experiment_to_csv(result: ExperimentResult) -> str:
    """Serialise a reproduced figure to CSV (one row per sweep point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    algorithms = list(result.series)
    header = [result.x_label]
    for algo in algorithms:
        header.extend([f"{algo} mean", f"{algo} std"])
    writer.writerow(header)
    for index, x_value in enumerate(result.x_values):
        row = [x_value]
        for algo in algorithms:
            stats = result.series[algo]
            row.extend(
                [f"{stats.means[index]:.6f}", f"{stats.stds[index]:.6f}"]
            )
        writer.writerow(row)
    return buffer.getvalue()
