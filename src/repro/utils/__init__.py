"""Shared low-level utilities: RNG management, units, stats, tables."""

from repro.utils.rng import RngFactory, as_generator
from repro.utils.stats import RunningStats, SeriesStats, aggregate_series
from repro.utils.tables import format_table
from repro.utils.units import (
    GB,
    GBPS,
    KB,
    MB,
    MBPS,
    MHZ,
    dbm_to_watts,
    format_size,
    watts_to_dbm,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "RunningStats",
    "SeriesStats",
    "aggregate_series",
    "format_table",
    "GB",
    "GBPS",
    "KB",
    "MB",
    "MBPS",
    "MHZ",
    "dbm_to_watts",
    "watts_to_dbm",
    "format_size",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_type",
]
