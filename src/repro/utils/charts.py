"""Plain-text line charts for terminal output.

The CLI reproduces *figures*; this module renders them as ASCII charts so
trends are visible without matplotlib (which the offline environment does
not ship). One chart plots several named series against shared x values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Markers assigned to series in declaration order.
_MARKERS = "*o+x#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 15,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render named series as a text line chart.

    Each series is drawn with its own marker; a legend follows the plot.
    Values are linearly binned onto a ``width x height`` character grid.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 3:
        raise ValueError("chart must be at least 10x3 characters")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    if len(x_values) < 2:
        raise ValueError("at least two x values are required")

    all_values = [float(v) for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high <= low:
        high = low + 1.0
    x_low, x_high = float(min(x_values)), float(max(x_values))
    if x_high <= x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def to_row(y: float) -> int:
        fraction = (float(y) - low) / (high - low)
        fraction = min(max(fraction, 0.0), 1.0)
        return (height - 1) - round(fraction * (height - 1))

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        # Connect consecutive points with interpolated markers.
        for (x0, y0), (x1, y1) in zip(
            zip(x_values, values), zip(list(x_values)[1:], list(values)[1:])
        ):
            c0, c1 = to_col(float(x0)), to_col(float(x1))
            steps = max(abs(c1 - c0), 1)
            for step in range(steps + 1):
                t = step / steps
                col = round(c0 + t * (c1 - c0))
                row = to_row(float(y0) + t * (float(y1) - float(y0)))
                grid[row][col] = marker

    y_labels = [f"{high:.3g}", f"{(low + high) / 2:.3g}", f"{low:.3g}"]
    label_width = max(len(label) for label in y_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        if row == 0:
            label = y_labels[0]
        elif row == height // 2:
            label = y_labels[1]
        elif row == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(grid[row])}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_left, x_right = f"{x_low:.3g}", f"{x_high:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(padding, 1)}{x_right}"
    )
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
