"""Deterministic random-number management.

Experiments in this package average over many independent network topologies
and fading realisations. To keep every run reproducible while still giving
each component an independent stream, we derive child generators from a
single root seed using ``numpy``'s ``SeedSequence`` spawning.

Example
-------
>>> factory = RngFactory(seed=7)
>>> topo_rng = factory.child("topology", 0)
>>> fading_rng = factory.child("fading", 0)

The two generators above are statistically independent, and re-creating the
factory with the same seed reproduces both streams exactly.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def _label_entropy(label: str) -> int:
    """Map a text label to a stable non-negative integer.

    ``hash()`` is salted per interpreter run, so we fold the raw bytes
    instead. The constant is the FNV-1a 64-bit prime/offset pair.
    """
    acc = 0xCBF29CE484222325
    for byte in label.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) % (1 << 64)
    return acc


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int`` seed, an existing generator (returned as-is), or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Spawn independent, reproducible random generators by label.

    Parameters
    ----------
    seed:
        Root seed. ``None`` draws fresh OS entropy (non-reproducible).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> Optional[int]:
        """The root seed this factory was created with."""
        return self._seed

    def child(self, label: str, index: int = 0) -> np.random.Generator:
        """Return an independent generator for ``(label, index)``.

        The same ``(seed, label, index)`` triple always yields the same
        stream, and distinct triples yield independent streams.
        """
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        entropy = self._root.entropy if self._root.entropy is not None else 0
        seq = np.random.SeedSequence(
            entropy=entropy,
            spawn_key=(_label_entropy(label), index),
        )
        return np.random.default_rng(seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngFactory(seed={self._seed!r})"
