"""Streaming statistics and series aggregation for experiment results.

The paper reports each point as a mean with a standard-deviation error bar
over 100 network topologies. :class:`RunningStats` accumulates those moments
without storing samples (Welford's algorithm), and :class:`SeriesStats`
aggregates one such accumulator per sweep point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np


class RunningStats:
    """Numerically stable streaming mean / variance (Welford).

    >>> s = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Exact std restored by :meth:`from_moments`; cleared by
        #: :meth:`add` (float round-trips of ``std -> m2 -> std`` can
        #: drift by an ulp, and serialisation must be the identity).
        self._pinned_std: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot accumulate NaN")
        self._pinned_std = None
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    def add_array(self, values: np.ndarray) -> None:
        """Fold a whole array of observations in one vectorised pass.

        Computes the chunk's moments with numpy reductions and merges
        them via Chan's parallel update — the streaming evaluator folds
        one chunk of per-user hit masses at a time this way. Count, min
        and max are exact; mean and variance agree with sequential
        :meth:`add` calls to floating-point accuracy (the summation
        order differs, so final ulps may differ — same caveat the sparse
        objective engine documents).
        """
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        if np.isnan(values).any():
            raise ValueError("cannot accumulate NaN")
        count = int(values.size)
        mean = float(values.mean())
        m2 = float(((values - mean) ** 2).sum())
        self._merge_moments(count, mean, m2, float(values.min()), float(values.max()))

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator's observations into this one.

        Chan's parallel-merge update: the result summarises the union of
        both sample sets (exact count/min/max; mean/variance to
        floating-point accuracy).
        """
        if other._count == 0:
            return
        self._merge_moments(
            other._count, other._mean, other._m2, other._min, other._max
        )

    def _merge_moments(
        self, count: int, mean: float, m2: float, minimum: float, maximum: float
    ) -> None:
        self._pinned_std = None
        if self._count == 0:
            self._count = count
            self._mean = mean
            self._m2 = m2
        else:
            total = self._count + count
            delta = mean - self._mean
            self._mean += delta * count / total
            self._m2 += m2 + delta * delta * self._count * count / total
            self._count = total
        self._min = min(self._min, minimum)
        self._max = max(self._max, maximum)

    @property
    def count(self) -> int:
        """Number of observations accumulated."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        if self._pinned_std is not None:
            return self._pinned_std**2
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        if self._pinned_std is not None and self._count >= 2:
            return self._pinned_std
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def confidence_interval(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation CI of the mean."""
        if self._count < 2:
            return 0.0
        return z * self.std / math.sqrt(self._count)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RunningStats(n={self._count}, mean={self.mean:.4g}, std={self.std:.4g})"

    @classmethod
    def from_moments(
        cls,
        count: int,
        mean: float,
        std: float,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> "RunningStats":
        """Rebuild an accumulator from its serialised moments.

        Used by the experiment deserialisers, which serialise the
        extrema alongside (count, mean, std) — pass them back here and
        ``minimum``/``maximum`` report the true observed values,
        completing the ``to_json -> from_json`` identity. Legacy
        payloads predating extrema serialisation omit them; the restored
        accumulator then reports NaN rather than a confidently wrong
        number — and stays NaN through further :meth:`add` calls,
        because the true extrema are unknowable once lost.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        stats = cls()
        stats._count = int(count)
        stats._mean = float(mean)
        stats._m2 = float(std) ** 2 * max(0, int(count) - 1)
        stats._pinned_std = float(std)
        if count:
            stats._min = math.nan if minimum is None else float(minimum)
            stats._max = math.nan if maximum is None else float(maximum)
        return stats


@dataclass
class SeriesStats:
    """Mean/std series over a parameter sweep, one accumulator per x value."""

    x_values: Sequence[float]
    _stats: List[RunningStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._stats:
            self._stats = [RunningStats() for _ in self.x_values]
        if len(self._stats) != len(self.x_values):
            raise ValueError("one accumulator required per x value")

    def add(self, index: int, value: float) -> None:
        """Add one observation at sweep position ``index``."""
        self._stats[index].add(value)

    def add_run(self, values: Sequence[float]) -> None:
        """Add a full sweep (one value per x) from a single run."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"expected {len(self.x_values)} values, got {len(values)}"
            )
        for index, value in enumerate(values):
            self.add(index, value)

    @property
    def means(self) -> np.ndarray:
        """Vector of per-point means."""
        return np.array([s.mean for s in self._stats])

    @property
    def stds(self) -> np.ndarray:
        """Vector of per-point standard deviations."""
        return np.array([s.std for s in self._stats])

    @property
    def counts(self) -> np.ndarray:
        """Vector of per-point observation counts."""
        return np.array([s.count for s in self._stats])

    def stat_at(self, index: int) -> RunningStats:
        """The per-point accumulator at sweep position ``index``."""
        return self._stats[index]

    @property
    def minima(self) -> np.ndarray:
        """Vector of per-point observed minima."""
        return np.array([s.minimum for s in self._stats])

    @property
    def maxima(self) -> np.ndarray:
        """Vector of per-point observed maxima."""
        return np.array([s.maximum for s in self._stats])

    @classmethod
    def from_moments(
        cls,
        x_values: Sequence[float],
        means: Sequence[float],
        stds: Sequence[float],
        counts: Sequence[int],
        minima: Optional[Sequence[float]] = None,
        maxima: Optional[Sequence[float]] = None,
    ) -> "SeriesStats":
        """Rebuild a series from serialised per-point moments.

        ``minima``/``maxima`` restore the per-point extrema when the
        payload carries them; omitted (legacy payloads), restored
        accumulators report NaN extrema.
        """
        if not (len(x_values) == len(means) == len(stds) == len(counts)):
            raise ValueError("moment vectors must have one entry per x value")
        for extrema in (minima, maxima):
            if extrema is not None and len(extrema) != len(x_values):
                raise ValueError(
                    "extrema vectors must have one entry per x value"
                )
        return cls(
            list(x_values),
            [
                RunningStats.from_moments(
                    count,
                    mean,
                    std,
                    minimum=None if minima is None else minima[index],
                    maximum=None if maxima is None else maxima[index],
                )
                for index, (count, mean, std) in enumerate(
                    zip(counts, means, stds)
                )
            ],
        )


def aggregate_series(
    x_values: Sequence[float],
    runs: Sequence[Sequence[float]],
) -> SeriesStats:
    """Build a :class:`SeriesStats` from a list of per-run sweeps."""
    series = SeriesStats(x_values)
    for run in runs:
        series.add_run(run)
    return series


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """One-shot mean/std/min/max summary of a sample."""
    stats = RunningStats()
    stats.extend(values)
    return {
        "count": float(stats.count),
        "mean": stats.mean,
        "std": stats.std,
        "min": stats.minimum if stats.count else float("nan"),
        "max": stats.maximum if stats.count else float("nan"),
    }


def relative_gain(candidate: float, baseline: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline``.

    Matches how the paper quotes e.g. "33.93% higher than Independent
    Caching": ``(candidate - baseline) / baseline``.
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero for a relative gain")
    return (candidate - baseline) / baseline


def average_relative_gain(
    candidate: Sequence[float], baseline: Sequence[float]
) -> float:
    """Mean of pointwise relative gains across a sweep."""
    if len(candidate) != len(baseline):
        raise ValueError("series must have equal length")
    if len(candidate) == 0:
        raise ValueError("series must be non-empty")
    gains = [relative_gain(c, b) for c, b in zip(candidate, baseline)]
    return float(np.mean(gains))
