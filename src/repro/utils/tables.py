"""Plain-text table rendering for experiment reports.

The benchmark harness prints each reproduced figure as rows (one per sweep
point) so the output can be compared side-by-side with the paper. This
module renders aligned ASCII tables with no third-party dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_format: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(format_table(["x", "y"], [[1, 2.0]], float_format=".1f"))
    x | y
    --+----
    1 | 2.0
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered.append([_render_cell(cell, float_format) for cell in row])

    widths = [len(h) for h in headers]
    for row in rendered:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)


def format_mapping(mapping: dict, *, title: Optional[str] = None) -> str:
    """Render a flat mapping as a two-column key/value table."""
    return format_table(
        ["key", "value"],
        [[key, value] for key, value in mapping.items()],
        title=title,
    )
