"""Physical and storage unit helpers.

Internally the package uses SI base units everywhere: bytes for storage,
bits-per-second for data rates, hertz for bandwidth, watts for power,
seconds for time, metres for distance. These constants and converters keep
configuration code readable (``1.5 * GB`` instead of ``1_500_000_000``).

Storage constants are decimal (as used by the paper's "GB"), not binary.
"""

from __future__ import annotations

import math

#: One kilobyte in bytes (decimal).
KB: int = 1_000
#: One megabyte in bytes (decimal).
MB: int = 1_000_000
#: One gigabyte in bytes (decimal).
GB: int = 1_000_000_000

#: One megabit per second, in bits per second.
MBPS: float = 1e6
#: One gigabit per second, in bits per second.
GBPS: float = 1e9

#: One megahertz, in hertz.
MHZ: float = 1e6


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> round(dbm_to_watts(30.0), 6)
    1.0
    """
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises
    ------
    ValueError
        If ``watts`` is not strictly positive (dBm is undefined there).
    """
    if watts <= 0:
        raise ValueError(f"power must be positive to express in dBm, got {watts}")
    return 10.0 * math.log10(watts) + 30.0


def format_size(num_bytes: float) -> str:
    """Render a byte count as a human-readable decimal string.

    >>> format_size(1_500_000_000)
    '1.50 GB'
    >>> format_size(250)
    '250 B'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    if num_bytes >= GB:
        return f"{num_bytes / GB:.2f} GB"
    if num_bytes >= MB:
        return f"{num_bytes / MB:.2f} MB"
    if num_bytes >= KB:
        return f"{num_bytes / KB:.2f} KB"
    return f"{num_bytes:.0f} B"


def format_rate(bits_per_second: float) -> str:
    """Render a data rate as a human-readable string.

    >>> format_rate(2.5e9)
    '2.50 Gbps'
    """
    if bits_per_second < 0:
        raise ValueError(f"rate must be non-negative, got {bits_per_second}")
    if bits_per_second >= GBPS:
        return f"{bits_per_second / GBPS:.2f} Gbps"
    if bits_per_second >= MBPS:
        return f"{bits_per_second / MBPS:.2f} Mbps"
    return f"{bits_per_second:.0f} bps"
