"""Small argument-validation helpers shared across the package.

These raise :class:`repro.errors.ConfigurationError` (a ``ValueError``
subclass) with uniform, descriptive messages, which keeps configuration
dataclasses short and their error messages consistent.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.errors import ConfigurationError

Number = Union[int, float]


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Ensure ``value`` is an instance of ``expected``; return it."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = " or ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise ConfigurationError(
            f"{name} must be {names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: Number, *, strict: bool = True) -> Number:
    """Ensure ``value`` is positive (strictly by default); return it."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: Number,
    low: Number,
    high: Number,
    *,
    inclusive: bool = True,
) -> Number:
    """Ensure ``low <= value <= high`` (or strict bounds); return it."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if inclusive:
        if not (low <= value <= high):
            raise ConfigurationError(
                f"{name} must be in [{low}, {high}], got {value}"
            )
    else:
        if not (low < value < high):
            raise ConfigurationError(
                f"{name} must be in ({low}, {high}), got {value}"
            )
    return value


def check_probability(name: str, value: Number) -> Number:
    """Ensure ``value`` is a probability in [0, 1]; return it."""
    return check_in_range(name, value, 0.0, 1.0)


def check_interval(name: str, interval: Tuple[Number, Number]) -> Tuple[Number, Number]:
    """Ensure ``interval`` is an ordered (low, high) pair; return it."""
    if (
        not isinstance(interval, (tuple, list))
        or len(interval) != 2
        or any(isinstance(v, bool) or not isinstance(v, (int, float)) for v in interval)
    ):
        raise ConfigurationError(
            f"{name} must be a (low, high) pair of numbers, got {interval!r}"
        )
    low, high = interval
    if low > high:
        raise ConfigurationError(
            f"{name} must satisfy low <= high, got ({low}, {high})"
        )
    return (low, high)
