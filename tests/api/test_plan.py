"""Tests for declarative plans: axes, validation, JSON round-trip."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ExperimentPlan,
    MobilitySpec,
    ReplacementSpec,
    SolverSpec,
    SweepSpec,
    axis_names,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    resolve_axis,
)
from repro.core.gen import GenConfig
from repro.core.spec import SpecConfig
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.utils.units import GB


class TestAxes:
    def test_named_axes_labels(self):
        assert resolve_axis("capacity").x_label == "Q (GB, paper scale)"
        assert resolve_axis("servers").x_label == "M"
        assert resolve_axis("users").x_label == "K"

    def test_capacity_axis_uses_scale(self):
        cfg = resolve_axis("capacity").apply(ScenarioConfig(), 1.0, 0.2)
        assert cfg.storage_bytes == int(1.0 * 0.2 * GB)

    def test_servers_axis_casts_int(self):
        cfg = resolve_axis("servers").apply(ScenarioConfig(), 8.0, 1.0)
        assert cfg.num_servers == 8

    def test_generic_float_field_axis(self):
        axis = resolve_axis("zipf_exponent")
        cfg = axis.apply(ScenarioConfig(), 1.1, 1.0)
        assert cfg.zipf_exponent == pytest.approx(1.1)

    def test_generic_int_field_axis_casts(self):
        axis = resolve_axis("num_models")
        cfg = axis.apply(ScenarioConfig(), 12.0, 1.0)
        assert cfg.num_models == 12
        assert isinstance(cfg.num_models, int)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            resolve_axis("warp-factor")

    def test_tuple_field_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_axis("deadline_range_s")

    def test_axis_names_lists_named_and_fields(self):
        names = axis_names()
        assert "capacity" in names
        assert "num_users" in names
        assert "deadline_range_s" not in names


def _sweep_plan(**overrides):
    defaults = dict(
        name="test sweep",
        sweep=SweepSpec("capacity", (0.5, 1.0)),
        solvers=(
            SolverSpec("spec", config=SpecConfig(epsilon=0.2)),
            SolverSpec("gen"),
        ),
        base={"library_case": "special", "num_models": 12},
        num_topologies=2,
        scale=0.2,
    )
    defaults.update(overrides)
    return ExperimentPlan(**defaults)


class TestPlanValidation:
    def test_kinds(self):
        assert _sweep_plan().kind == "sweep"
        assert (
            _sweep_plan(sweep=None).kind == "comparison"
        )
        assert _sweep_plan(sweep=None, study=MobilitySpec()).kind == "mobility"
        assert (
            _sweep_plan(sweep=None, study=ReplacementSpec()).kind
            == "replacement"
        )

    def test_needs_solvers(self):
        with pytest.raises(ConfigurationError, match="at least one solver"):
            _sweep_plan(solvers=())

    def test_sweep_and_study_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            _sweep_plan(study=MobilitySpec())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            _sweep_plan(solvers=(SolverSpec("gen"), SolverSpec("gen")))

    def test_distinct_labels_for_same_solver_ok(self):
        plan = _sweep_plan(
            solvers=(
                SolverSpec("gen", label="Gen A"),
                SolverSpec("gen", label="Gen B"),
            )
        )
        assert plan.labels() == ["Gen A", "Gen B"]

    def test_sweep_needs_points(self):
        with pytest.raises(ConfigurationError, match="at least one point"):
            SweepSpec("capacity", ())

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            _sweep_plan(scale=0.0)

    def test_base_config_matches_direct_construction(self):
        plan = _sweep_plan()
        assert plan.base_config() == ScenarioConfig(
            library_case="special", num_models=12
        )

    def test_base_list_normalised_to_tuple(self):
        plan = _sweep_plan(
            base={
                "library_case": "special",
                "num_servers": 2,
                "storage_bytes_per_server": [1 * GB, 2 * GB],
            }
        )
        assert plan.base["storage_bytes_per_server"] == (1 * GB, 2 * GB)
        assert plan.base_config().storage_bytes_per_server == (1 * GB, 2 * GB)

    def test_with_overrides(self):
        plan = _sweep_plan().with_overrides(seed=9, workers=3)
        assert plan.seed == 9
        assert plan.workers == 3
        assert plan.name == "test sweep"


class TestPlanJsonRoundTrip:
    def test_sweep_round_trip_equality(self):
        plan = _sweep_plan()
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_comparison_round_trip_equality(self):
        plan = _sweep_plan(sweep=None)
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_mobility_round_trip_equality(self):
        plan = _sweep_plan(
            sweep=None, study=MobilitySpec(horizon_s=600.0, num_runs=2)
        )
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_replacement_round_trip_equality(self):
        plan = _sweep_plan(
            sweep=None,
            study=ReplacementSpec(thresholds=(0.0, 0.9), num_runs=1),
        )
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_json_identity(self):
        text = plan_to_json(_sweep_plan())
        assert plan_to_json(plan_from_json(text)) == text

    def test_kind_is_serialised(self):
        payload = plan_to_dict(_sweep_plan(sweep=None))
        assert payload["kind"] == "comparison"

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            plan_from_dict({"format": "something-else"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid plan JSON"):
            plan_from_json("{not json")

    def test_unknown_study_type_rejected(self):
        payload = plan_to_dict(_sweep_plan(sweep=None, study=MobilitySpec()))
        payload["study"]["type"] = "teleportation"
        with pytest.raises(ConfigurationError, match="unknown study type"):
            plan_from_dict(payload)

    # -- property test: to_json -> from_json -> to_json is the identity --
    @settings(max_examples=40, deadline=None)
    @given(
        axis=st.sampled_from(["capacity", "servers", "users", "zipf_exponent"]),
        points=st.lists(
            st.floats(
                min_value=0.1, max_value=50, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=5,
        ),
        epsilon=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        topologies=st.integers(min_value=1, max_value=100),
        scale=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        engine=st.sampled_from(["dense", "sparse", "auto"]),
        accelerated=st.booleans(),
    )
    def test_property_round_trip_identity(
        self, axis, points, epsilon, seed, topologies, scale, engine, accelerated
    ):
        plan = ExperimentPlan(
            name=f"prop {axis}",
            sweep=SweepSpec(axis, tuple(points)),
            solvers=(
                SolverSpec(
                    "spec", config=SpecConfig(epsilon=epsilon, engine=engine)
                ),
                SolverSpec(
                    "gen", config=GenConfig(accelerated=accelerated)
                ),
                SolverSpec("independent"),
            ),
            base={"library_case": "special", "num_models": 12},
            num_topologies=topologies,
            seed=seed,
            scale=scale,
        )
        text = plan_to_json(plan)
        restored = plan_from_json(text)
        assert restored == plan
        assert plan_to_json(restored) == text
        assert json.loads(text)["format"] == "trimcaching-plan-v1"


class TestReviewRegressions:
    def test_resolved_label_collision_refused(self):
        """An explicit label colliding with another solver's registry
        label must raise, not silently drop a series."""
        plan = _sweep_plan(
            solvers=(
                SolverSpec("spec"),
                SolverSpec("gen", label="TrimCaching Spec"),
            )
        )
        with pytest.raises(ConfigurationError, match="unique"):
            plan.algorithms()

    def test_malformed_seed_raises_configuration_error(self):
        payload = plan_to_dict(_sweep_plan())
        payload["seed"] = "abc"
        with pytest.raises(ConfigurationError, match="malformed plan payload"):
            plan_from_dict(payload)

    def test_study_missing_type_raises_configuration_error(self):
        payload = plan_to_dict(_sweep_plan(sweep=None, study=MobilitySpec()))
        del payload["study"]["type"]
        with pytest.raises(ConfigurationError, match="unknown study type"):
            plan_from_dict(payload)

    def test_malformed_sweep_raises_configuration_error(self):
        payload = plan_to_dict(_sweep_plan())
        payload["sweep"] = {"points": [1.0]}  # axis missing
        with pytest.raises(ConfigurationError, match="malformed plan payload"):
            plan_from_dict(payload)

    def test_unknown_base_field_rejected_at_declaration(self):
        with pytest.raises(ConfigurationError, match="num_server"):
            _sweep_plan(base={"num_server": 4})

    def test_bad_base_value_rejected_at_declaration(self):
        with pytest.raises(ConfigurationError):
            _sweep_plan(base={"num_servers": -1})

    def test_bool_field_not_sweepable(self):
        with pytest.raises(ConfigurationError, match="cannot be swept"):
            resolve_axis("per_user_popularity")
        assert "per_user_popularity" not in axis_names()
        assert "library_case" not in axis_names()

    def test_base_is_read_only_after_validation(self):
        plan = _sweep_plan()
        with pytest.raises(TypeError):
            plan.base["num_users"] = -5

    def test_study_spec_fields_validated(self):
        with pytest.raises(ConfigurationError, match="sample_every"):
            MobilitySpec(sample_every=0)
        with pytest.raises(ConfigurationError, match="horizon_s"):
            ReplacementSpec(horizon_s=-5.0)
        with pytest.raises(ConfigurationError, match="check_every"):
            ReplacementSpec(check_every=0)


class TestPlanBuilderIndex:
    def test_every_figure_plan_builds_and_round_trips(self):
        """PLAN_BUILDERS is the canonical figure-plan index: every entry
        must build a valid plan whose JSON round-trip is lossless."""
        from repro.sim.experiments import PLAN_BUILDERS

        expected_kinds = {
            "fig4a": "sweep", "fig4b": "sweep", "fig4c": "sweep",
            "fig5a": "sweep", "fig5b": "sweep", "fig5c": "sweep",
            "fig6a": "comparison", "fig6b": "comparison",
            "fig7": "mobility",
            "ablation-epsilon": "comparison", "ablation-lazy": "comparison",
            "ablation-order": "comparison", "ablation-backend": "comparison",
            "ablation-replacement": "replacement",
        }
        assert set(PLAN_BUILDERS) == set(expected_kinds)
        for name, builder in PLAN_BUILDERS.items():
            plan = builder()
            assert plan.kind == expected_kinds[name], name
            assert plan_from_json(plan_to_json(plan)) == plan, name


class TestSamplingFields:
    """sample_users / sample_strata: validation and hash-stable serialisation."""

    def test_round_trip(self):
        plan = _sweep_plan(
            evaluation="sampled", sample_users=24, sample_strata=3
        )
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.sample_users == 24
        assert rebuilt.sample_strata == 3
        assert rebuilt.evaluation == "sampled"

    def test_unsampled_plans_omit_the_keys(self):
        # Plans without sampling must serialise without the new keys so
        # existing artifact-store content hashes stay valid.
        payload = plan_to_dict(_sweep_plan())
        assert "sample_users" not in payload
        assert "sample_strata" not in payload
        rebuilt = plan_from_dict(payload)
        assert rebuilt.sample_users is None
        assert rebuilt.sample_strata == 4

    def test_sampled_requires_sample_users(self):
        with pytest.raises(ConfigurationError, match="sample_users"):
            _sweep_plan(evaluation="sampled")

    def test_sample_users_requires_sampled_evaluation(self):
        with pytest.raises(ConfigurationError, match="sampled"):
            _sweep_plan(evaluation="expected", sample_users=16)

    def test_sample_users_floor(self):
        with pytest.raises(ConfigurationError, match="at least"):
            _sweep_plan(
                evaluation="sampled", sample_users=5, sample_strata=4
            )

    def test_strata_floor(self):
        with pytest.raises(ConfigurationError, match="sample_strata"):
            _sweep_plan(
                evaluation="sampled", sample_users=16, sample_strata=0
            )
