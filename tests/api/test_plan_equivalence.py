"""Equivalence suite: the plan path is bit-identical to the legacy path.

For every migrated figure/ablation, the plan-declared entry point in
:mod:`repro.sim.experiments` must reproduce the retained pre-refactor
implementation in :mod:`repro.sim.legacy` exactly — same hit-ratio
means/stds/counts at the same seed, no tolerance. Runtimes are wall
clock, so only their shape (same algorithms, same sample counts) is
asserted.
"""

import json

import numpy as np
import pytest

from repro.sim import experiments, legacy


def assert_series_bit_identical(new, old):
    """ExperimentResult equality: x values and every series, exactly."""
    assert list(new.x_values) == list(old.x_values)
    assert list(new.series) == list(old.series)
    for algo in old.series:
        assert np.array_equal(new.series[algo].means, old.series[algo].means), algo
        assert np.array_equal(new.series[algo].stds, old.series[algo].stds), algo
        assert np.array_equal(
            new.series[algo].counts, old.series[algo].counts
        ), algo
    assert list(new.runtimes) == list(old.runtimes)
    for algo in old.runtimes:
        assert np.array_equal(
            new.runtimes[algo].counts, old.runtimes[algo].counts
        ), algo


def assert_comparison_bit_identical(new, old):
    """AlgorithmComparison equality: every accumulator's moments, exactly."""
    assert list(new.hit_ratios) == list(old.hit_ratios)
    for algo in old.hit_ratios:
        assert new.hit_ratios[algo].count == old.hit_ratios[algo].count, algo
        assert new.hit_ratios[algo].mean == old.hit_ratios[algo].mean, algo
        assert new.hit_ratios[algo].std == old.hit_ratios[algo].std, algo
    assert list(new.runtimes) == list(old.runtimes)
    for algo in old.runtimes:
        assert new.runtimes[algo].count == old.runtimes[algo].count, algo


_SWEEP_KW = dict(num_topologies=2, seed=0, scale=0.05)


class TestSweepFigures:
    def test_fig4a(self):
        kw = dict(_SWEEP_KW, capacities_gb=(0.5, 1.0))
        assert_series_bit_identical(
            experiments.fig4a_hit_vs_capacity(**kw),
            legacy.fig4a_hit_vs_capacity(**kw),
        )

    def test_fig4a_monte_carlo(self):
        kw = dict(
            num_topologies=1,
            seed=3,
            scale=0.05,
            capacities_gb=(1.0,),
            evaluation="monte_carlo",
            num_realizations=20,
        )
        assert_series_bit_identical(
            experiments.fig4a_hit_vs_capacity(**kw),
            legacy.fig4a_hit_vs_capacity(**kw),
        )

    def test_fig4b(self):
        kw = dict(_SWEEP_KW, server_counts=(4, 6))
        assert_series_bit_identical(
            experiments.fig4b_hit_vs_servers(**kw),
            legacy.fig4b_hit_vs_servers(**kw),
        )

    def test_fig4c(self):
        kw = dict(_SWEEP_KW, user_counts=(6, 10))
        assert_series_bit_identical(
            experiments.fig4c_hit_vs_users(**kw),
            legacy.fig4c_hit_vs_users(**kw),
        )

    def test_fig5a(self):
        kw = dict(_SWEEP_KW, capacities_gb=(0.5, 1.0))
        assert_series_bit_identical(
            experiments.fig5a_hit_vs_capacity(**kw),
            legacy.fig5a_hit_vs_capacity(**kw),
        )

    def test_fig5b(self):
        kw = dict(_SWEEP_KW, server_counts=(4, 6))
        assert_series_bit_identical(
            experiments.fig5b_hit_vs_servers(**kw),
            legacy.fig5b_hit_vs_servers(**kw),
        )

    def test_fig5c(self):
        kw = dict(_SWEEP_KW, user_counts=(6, 10))
        assert_series_bit_identical(
            experiments.fig5c_hit_vs_users(**kw),
            legacy.fig5c_hit_vs_users(**kw),
        )

    def test_fig4a_parallel_workers(self):
        kw = dict(_SWEEP_KW, capacities_gb=(0.5, 1.0))
        assert_series_bit_identical(
            experiments.fig4a_hit_vs_capacity(workers=2, **kw),
            legacy.fig4a_hit_vs_capacity(**kw),
        )


class TestComparisonFigures:
    def test_fig6a(self):
        assert_comparison_bit_identical(
            experiments.fig6a_optimality_gap(num_topologies=2, seed=0),
            legacy.fig6a_optimality_gap(num_topologies=2, seed=0),
        )

    def test_fig6b(self):
        assert_comparison_bit_identical(
            experiments.fig6b_runtime_general(num_topologies=1, seed=0),
            legacy.fig6b_runtime_general(num_topologies=1, seed=0),
        )

    def test_ablation_epsilon(self):
        kw = dict(epsilons=(0.1, 0.5), num_topologies=1, seed=0)
        assert_comparison_bit_identical(
            experiments.ablation_epsilon(**kw), legacy.ablation_epsilon(**kw)
        )

    def test_ablation_lazy_greedy(self):
        assert_comparison_bit_identical(
            experiments.ablation_lazy_greedy(num_topologies=1, seed=0),
            legacy.ablation_lazy_greedy(num_topologies=1, seed=0),
        )

    def test_ablation_server_order(self):
        assert_comparison_bit_identical(
            experiments.ablation_server_order(num_topologies=1, seed=0),
            legacy.ablation_server_order(num_topologies=1, seed=0),
        )

    def test_ablation_dp_backend(self):
        assert_comparison_bit_identical(
            experiments.ablation_dp_backend(num_topologies=1, seed=0),
            legacy.ablation_dp_backend(num_topologies=1, seed=0),
        )


class TestStudyFigures:
    def test_fig7(self):
        kw = dict(num_runs=1, horizon_s=600.0, sample_every=24, seed=0)
        new = experiments.fig7_mobility_robustness(**kw)
        old = legacy.fig7_mobility_robustness(**kw)
        assert np.array_equal(new.times_s, old.times_s)
        assert list(new.series) == list(old.series)
        for algo in old.series:
            assert np.array_equal(
                new.series[algo].means, old.series[algo].means
            ), algo
            assert np.array_equal(
                new.series[algo].stds, old.series[algo].stds
            ), algo

    def test_ablation_replacement(self):
        kw = dict(thresholds=(0.0, 0.9), num_runs=1, horizon_s=600.0, seed=0)
        new = experiments.ablation_replacement(**kw)
        old = legacy.ablation_replacement(**kw)
        assert list(new.thresholds) == list(old.thresholds)
        for threshold in old.thresholds:
            assert new.mean_hit[threshold].mean == old.mean_hit[threshold].mean
            assert (
                new.replacements[threshold].mean
                == old.replacements[threshold].mean
            )
            assert (
                new.bytes_shipped[threshold].mean
                == old.bytes_shipped[threshold].mean
            )


class TestCliSweepReproducesFig4a:
    def test_series_exactly_equal(self, tmp_path, capsys):
        """The generic `sweep` CLI reproduces fig4a's series bit-for-bit."""
        from repro.cli import main
        from repro.sim.serialization import experiment_to_dict

        out = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--algos",
                    "spec,gen,independent",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        cli_payload = json.loads(out.read_text())["experiment"]
        reference = experiment_to_dict(
            legacy.fig4a_hit_vs_capacity(num_topologies=1, seed=0, scale=0.05)
        )
        assert cli_payload["x_values"] == reference["x_values"]
        assert cli_payload["series"] == reference["series"]
