"""Tests for the string-keyed solver registry."""

from dataclasses import dataclass

import pytest

from repro.api import SOLVERS, SolverRegistry
from repro.core.gen import GenConfig, TrimCachingGen
from repro.core.spec import SpecConfig
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


@pytest.fixture(scope="module")
def tiny_instance():
    """A scenario small enough for every solver, including exhaustive."""
    config = ScenarioConfig(
        library_case="special",
        num_servers=2,
        num_users=4,
        num_models=4,
        storage_bytes=120_000_000,
    )
    return build_scenario(config, seed=7).instance


class TestBuiltinRegistrations:
    def test_expected_names_present(self):
        names = SOLVERS.names()
        for expected in (
            "gen",
            "spec",
            "independent",
            "exhaustive",
            "random",
            "top-popularity",
            "reference-gen",
            "reference-independent",
            "reference-spec",
        ):
            assert expected in names

    def test_names_sorted(self):
        assert SOLVERS.names() == sorted(SOLVERS.names())

    def test_every_registered_solver_constructs_and_solves(self, tiny_instance):
        """Guards against registry/implementation drift: every name must
        build a working solver end to end."""
        assert len(SOLVERS.names()) > 0
        for name in SOLVERS.names():
            solver = SOLVERS.create(name)
            result = solver.solve(tiny_instance)
            assert 0.0 <= result.hit_ratio <= 1.0, name
            assert result.placement is not None, name

    def test_labels_match_solver_names(self):
        assert SOLVERS.label("gen") == "TrimCaching Gen"
        assert SOLVERS.label("spec") == "TrimCaching Spec"
        assert SOLVERS.label("independent") == "Independent Caching"
        assert SOLVERS.label("exhaustive") == "Optimal (exhaustive)"

    def test_entry_metadata(self):
        entry = SOLVERS.entry("gen")
        assert entry.config_cls is GenConfig
        assert entry.summary
        assert "gen" in SOLVERS
        assert "no-such" not in SOLVERS
        assert len(SOLVERS) == len(SOLVERS.names())

    def test_to_table_lists_everything(self):
        table = SOLVERS.to_table()
        for name in SOLVERS.names():
            assert name in table


class TestCreate:
    def test_create_with_overrides(self):
        solver = SOLVERS.create("gen", accelerated=False)
        assert isinstance(solver, TrimCachingGen)
        assert solver.accelerated is False

    def test_create_with_config_instance(self):
        solver = SOLVERS.create("spec", config=SpecConfig(epsilon=0.25))
        assert solver.epsilon == 0.25

    def test_create_config_plus_overrides_compose(self):
        solver = SOLVERS.create(
            "spec", config=SpecConfig(epsilon=0.25), server_order="coverage"
        )
        assert solver.epsilon == 0.25
        assert solver.server_order == "coverage"

    def test_wrong_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            SOLVERS.create("spec", config=GenConfig())

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="registered solvers"):
            SOLVERS.create("definitely-not-registered")

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid config"):
            SOLVERS.config("gen", not_a_field=1)


class TestThirdPartyRegistration:
    def test_decorator_registration_round_trip(self, tiny_instance):
        registry = SolverRegistry()

        @registry.register("half-random", label="Half Random")
        @dataclass(frozen=True)
        class HalfRandomConfig:
            seed: int = 3

            def build(self):
                from repro.core.extras import RandomPlacement

                return RandomPlacement(seed=self.seed)

        assert registry.names() == ["half-random"]
        assert registry.label("half-random") == "Half Random"
        result = registry.create("half-random").solve(tiny_instance)
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_duplicate_name_rejected(self):
        registry = SolverRegistry()
        registry.register("gen", GenConfig)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("gen", GenConfig)

    def test_bad_name_rejected(self):
        registry = SolverRegistry()
        with pytest.raises(ConfigurationError, match="kebab-case"):
            registry.register("Not A Name", GenConfig)

    def test_non_dataclass_rejected(self):
        registry = SolverRegistry()

        class NotADataclass:
            def build(self):  # pragma: no cover - never built
                return None

        with pytest.raises(ConfigurationError, match="dataclass"):
            registry.register("bad", NotADataclass)

    def test_missing_build_rejected(self):
        registry = SolverRegistry()

        @dataclass(frozen=True)
        class NoBuild:
            knob: int = 1

        with pytest.raises(ConfigurationError, match="build"):
            registry.register("no-build", NoBuild)

    def test_unregister(self):
        registry = SolverRegistry()
        registry.register("gen", GenConfig)
        registry.unregister("gen")
        assert "gen" not in registry


class TestLazyLabels:
    def test_registration_does_not_instantiate(self):
        registry = SolverRegistry()
        built = []

        @registry.register("probe")
        @dataclass(frozen=True)
        class ProbeConfig:
            def build(self):
                built.append(1)

                class _Probe:
                    name = "Probe Solver"

                    def solve(self, instance):  # pragma: no cover
                        raise NotImplementedError

                return _Probe()

        assert built == []  # registration is lazy
        assert registry.label("probe") == "Probe Solver"
        assert built == [1]
        assert registry.label("probe") == "Probe Solver"
        assert built == [1]  # cached

    def test_required_config_field_falls_back_to_name(self):
        registry = SolverRegistry()

        @registry.register("needs-arg")
        @dataclass(frozen=True)
        class NeedsArgConfig:
            knob: int  # required, no default

            def build(self):  # pragma: no cover - never default-built
                raise AssertionError

        assert registry.label("needs-arg") == "needs-arg"
